(** Exporters for recorded {!Sink} events.

    Two formats: Chrome [trace_event] JSON (the ["traceEvents"] array
    form, loadable in Perfetto / [chrome://tracing], one track per
    domain-thread pair) and a raw JSONL stream (one event per line,
    for ad-hoc tooling).

    The exporter carries its own {!read}er so a written trace can be
    validated against exactly what we emit: {!validate} checks
    [render (read s) = s] byte-for-byte. To make that hold, {!of_events}
    rebases timestamps to the earliest event (keeping microsecond
    values small enough that the fixed [%.3f] rendering is lossless)
    and {!render} never rebases — a read trace re-renders to the
    identical bytes. *)

type item =
  | Complete of { ts : float; dur : float; tid : int; cat : string; name : string }
      (** ["X"] — a closed span; [ts]/[dur] in microseconds (rebased). *)
  | Counter of { ts : float; tid : int; name : string; value : int }
      (** ["C"] — a sampled series value (edge queue depth, star depth). *)
  | Instant of { ts : float; tid : int; cat : string; name : string; value : int }
      (** ["i"] — a point event (steal, park, retry, stall). *)
  | Meta of { tid : int; thread_name : string }
      (** ["M"] — track naming metadata, one per referenced track. *)

type t = item list

val of_events : Sink.event list -> t
(** Convert sink events (in [seq] order): adjacent [Begin]/[End] pairs
    on the same track become {!Complete} spans ([Probe.span_end] emits
    them adjacently, so pairing is by construction; a dangling [Begin]
    — e.g. the sink filled mid-span — is dropped), [Counter]/[Instant]
    map directly, and one {!Meta} per track is prepended. *)

val render : t -> string
(** Deterministic Chrome-trace JSON: fixed key order, fixed number
    formats, no re-sorting. *)

val read : string -> (t, string) result
(** Parse a trace we wrote. Inverse of {!render}. *)

val validate : string -> (unit, string) result
(** [read] then re-[render] and require byte equality, plus shape
    checks (non-negative [ts]/[dur], every data track has a
    {!Meta}). *)

val track_domain : int -> int
val track_thread : int -> int
(** Decompose a track id (domain in the high bits, thread id low). *)

(** {1 File output} *)

val write_chrome : path:string -> Sink.event list -> unit
val write_jsonl : path:string -> Sink.event list -> unit
(** One raw event per line:
    [{"seq":..,"ts":..,"track":..,"kind":"B"|"E"|"i"|"C","cat":..,"name":..,"value":..}]. *)

val write_metrics : path:string -> Metrics.snapshot -> unit
(** Atomic-rename write of {!Metrics.to_json} (so [snet_top --watch]
    never reads a torn file). *)
