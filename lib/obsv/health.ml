(* Per-partition health registry. See health.mli. *)

type part = {
  part : int;
  alive : bool;
  reason : string;
  place : string;
  migrations : int;
  queue_depth : int;
  window : int;
  credits_free : int;
  sends : int;
  recvs : int;
  stalls : int;
  stall_rate : float;
  batch_p50 : int;
  batch_p95 : int;
  journal_lag : int;
  age : float;
}

let make ?(alive = true) ?(reason = "") ?(place = "") ?(migrations = 0)
    ?(queue_depth = 0) ?(window = 0) ?(credits_free = 0) ?(sends = 0)
    ?(recvs = 0) ?(stalls = 0) ?stall_rate ?(batch_p50 = 0) ?(batch_p95 = 0)
    ?(journal_lag = 0) ?(age = -1.) ~part () =
  (* Never let a nan/inf escape into the registry: it would render as
     "nan" in Prometheus text and as an invalid JSON number in cluster
     snapshots. Non-finite overrides (0/0 deltas and the like) fall
     back to 0, as does the derived rate when there are no sends. *)
  let stall_rate =
    match stall_rate with
    | Some r when Float.is_finite r -> r
    | Some _ -> 0.
    | None ->
        if sends <= 0 then 0.
        else float_of_int stalls /. float_of_int sends
  in
  {
    part;
    alive;
    reason;
    place;
    migrations;
    queue_depth;
    window;
    credits_free;
    sends;
    recvs;
    stalls;
    stall_rate;
    batch_p50;
    batch_p95;
    journal_lag;
    age;
  }

(* --- registry --------------------------------------------------------- *)

let registry : part list ref = ref []
let mu = Mutex.create ()

let set parts =
  let parts = List.sort (fun a b -> compare a.part b.part) parts in
  Mutex.protect mu (fun () -> registry := parts)

let update p =
  Mutex.protect mu (fun () ->
      registry :=
        p :: List.filter (fun q -> q.part <> p.part) !registry
        |> List.sort (fun a b -> compare a.part b.part))

let get () = Mutex.protect mu (fun () -> !registry)
let clear () = Mutex.protect mu (fun () -> registry := [])

(* --- JSON ------------------------------------------------------------- *)

let to_json p =
  Jsonx.Obj
    [
      ("part", Jsonx.Num (float_of_int p.part));
      ("alive", Jsonx.Bool p.alive);
      ("reason", Jsonx.Str p.reason);
      ("place", Jsonx.Str p.place);
      ("migrations", Jsonx.Num (float_of_int p.migrations));
      ("queue_depth", Jsonx.Num (float_of_int p.queue_depth));
      ("window", Jsonx.Num (float_of_int p.window));
      ("credits_free", Jsonx.Num (float_of_int p.credits_free));
      ("sends", Jsonx.Num (float_of_int p.sends));
      ("recvs", Jsonx.Num (float_of_int p.recvs));
      ("stalls", Jsonx.Num (float_of_int p.stalls));
      ("stall_rate", Jsonx.Num p.stall_rate);
      ("batch_p50", Jsonx.Num (float_of_int p.batch_p50));
      ("batch_p95", Jsonx.Num (float_of_int p.batch_p95));
      ("journal_lag", Jsonx.Num (float_of_int p.journal_lag));
      ("age", Jsonx.Num p.age);
    ]

let of_json j =
  let ( let* ) = Option.bind in
  let int k = Option.bind (Jsonx.member k j) Jsonx.to_int in
  let num k = Option.bind (Jsonx.member k j) Jsonx.to_float in
  let* part = int "part" in
  let* alive =
    match Jsonx.member "alive" j with Some (Jsonx.Bool b) -> Some b | _ -> None
  in
  let* reason = Option.bind (Jsonx.member "reason" j) Jsonx.to_string in
  (* Absent in snapshots written before placement landed. *)
  let place =
    Option.value ~default:""
      (Option.bind (Jsonx.member "place" j) Jsonx.to_string)
  in
  let migrations = Option.value ~default:0 (int "migrations") in
  let* queue_depth = int "queue_depth" in
  let* window = int "window" in
  let* credits_free = int "credits_free" in
  let* sends = int "sends" in
  let* recvs = int "recvs" in
  let* stalls = int "stalls" in
  let* stall_rate = num "stall_rate" in
  let* batch_p50 = int "batch_p50" in
  let* batch_p95 = int "batch_p95" in
  let* journal_lag = int "journal_lag" in
  let* age = num "age" in
  Some
    {
      part;
      alive;
      reason;
      place;
      migrations;
      queue_depth;
      window;
      credits_free;
      sends;
      recvs;
      stalls;
      stall_rate;
      batch_p50;
      batch_p95;
      journal_lag;
      age;
    }
