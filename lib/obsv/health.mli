(** The partition health registry: the per-partition signals ROADMAP's
    future rebalancer consumes, queryable in-process.

    One {!part} summarises one partition (a distributed worker, or one
    serve session): liveness, coordinator-side queue depth,
    credit-window occupancy, stall rate, batch-size percentiles and
    journal lag. Producers ({!Agg.cluster} on the distributed
    coordinator, [Serve.Server.health_parts] on the daemon) refresh the
    process-global registry; consumers ([Prom], a future rebalancer)
    read it with {!get}. *)

type part = {
  part : int;  (** Partition / session index. *)
  alive : bool;
  reason : string;  (** Why the partition died; [""] while alive. *)
  place : string;
      (** Human-readable placement ("seg 2", "seg 1 shard 0/4"); [""]
          when the producer doesn't track placement. *)
  migrations : int;  (** Live repartitionings this partition survived. *)
  queue_depth : int;  (** Records queued + in flight toward the partition. *)
  window : int;  (** Credit window size. *)
  credits_free : int;  (** Unused credits; occupancy = window - free. *)
  sends : int;
  recvs : int;
  stalls : int;  (** Backpressure stalls observed at its edges. *)
  stall_rate : float;  (** stalls / sends, 0 when no sends. Always finite. *)
  batch_p50 : int;
  batch_p95 : int;  (** Batch-size percentiles across its edges. *)
  journal_lag : int;  (** Journal entries since the last snapshot. *)
  age : float;  (** Seconds since its last report; [-1.] if unknown. *)
}

val make :
  ?alive:bool ->
  ?reason:string ->
  ?place:string ->
  ?migrations:int ->
  ?queue_depth:int ->
  ?window:int ->
  ?credits_free:int ->
  ?sends:int ->
  ?recvs:int ->
  ?stalls:int ->
  ?stall_rate:float ->
  ?batch_p50:int ->
  ?batch_p95:int ->
  ?journal_lag:int ->
  ?age:float ->
  part:int ->
  unit ->
  part
(** Build a part row. Without [?stall_rate] the rate is derived from
    [stalls]/[sends] (0 when there are no sends); with it, the override
    is used as-is — unless non-finite (a 0/0 interval delta), which is
    clamped to 0 so nan/inf never reach Prometheus text or cluster
    JSON. *)

(** {1 Registry} *)

val set : part list -> unit
(** Replace the registry (sorted by partition). *)

val update : part -> unit
(** Upsert one partition's row. *)

val get : unit -> part list
val clear : unit -> unit

(** {1 JSON} *)

val to_json : part -> Jsonx.t
val of_json : Jsonx.t -> part option
