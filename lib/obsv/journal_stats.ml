type snapshot = {
  appends : int;
  append_bytes : int;
  fsyncs : int;
  replays : int;
  snapshots : int;
  lag : int;
}

let appends = Atomic.make 0
let append_bytes = Atomic.make 0
let fsyncs = Atomic.make 0
let replays = Atomic.make 0
let snapshots = Atomic.make 0
let lag = Atomic.make 0
let lag_hwm = Atomic.make 0

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let record_append ~bytes =
  Atomic.incr appends;
  ignore (Atomic.fetch_and_add append_bytes bytes);
  let l = 1 + Atomic.fetch_and_add lag 1 in
  atomic_max lag_hwm l

let record_fsync () = Atomic.incr fsyncs
let record_replay () = Atomic.incr replays

let record_snapshot () =
  Atomic.incr snapshots;
  Atomic.set lag 0

let current_lag () = Atomic.get lag

let snapshot () =
  {
    appends = Atomic.get appends;
    append_bytes = Atomic.get append_bytes;
    fsyncs = Atomic.get fsyncs;
    replays = Atomic.get replays;
    snapshots = Atomic.get snapshots;
    lag = Atomic.get lag_hwm;
  }

let clear () =
  Atomic.set appends 0;
  Atomic.set append_bytes 0;
  Atomic.set fsyncs 0;
  Atomic.set replays 0;
  Atomic.set snapshots 0;
  Atomic.set lag 0;
  Atomic.set lag_hwm 0

let pp ppf s =
  Format.fprintf ppf
    "journal: appends=%d bytes=%d fsyncs=%d replays=%d snapshots=%d lag_hwm=%d"
    s.appends s.append_bytes s.fsyncs s.replays s.snapshots s.lag
