(** Durability counters: edge-journal activity, process-global.

    The journal writer ({!Durable.Journal}) calls the [record_*]
    functions; they are single atomic operations, cheap enough for the
    append hot path. [lag] tracks entries appended since the last
    snapshot — the length of the journal suffix a recovery would have
    to replay — and the snapshot reports its high-water mark.
    Latency distributions (append, fsync, replay, snapshot save) go
    through the ordinary span probes under the ["journal"] category;
    this module only owns the monotone counters. *)

type snapshot = {
  appends : int;  (** journal entries written *)
  append_bytes : int;  (** payload + framing bytes written *)
  fsyncs : int;
  replays : int;  (** entries re-read and re-applied during recovery *)
  snapshots : int;  (** net snapshots persisted *)
  lag : int;  (** high-water mark of entries since last snapshot *)
}

val record_append : bytes:int -> unit
val record_fsync : unit -> unit
val record_replay : unit -> unit
val record_snapshot : unit -> unit

val current_lag : unit -> int
(** Entries appended since the last recorded snapshot. *)

val snapshot : unit -> snapshot
val clear : unit -> unit
val pp : Format.formatter -> snapshot -> unit
