type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> begin
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* Our writers only escape control characters, so a plain
                 code point (no surrogate pairs) covers everything we
                 emit; decode as UTF-8 for foreign input. *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
          | _ -> fail "bad escape");
          go ()
        end
      | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_string = function Str s -> Some s | _ -> None
let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_list = function List l -> Some l | _ -> None

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Shortest float representation that [parse] reads back exactly:
   integers print bare (the writers mostly emit counts and
   nanoseconds), everything else as %.17g trimmed via %g first. *)
let render_num f =
  if Float.is_nan f || Float.is_integer f && Float.abs f < 1e15 then
    if Float.is_nan f then "null" else Printf.sprintf "%.0f" f
  else if f = Float.infinity || f = Float.neg_infinity then "null"
  else
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f

let render ?(indent = false) v =
  let b = Buffer.create 256 in
  let pad d = if indent then Buffer.add_string b (String.make (2 * d) ' ') in
  let nl () = if indent then Buffer.add_char b '\n' in
  let rec go d = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Num f -> Buffer.add_string b (render_num f)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_char b '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad (d + 1);
            go (d + 1) item)
          items;
        nl ();
        pad d;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
        Buffer.add_char b '{';
        nl ();
        List.iteri
          (fun i (k, item) ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad (d + 1);
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\": ";
            go (d + 1) item)
          kvs;
        nl ();
        pad d;
        Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

let write_file ~path v =
  let doc = render ~indent:true v in
  let oc = open_out path in
  output_string oc doc;
  output_char oc '\n';
  close_out oc;
  match parse doc with
  | Ok _ -> Ok ()
  | Error e -> Error (Printf.sprintf "%s: written JSON does not parse: %s" path e)
