(** A minimal JSON representation and recursive-descent parser, shared
    by {!Export} (trace validation round-trip) and {!Metrics}
    (snapshot files for [snet_top]). Kept deliberately small: the repo
    has no JSON dependency, and the exporter needs its {e own} reader
    anyway so traces are validated against exactly what we write. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error.
    Numbers become [Num] (doubles), matching what the writers emit. *)

(** {1 Accessors} — all total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
val to_string : t -> string option
val to_float : t -> float option
val to_int : t -> int option
val to_list : t -> t list option

(** {1 Writing} *)

val escape : string -> string
(** JSON string-literal escaping (no surrounding quotes). *)

val render : ?indent:bool -> t -> string
(** Serialize; [~indent:true] pretty-prints with two-space indent.
    The output always satisfies [parse (render v) = Ok v] ([Num nan]
    degrades to [null] — JSON has no NaN). *)

val write_file : path:string -> t -> (unit, string) result
(** Render (indented) to [path], then parse the document back as a
    self-check; the [Error] names the file. This is how the
    [BENCH_*.json] artifacts are written — nothing lands on disk
    without round-tripping through our own reader. *)
