(* Aggregated metrics: log-linear latency histograms and per-edge
   counters, all lock-free. See metrics.mli. *)

(* --- log-linear histogram bucketing ---------------------------------
   Octave 0 covers [0, base_ns) in [sub] linear buckets; octave o >= 1
   covers [base_ns * 2^(o-1) * 2, ...) — i.e. [base_ns << (o-1) * 2 —
   concretely bucket index  sub + (o-1)*sub + s  covers
   [lo + s*lo/sub, lo + (s+1)*lo/sub) with lo = base_ns << (o-1).
   42 octaves above base reach ~78 hours; larger values clamp into the
   last bucket and are reported via the tracked maximum. *)

let sub = 8
let base_ns = 64
let octaves = 42
let n_buckets = sub + (octaves * sub)

let bucket_of_ns ns =
  let ns = max 0 ns in
  if ns < base_ns then ns * sub / base_ns
  else begin
    let o = ref 0 and v = ref (ns / base_ns) in
    while !v >= 2 do
      incr o;
      v := !v asr 1
    done;
    let lo = base_ns lsl !o in
    let idx = sub + (!o * sub) + ((ns - lo) / (lo / sub)) in
    min idx (n_buckets - 1)
  end

let bucket_upper_ns i =
  if i < sub then (i + 1) * (base_ns / sub)
  else
    let o = (i - sub) / sub and s = (i - sub) mod sub in
    let lo = base_ns lsl o in
    lo + ((s + 1) * (lo / sub))

let percentile q buckets ~max_s =
  let count = Array.fold_left ( + ) 0 buckets in
  if count = 0 then 0.
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int count))) in
    let cum = ref 0 and result = ref max_s in
    (try
       Array.iteri
         (fun i c ->
           cum := !cum + c;
           if !cum >= rank then begin
             result := float_of_int (bucket_upper_ns i) *. 1e-9;
             raise Exit
           end)
         buckets
     with Exit -> ());
    Float.min !result max_s
  end

type hist = {
  count : int;
  total : float;
  max_s : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let hist_of_buckets buckets ~total ~max_s =
  {
    count = Array.fold_left ( + ) 0 buckets;
    total;
    max_s;
    p50 = percentile 0.50 buckets ~max_s;
    p95 = percentile 0.95 buckets ~max_s;
    p99 = percentile 0.99 buckets ~max_s;
  }

(* --- cells ----------------------------------------------------------- *)

(* Cells are sharded per domain, like the sink's ring buffers: each
   domain owns a shard and is the only writer of the cells in it, so
   the hot path is plain (unboxed) integer arithmetic on a plain int
   array — no atomics, no cache-line ping-pong between domains, and no
   per-bucket Atomic.t boxes (allocating hundreds of those per cell
   turns out to be pathologically slow once a second domain exists).
   Threads of one domain share its shard; they interleave only at
   poll points, which the straight-line load/add/store updates below
   do not contain, so same-domain updates cannot tear either.
   [snapshot] merges all shards with racy reads: per-field monotone,
   exact after quiescence, not a consistent cut — the same relaxed
   contract Core.Stats documents. The only lock is on the first touch
   of a new name in a shard (cell insert) and on shard registration. *)

type span_cell = {
  buckets : int array;
  mutable total_ns : int;
  mutable max_ns : int;
}

(* Batch sizes are small integers, so their distribution is an exact
   histogram up to [batch_max] (larger batches clamp into the last
   slot); slot [s] counts batches of exactly [s] messages. *)
let batch_max = 128

type edge_cell = {
  mutable sends : int;
  mutable recvs : int;
  mutable stalls : int;
  mutable hwm : int;
  mutable batches : int;
  bsizes : int array;  (* length batch_max + 1; slot 0 unused *)
}

module SMap = Map.Make (String)

(* Per-shard direct-mapped cell cache, verified by PHYSICAL string
   equality. Call sites pass literal categories and component paths
   built once at net construction, so the same string objects arrive
   on every record; a hit skips the key concatenation (an allocation)
   and the string-keyed map walk that otherwise dominate the record
   path. A miss — cold slot, collision, or a caller with fresh string
   objects — falls through to the map and installs the slot, so the
   cache is only ever a shortcut, never a source of truth. *)
(* 1024 slots: wide nets with expanded star stages reach hundreds of
   distinct span keys, and a direct-mapped cache only pays off while
   collisions stay rare. *)
let cache_size = 1024
let cache_idx s = Hashtbl.hash s land (cache_size - 1)

type shard = {
  mutable spans : span_cell SMap.t;
  mutable edges : edge_cell SMap.t;
  span_cache : (string * string * span_cell) option array;
  edge_cache : (string * edge_cell) option array;
  shard_gen : int;
}

let registry : shard list ref = ref []
let registry_mutex = Mutex.create ()

(* Bumped by [clear]: shards from an older generation are dead — they
   drop out of the registry and each domain lazily re-registers a
   fresh shard on its next record. *)
let generation = Atomic.make 0
let star_hwm = Atomic.make 0
let star_stages = Atomic.make 0

let new_shard () =
  let s =
    {
      spans = SMap.empty;
      edges = SMap.empty;
      span_cache = Array.make cache_size None;
      edge_cache = Array.make cache_size None;
      shard_gen = Atomic.get generation;
    }
  in
  Mutex.protect registry_mutex (fun () -> registry := s :: !registry);
  s

let shard_key : shard Domain.DLS.key = Domain.DLS.new_key new_shard

let my_shard () =
  let s = Domain.DLS.get shard_key in
  if s.shard_gen = Atomic.get generation then s
  else begin
    let s' = new_shard () in
    Domain.DLS.set shard_key s';
    s'
  end

(* First touch of a name in a shard: serialised so two threads of the
   same domain cannot insert twice and strand one thread's cell. *)
let find_or_add find add fresh =
  match find () with
  | Some c -> c
  | None ->
      Mutex.protect registry_mutex (fun () ->
          match find () with
          | Some c -> c
          | None ->
              let c = fresh () in
              add c;
              c)

let span_cell shard key =
  find_or_add
    (fun () -> SMap.find_opt key shard.spans)
    (fun c -> shard.spans <- SMap.add key c shard.spans)
    (fun () ->
      { buckets = Array.make n_buckets 0; total_ns = 0; max_ns = 0 })

let edge_cell shard key =
  find_or_add
    (fun () -> SMap.find_opt key shard.edges)
    (fun c -> shard.edges <- SMap.add key c shard.edges)
    (fun () ->
      {
        sends = 0;
        recvs = 0;
        stalls = 0;
        hwm = 0;
        batches = 0;
        bsizes = Array.make (batch_max + 1) 0;
      })

let atomic_max cell v =
  let rec go () =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then go ()
  in
  go ()

(* Span keys pack cat and name with a NUL, which cannot appear in
   component paths. *)
let span_key ~cat ~name = cat ^ "\000" ^ name

let split_span_key key =
  match String.index_opt key '\000' with
  | Some i ->
      (String.sub key 0 i, String.sub key (i + 1) (String.length key - i - 1))
  | None -> ("", key)

(* --- lifecycle ------------------------------------------------------- *)

let on () = Sink.flag Sink.metrics_bit

let clear () =
  Atomic.incr generation;
  let gen = Atomic.get generation in
  Mutex.protect registry_mutex (fun () ->
      registry := List.filter (fun s -> s.shard_gen = gen) !registry);
  Atomic.set star_hwm 0;
  Atomic.set star_stages 0

let enable () =
  clear ();
  Sink.set_flag Sink.metrics_bit true

let disable () = Sink.set_flag Sink.metrics_bit false

(* --- recording ------------------------------------------------------- *)

let my_span_cell ~cat ~name =
  let s = my_shard () in
  let i = cache_idx name in
  match Array.unsafe_get s.span_cache i with
  | Some (c, n, cell) when c == cat && n == name -> cell
  | _ ->
      let cell = span_cell s (span_key ~cat ~name) in
      Array.unsafe_set s.span_cache i (Some (cat, name, cell));
      cell

let my_edge_cell ~name =
  let s = my_shard () in
  let i = cache_idx name in
  match Array.unsafe_get s.edge_cache i with
  | Some (n, cell) when n == name -> cell
  | _ ->
      let cell = edge_cell s name in
      Array.unsafe_set s.edge_cache i (Some (name, cell));
      cell

let record_span ~cat ~name ~dt =
  let cell = my_span_cell ~cat ~name in
  let ns = int_of_float (Float.max 0. (dt *. 1e9)) in
  let b = bucket_of_ns ns in
  cell.buckets.(b) <- cell.buckets.(b) + 1;
  cell.total_ns <- cell.total_ns + ns;
  if ns > cell.max_ns then cell.max_ns <- ns

let record_edge_send ~name ~depth =
  let cell = my_edge_cell ~name in
  cell.sends <- cell.sends + 1;
  if depth > cell.hwm then cell.hwm <- depth

let record_edge_recv ~name ~depth =
  let cell = my_edge_cell ~name in
  cell.recvs <- cell.recvs + 1;
  if depth > cell.hwm then cell.hwm <- depth

let record_edge_stall ~name =
  let cell = my_edge_cell ~name in
  cell.stalls <- cell.stalls + 1

let record_edge_batch ~name ~size =
  let cell = my_edge_cell ~name in
  cell.batches <- cell.batches + 1;
  let s = if size > batch_max then batch_max else max 1 size in
  cell.bsizes.(s) <- cell.bsizes.(s) + 1

let record_star_depth ~depth =
  ignore (Atomic.fetch_and_add star_stages 1);
  atomic_max star_hwm depth

(* --- snapshot -------------------------------------------------------- *)

type edge = {
  sends : int;
  recvs : int;
  stalls : int;
  hwm : int;
  batches : int;
  batch_p50 : int;
  batch_p95 : int;
}

let batch_percentile q bsizes =
  let count = Array.fold_left ( + ) 0 bsizes in
  if count = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int count))) in
    let cum = ref 0 and result = ref batch_max in
    (try
       Array.iteri
         (fun s c ->
           cum := !cum + c;
           if c > 0 && !cum >= rank then begin
             result := s;
             raise Exit
           end)
         bsizes
     with Exit -> ());
    !result
  end

type snapshot = {
  spans : (string * string * hist) list;
  edges : (string * edge) list;
  star_depth_hwm : int;
  star_stages : int;
}

(* --- raw snapshots ---------------------------------------------------
   A raw snapshot keeps the full bucket arrays instead of derived
   percentiles, so snapshots from different processes sharing this
   bucket layout merge losslessly by vector addition; the coordinator
   converts the merged raw back to a [snapshot] at the end. *)

type raw_span = { r_buckets : int array; r_total_ns : int; r_max_ns : int }

type raw_edge = {
  r_sends : int;
  r_recvs : int;
  r_stalls : int;
  r_hwm : int;
  r_batches : int;
  r_bsizes : int array;  (* length batch_max + 1 *)
}

type raw = {
  raw_spans : (string * raw_span) list;  (* key = [span_key] packed *)
  raw_edges : (string * raw_edge) list;
  raw_star_hwm : int;
  raw_star_stages : int;
}

(* Merge all live shards. Reads race with writers (see the cell-layer
   note): each value read is some value the owner wrote, so merged
   counters are per-field monotone and exact once writers quiesce. *)
let raw_snapshot () =
  let shards = Mutex.protect registry_mutex (fun () -> !registry) in
  let gen = Atomic.get generation in
  let shards = List.filter (fun s -> s.shard_gen = gen) shards in
  let span_acc : (string, span_cell) Hashtbl.t = Hashtbl.create 64 in
  let edge_acc : (string, edge_cell) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (s : shard) ->
      SMap.iter
        (fun key (c : span_cell) ->
          let acc =
            match Hashtbl.find_opt span_acc key with
            | Some acc -> acc
            | None ->
                let acc =
                  { buckets = Array.make n_buckets 0; total_ns = 0; max_ns = 0 }
                in
                Hashtbl.add span_acc key acc;
                acc
          in
          (* Hot for wide nets: hundreds of span keys x 344 buckets
             per shard, snapshotted on every shipped report. Skipping
             the (overwhelmingly) zero slots keeps a report tick
             cheap. *)
          for i = 0 to Array.length c.buckets - 1 do
            let n = c.buckets.(i) in
            if n <> 0 then acc.buckets.(i) <- acc.buckets.(i) + n
          done;
          acc.total_ns <- acc.total_ns + c.total_ns;
          acc.max_ns <- max acc.max_ns c.max_ns)
        s.spans;
      SMap.iter
        (fun name (c : edge_cell) ->
          let acc =
            match Hashtbl.find_opt edge_acc name with
            | Some acc -> acc
            | None ->
                let acc =
                  {
                    sends = 0;
                    recvs = 0;
                    stalls = 0;
                    hwm = 0;
                    batches = 0;
                    bsizes = Array.make (batch_max + 1) 0;
                  }
                in
                Hashtbl.add edge_acc name acc;
                acc
          in
          acc.sends <- acc.sends + c.sends;
          acc.recvs <- acc.recvs + c.recvs;
          acc.stalls <- acc.stalls + c.stalls;
          acc.hwm <- max acc.hwm c.hwm;
          acc.batches <- acc.batches + c.batches;
          for i = 0 to Array.length c.bsizes - 1 do
            let n = c.bsizes.(i) in
            if n <> 0 then acc.bsizes.(i) <- acc.bsizes.(i) + n
          done)
        s.edges)
    shards;
  let raw_spans =
    Hashtbl.fold
      (fun key (c : span_cell) acc ->
        ( key,
          { r_buckets = c.buckets; r_total_ns = c.total_ns; r_max_ns = c.max_ns }
        )
        :: acc)
      span_acc []
    |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
  in
  let raw_edges =
    Hashtbl.fold
      (fun name (c : edge_cell) acc ->
        ( name,
          {
            r_sends = c.sends;
            r_recvs = c.recvs;
            r_stalls = c.stalls;
            r_hwm = c.hwm;
            r_batches = c.batches;
            r_bsizes = c.bsizes;
          } )
        :: acc)
      edge_acc []
    |> List.sort (fun (n1, _) (n2, _) -> compare n1 n2)
  in
  {
    raw_spans;
    raw_edges;
    raw_star_hwm = Atomic.get star_hwm;
    raw_star_stages = Atomic.get star_stages;
  }

let add_array a b =
  let n = max (Array.length a) (Array.length b) in
  Array.init n (fun i ->
      (if i < Array.length a then a.(i) else 0)
      + if i < Array.length b then b.(i) else 0)

let merge_raw a b =
  let merge_assoc merge xs ys =
    let tbl = Hashtbl.create 64 in
    List.iter (fun (k, v) -> Hashtbl.replace tbl k v) xs;
    List.iter
      (fun (k, v) ->
        match Hashtbl.find_opt tbl k with
        | None -> Hashtbl.replace tbl k v
        | Some v0 -> Hashtbl.replace tbl k (merge v0 v))
      ys;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
  in
  let merge_span (x : raw_span) (y : raw_span) =
    {
      r_buckets = add_array x.r_buckets y.r_buckets;
      r_total_ns = x.r_total_ns + y.r_total_ns;
      r_max_ns = max x.r_max_ns y.r_max_ns;
    }
  in
  let merge_edge (x : raw_edge) (y : raw_edge) =
    {
      r_sends = x.r_sends + y.r_sends;
      r_recvs = x.r_recvs + y.r_recvs;
      r_stalls = x.r_stalls + y.r_stalls;
      r_hwm = max x.r_hwm y.r_hwm;
      r_batches = x.r_batches + y.r_batches;
      r_bsizes = add_array x.r_bsizes y.r_bsizes;
    }
  in
  {
    raw_spans = merge_assoc merge_span a.raw_spans b.raw_spans;
    raw_edges = merge_assoc merge_edge a.raw_edges b.raw_edges;
    raw_star_hwm = max a.raw_star_hwm b.raw_star_hwm;
    raw_star_stages = a.raw_star_stages + b.raw_star_stages;
  }

let snapshot_of_raw raw =
  let spans =
    List.map
      (fun (key, (c : raw_span)) ->
        let cat, name = split_span_key key in
        ( cat,
          name,
          hist_of_buckets c.r_buckets
            ~total:(float_of_int c.r_total_ns *. 1e-9)
            ~max_s:(float_of_int c.r_max_ns *. 1e-9) ))
      raw.raw_spans
  in
  let edges =
    List.map
      (fun (name, (c : raw_edge)) ->
        ( name,
          {
            sends = c.r_sends;
            recvs = c.r_recvs;
            stalls = c.r_stalls;
            hwm = c.r_hwm;
            batches = c.r_batches;
            batch_p50 = batch_percentile 0.50 c.r_bsizes;
            batch_p95 = batch_percentile 0.95 c.r_bsizes;
          } ))
      raw.raw_edges
  in
  {
    spans;
    edges;
    star_depth_hwm = raw.raw_star_hwm;
    star_stages = raw.raw_star_stages;
  }

let empty_raw =
  { raw_spans = []; raw_edges = []; raw_star_hwm = 0; raw_star_stages = 0 }

let snapshot () = snapshot_of_raw (raw_snapshot ())

(* --- rendering ------------------------------------------------------- *)

let dur_to_string s =
  if s < 1e-6 then Printf.sprintf "%.0fns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%.1fus" (s *. 1e6)
  else if s < 1. then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.3fs" s

let pp ppf snap =
  Format.fprintf ppf "@[<v>metrics:@,";
  if snap.spans <> [] then begin
    Format.fprintf ppf "  %-28s %8s %10s %9s %9s %9s %9s@," "span" "count"
      "total" "p50" "p95" "p99" "max";
    List.iter
      (fun (cat, name, h) ->
        Format.fprintf ppf "  %-28s %8d %10s %9s %9s %9s %9s@,"
          (Printf.sprintf "%s:%s" cat name)
          h.count (dur_to_string h.total) (dur_to_string h.p50)
          (dur_to_string h.p95) (dur_to_string h.p99) (dur_to_string h.max_s))
      snap.spans
  end;
  if snap.edges <> [] then begin
    Format.fprintf ppf "  %-28s %8s %8s %8s %6s %6s %6s@," "edge" "sends"
      "recvs" "stalls" "hwm" "b-p50" "b-p95";
    List.iter
      (fun (name, e) ->
        Format.fprintf ppf "  %-28s %8d %8d %8d %6d %6d %6d@," name e.sends
          e.recvs e.stalls e.hwm e.batch_p50 e.batch_p95)
      snap.edges
  end;
  Format.fprintf ppf "  star stages %d, depth high-water %d@]"
    snap.star_stages snap.star_depth_hwm

(* --- serialisation --------------------------------------------------- *)

let to_json snap =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"spans\":[";
  List.iteri
    (fun i (cat, name, h) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"cat\":\"%s\",\"name\":\"%s\",\"count\":%d,\"total\":%.9f,\"max\":%.9f,\"p50\":%.9f,\"p95\":%.9f,\"p99\":%.9f}"
           (Jsonx.escape cat) (Jsonx.escape name) h.count h.total h.max_s h.p50
           h.p95 h.p99))
    snap.spans;
  Buffer.add_string b "],\"edges\":[";
  List.iteri
    (fun i (name, e) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"sends\":%d,\"recvs\":%d,\"stalls\":%d,\"hwm\":%d,\"batches\":%d,\"batch_p50\":%d,\"batch_p95\":%d}"
           (Jsonx.escape name) e.sends e.recvs e.stalls e.hwm e.batches
           e.batch_p50 e.batch_p95))
    snap.edges;
  Buffer.add_string b
    (Printf.sprintf "],\"star_depth_hwm\":%d,\"star_stages\":%d}"
       snap.star_depth_hwm snap.star_stages);
  Buffer.contents b

let of_json s =
  let ( let* ) r f = match r with Some v -> f v | None -> Error "bad metrics json" in
  match Jsonx.parse s with
  | Error e -> Error e
  | Ok j ->
      let* spans_j = Option.bind (Jsonx.member "spans" j) Jsonx.to_list in
      let* edges_j = Option.bind (Jsonx.member "edges" j) Jsonx.to_list in
      let* star_depth_hwm =
        Option.bind (Jsonx.member "star_depth_hwm" j) Jsonx.to_int
      in
      let* star_stages =
        Option.bind (Jsonx.member "star_stages" j) Jsonx.to_int
      in
      let span_of j =
        let* cat = Option.bind (Jsonx.member "cat" j) Jsonx.to_string in
        let* name = Option.bind (Jsonx.member "name" j) Jsonx.to_string in
        let* count = Option.bind (Jsonx.member "count" j) Jsonx.to_int in
        let* total = Option.bind (Jsonx.member "total" j) Jsonx.to_float in
        let* max_s = Option.bind (Jsonx.member "max" j) Jsonx.to_float in
        let* p50 = Option.bind (Jsonx.member "p50" j) Jsonx.to_float in
        let* p95 = Option.bind (Jsonx.member "p95" j) Jsonx.to_float in
        let* p99 = Option.bind (Jsonx.member "p99" j) Jsonx.to_float in
        Ok (cat, name, { count; total; max_s; p50; p95; p99 })
      in
      let edge_of j =
        let* name = Option.bind (Jsonx.member "name" j) Jsonx.to_string in
        let* sends = Option.bind (Jsonx.member "sends" j) Jsonx.to_int in
        let* recvs = Option.bind (Jsonx.member "recvs" j) Jsonx.to_int in
        let* stalls = Option.bind (Jsonx.member "stalls" j) Jsonx.to_int in
        let* hwm = Option.bind (Jsonx.member "hwm" j) Jsonx.to_int in
        (* Absent in metrics files written before batch tracking. *)
        let opt_int key =
          Option.value (Option.bind (Jsonx.member key j) Jsonx.to_int) ~default:0
        in
        Ok
          ( name,
            {
              sends;
              recvs;
              stalls;
              hwm;
              batches = opt_int "batches";
              batch_p50 = opt_int "batch_p50";
              batch_p95 = opt_int "batch_p95";
            } )
      in
      let rec map_result f = function
        | [] -> Ok []
        | x :: xs -> (
            match f x with
            | Error e -> Error e
            | Ok y -> (
                match map_result f xs with
                | Error e -> Error e
                | Ok ys -> Ok (y :: ys)))
      in
      (match map_result span_of spans_j with
      | Error e -> Error e
      | Ok spans -> (
          match map_result edge_of edges_j with
          | Error e -> Error e
          | Ok edges -> Ok { spans; edges; star_depth_hwm; star_stages }))
