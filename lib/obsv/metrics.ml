(* Aggregated metrics: log-linear latency histograms and per-edge
   counters, all lock-free. See metrics.mli. *)

(* --- log-linear histogram bucketing ---------------------------------
   Octave 0 covers [0, base_ns) in [sub] linear buckets; octave o >= 1
   covers [base_ns * 2^(o-1) * 2, ...) — i.e. [base_ns << (o-1) * 2 —
   concretely bucket index  sub + (o-1)*sub + s  covers
   [lo + s*lo/sub, lo + (s+1)*lo/sub) with lo = base_ns << (o-1).
   42 octaves above base reach ~78 hours; larger values clamp into the
   last bucket and are reported via the tracked maximum. *)

let sub = 8
let base_ns = 64
let octaves = 42
let n_buckets = sub + (octaves * sub)

let bucket_of_ns ns =
  let ns = max 0 ns in
  if ns < base_ns then ns * sub / base_ns
  else begin
    let o = ref 0 and v = ref (ns / base_ns) in
    while !v >= 2 do
      incr o;
      v := !v asr 1
    done;
    let lo = base_ns lsl !o in
    let idx = sub + (!o * sub) + ((ns - lo) / (lo / sub)) in
    min idx (n_buckets - 1)
  end

let bucket_upper_ns i =
  if i < sub then (i + 1) * (base_ns / sub)
  else
    let o = (i - sub) / sub and s = (i - sub) mod sub in
    let lo = base_ns lsl o in
    lo + ((s + 1) * (lo / sub))

let percentile q buckets ~max_s =
  let count = Array.fold_left ( + ) 0 buckets in
  if count = 0 then 0.
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int count))) in
    let cum = ref 0 and result = ref max_s in
    (try
       Array.iteri
         (fun i c ->
           cum := !cum + c;
           if !cum >= rank then begin
             result := float_of_int (bucket_upper_ns i) *. 1e-9;
             raise Exit
           end)
         buckets
     with Exit -> ());
    Float.min !result max_s
  end

type hist = {
  count : int;
  total : float;
  max_s : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let hist_of_buckets buckets ~total ~max_s =
  {
    count = Array.fold_left ( + ) 0 buckets;
    total;
    max_s;
    p50 = percentile 0.50 buckets ~max_s;
    p95 = percentile 0.95 buckets ~max_s;
    p99 = percentile 0.99 buckets ~max_s;
  }

(* --- cells ----------------------------------------------------------- *)

(* Cells are sharded per domain, like the sink's ring buffers: each
   domain owns a shard and is the only writer of the cells in it, so
   the hot path is plain (unboxed) integer arithmetic on a plain int
   array — no atomics, no cache-line ping-pong between domains, and no
   per-bucket Atomic.t boxes (allocating hundreds of those per cell
   turns out to be pathologically slow once a second domain exists).
   Threads of one domain share its shard; they interleave only at
   poll points, which the straight-line load/add/store updates below
   do not contain, so same-domain updates cannot tear either.
   [snapshot] merges all shards with racy reads: per-field monotone,
   exact after quiescence, not a consistent cut — the same relaxed
   contract Core.Stats documents. The only lock is on the first touch
   of a new name in a shard (cell insert) and on shard registration. *)

type span_cell = {
  buckets : int array;
  mutable total_ns : int;
  mutable max_ns : int;
}

(* Batch sizes are small integers, so their distribution is an exact
   histogram up to [batch_max] (larger batches clamp into the last
   slot); slot [s] counts batches of exactly [s] messages. *)
let batch_max = 128

type edge_cell = {
  mutable sends : int;
  mutable recvs : int;
  mutable stalls : int;
  mutable hwm : int;
  mutable batches : int;
  bsizes : int array;  (* length batch_max + 1; slot 0 unused *)
}

module SMap = Map.Make (String)

type shard = {
  mutable spans : span_cell SMap.t;
  mutable edges : edge_cell SMap.t;
  shard_gen : int;
}

let registry : shard list ref = ref []
let registry_mutex = Mutex.create ()

(* Bumped by [clear]: shards from an older generation are dead — they
   drop out of the registry and each domain lazily re-registers a
   fresh shard on its next record. *)
let generation = Atomic.make 0
let star_hwm = Atomic.make 0
let star_stages = Atomic.make 0

let new_shard () =
  let s =
    { spans = SMap.empty; edges = SMap.empty; shard_gen = Atomic.get generation }
  in
  Mutex.protect registry_mutex (fun () -> registry := s :: !registry);
  s

let shard_key : shard Domain.DLS.key = Domain.DLS.new_key new_shard

let my_shard () =
  let s = Domain.DLS.get shard_key in
  if s.shard_gen = Atomic.get generation then s
  else begin
    let s' = new_shard () in
    Domain.DLS.set shard_key s';
    s'
  end

(* First touch of a name in a shard: serialised so two threads of the
   same domain cannot insert twice and strand one thread's cell. *)
let find_or_add find add fresh =
  match find () with
  | Some c -> c
  | None ->
      Mutex.protect registry_mutex (fun () ->
          match find () with
          | Some c -> c
          | None ->
              let c = fresh () in
              add c;
              c)

let span_cell shard key =
  find_or_add
    (fun () -> SMap.find_opt key shard.spans)
    (fun c -> shard.spans <- SMap.add key c shard.spans)
    (fun () ->
      { buckets = Array.make n_buckets 0; total_ns = 0; max_ns = 0 })

let edge_cell shard key =
  find_or_add
    (fun () -> SMap.find_opt key shard.edges)
    (fun c -> shard.edges <- SMap.add key c shard.edges)
    (fun () ->
      {
        sends = 0;
        recvs = 0;
        stalls = 0;
        hwm = 0;
        batches = 0;
        bsizes = Array.make (batch_max + 1) 0;
      })

let atomic_max cell v =
  let rec go () =
    let cur = Atomic.get cell in
    if v > cur && not (Atomic.compare_and_set cell cur v) then go ()
  in
  go ()

(* Span keys pack cat and name with a NUL, which cannot appear in
   component paths. *)
let span_key ~cat ~name = cat ^ "\000" ^ name

let split_span_key key =
  match String.index_opt key '\000' with
  | Some i ->
      (String.sub key 0 i, String.sub key (i + 1) (String.length key - i - 1))
  | None -> ("", key)

(* --- lifecycle ------------------------------------------------------- *)

let on () = Sink.flag Sink.metrics_bit

let clear () =
  Atomic.incr generation;
  let gen = Atomic.get generation in
  Mutex.protect registry_mutex (fun () ->
      registry := List.filter (fun s -> s.shard_gen = gen) !registry);
  Atomic.set star_hwm 0;
  Atomic.set star_stages 0

let enable () =
  clear ();
  Sink.set_flag Sink.metrics_bit true

let disable () = Sink.set_flag Sink.metrics_bit false

(* --- recording ------------------------------------------------------- *)

let record_span ~cat ~name ~dt =
  let cell = span_cell (my_shard ()) (span_key ~cat ~name) in
  let ns = int_of_float (Float.max 0. (dt *. 1e9)) in
  let b = bucket_of_ns ns in
  cell.buckets.(b) <- cell.buckets.(b) + 1;
  cell.total_ns <- cell.total_ns + ns;
  if ns > cell.max_ns then cell.max_ns <- ns

let record_edge_send ~name ~depth =
  let cell = edge_cell (my_shard ()) name in
  cell.sends <- cell.sends + 1;
  if depth > cell.hwm then cell.hwm <- depth

let record_edge_recv ~name ~depth =
  let cell = edge_cell (my_shard ()) name in
  cell.recvs <- cell.recvs + 1;
  if depth > cell.hwm then cell.hwm <- depth

let record_edge_stall ~name =
  let cell = edge_cell (my_shard ()) name in
  cell.stalls <- cell.stalls + 1

let record_edge_batch ~name ~size =
  let cell = edge_cell (my_shard ()) name in
  cell.batches <- cell.batches + 1;
  let s = if size > batch_max then batch_max else max 1 size in
  cell.bsizes.(s) <- cell.bsizes.(s) + 1

let record_star_depth ~depth =
  ignore (Atomic.fetch_and_add star_stages 1);
  atomic_max star_hwm depth

(* --- snapshot -------------------------------------------------------- *)

type edge = {
  sends : int;
  recvs : int;
  stalls : int;
  hwm : int;
  batches : int;
  batch_p50 : int;
  batch_p95 : int;
}

let batch_percentile q bsizes =
  let count = Array.fold_left ( + ) 0 bsizes in
  if count = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int count))) in
    let cum = ref 0 and result = ref batch_max in
    (try
       Array.iteri
         (fun s c ->
           cum := !cum + c;
           if c > 0 && !cum >= rank then begin
             result := s;
             raise Exit
           end)
         bsizes
     with Exit -> ());
    !result
  end

type snapshot = {
  spans : (string * string * hist) list;
  edges : (string * edge) list;
  star_depth_hwm : int;
  star_stages : int;
}

(* Merge all live shards. Reads race with writers (see the cell-layer
   note): each value read is some value the owner wrote, so merged
   counters are per-field monotone and exact once writers quiesce. *)
let snapshot () =
  let shards = Mutex.protect registry_mutex (fun () -> !registry) in
  let gen = Atomic.get generation in
  let shards = List.filter (fun s -> s.shard_gen = gen) shards in
  let span_acc : (string, int array * float ref * float ref) Hashtbl.t =
    Hashtbl.create 64
  in
  (* Accumulate into spare edge_cells, then convert with percentiles. *)
  let edge_acc : (string, edge_cell) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (s : shard) ->
      SMap.iter
        (fun key c ->
          let buckets, total, max_s =
            match Hashtbl.find_opt span_acc key with
            | Some acc -> acc
            | None ->
                let acc = (Array.make n_buckets 0, ref 0., ref 0.) in
                Hashtbl.add span_acc key acc;
                acc
          in
          Array.iteri (fun i n -> buckets.(i) <- buckets.(i) + n) c.buckets;
          total := !total +. (float_of_int c.total_ns *. 1e-9);
          max_s := Float.max !max_s (float_of_int c.max_ns *. 1e-9))
        s.spans;
      SMap.iter
        (fun name (c : edge_cell) ->
          let acc =
            match Hashtbl.find_opt edge_acc name with
            | Some acc -> acc
            | None ->
                let acc =
                  {
                    sends = 0;
                    recvs = 0;
                    stalls = 0;
                    hwm = 0;
                    batches = 0;
                    bsizes = Array.make (batch_max + 1) 0;
                  }
                in
                Hashtbl.add edge_acc name acc;
                acc
          in
          acc.sends <- acc.sends + c.sends;
          acc.recvs <- acc.recvs + c.recvs;
          acc.stalls <- acc.stalls + c.stalls;
          acc.hwm <- max acc.hwm c.hwm;
          acc.batches <- acc.batches + c.batches;
          Array.iteri (fun i n -> acc.bsizes.(i) <- acc.bsizes.(i) + n) c.bsizes)
        s.edges)
    shards;
  let spans =
    Hashtbl.fold
      (fun key (buckets, total, max_s) acc ->
        let cat, name = split_span_key key in
        (cat, name, hist_of_buckets buckets ~total:!total ~max_s:!max_s) :: acc)
      span_acc []
    |> List.sort (fun (c1, n1, _) (c2, n2, _) -> compare (c1, n1) (c2, n2))
  in
  let edges =
    Hashtbl.fold
      (fun name (c : edge_cell) acc ->
        ( name,
          {
            sends = c.sends;
            recvs = c.recvs;
            stalls = c.stalls;
            hwm = c.hwm;
            batches = c.batches;
            batch_p50 = batch_percentile 0.50 c.bsizes;
            batch_p95 = batch_percentile 0.95 c.bsizes;
          } )
        :: acc)
      edge_acc []
    |> List.sort (fun (n1, _) (n2, _) -> compare n1 n2)
  in
  {
    spans;
    edges;
    star_depth_hwm = Atomic.get star_hwm;
    star_stages = Atomic.get star_stages;
  }

(* --- rendering ------------------------------------------------------- *)

let dur_to_string s =
  if s < 1e-6 then Printf.sprintf "%.0fns" (s *. 1e9)
  else if s < 1e-3 then Printf.sprintf "%.1fus" (s *. 1e6)
  else if s < 1. then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.3fs" s

let pp ppf snap =
  Format.fprintf ppf "@[<v>metrics:@,";
  if snap.spans <> [] then begin
    Format.fprintf ppf "  %-28s %8s %10s %9s %9s %9s %9s@," "span" "count"
      "total" "p50" "p95" "p99" "max";
    List.iter
      (fun (cat, name, h) ->
        Format.fprintf ppf "  %-28s %8d %10s %9s %9s %9s %9s@,"
          (Printf.sprintf "%s:%s" cat name)
          h.count (dur_to_string h.total) (dur_to_string h.p50)
          (dur_to_string h.p95) (dur_to_string h.p99) (dur_to_string h.max_s))
      snap.spans
  end;
  if snap.edges <> [] then begin
    Format.fprintf ppf "  %-28s %8s %8s %8s %6s %6s %6s@," "edge" "sends"
      "recvs" "stalls" "hwm" "b-p50" "b-p95";
    List.iter
      (fun (name, e) ->
        Format.fprintf ppf "  %-28s %8d %8d %8d %6d %6d %6d@," name e.sends
          e.recvs e.stalls e.hwm e.batch_p50 e.batch_p95)
      snap.edges
  end;
  Format.fprintf ppf "  star stages %d, depth high-water %d@]"
    snap.star_stages snap.star_depth_hwm

(* --- serialisation --------------------------------------------------- *)

let to_json snap =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"spans\":[";
  List.iteri
    (fun i (cat, name, h) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"cat\":\"%s\",\"name\":\"%s\",\"count\":%d,\"total\":%.9f,\"max\":%.9f,\"p50\":%.9f,\"p95\":%.9f,\"p99\":%.9f}"
           (Jsonx.escape cat) (Jsonx.escape name) h.count h.total h.max_s h.p50
           h.p95 h.p99))
    snap.spans;
  Buffer.add_string b "],\"edges\":[";
  List.iteri
    (fun i (name, e) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"sends\":%d,\"recvs\":%d,\"stalls\":%d,\"hwm\":%d,\"batches\":%d,\"batch_p50\":%d,\"batch_p95\":%d}"
           (Jsonx.escape name) e.sends e.recvs e.stalls e.hwm e.batches
           e.batch_p50 e.batch_p95))
    snap.edges;
  Buffer.add_string b
    (Printf.sprintf "],\"star_depth_hwm\":%d,\"star_stages\":%d}"
       snap.star_depth_hwm snap.star_stages);
  Buffer.contents b

let of_json s =
  let ( let* ) r f = match r with Some v -> f v | None -> Error "bad metrics json" in
  match Jsonx.parse s with
  | Error e -> Error e
  | Ok j ->
      let* spans_j = Option.bind (Jsonx.member "spans" j) Jsonx.to_list in
      let* edges_j = Option.bind (Jsonx.member "edges" j) Jsonx.to_list in
      let* star_depth_hwm =
        Option.bind (Jsonx.member "star_depth_hwm" j) Jsonx.to_int
      in
      let* star_stages =
        Option.bind (Jsonx.member "star_stages" j) Jsonx.to_int
      in
      let span_of j =
        let* cat = Option.bind (Jsonx.member "cat" j) Jsonx.to_string in
        let* name = Option.bind (Jsonx.member "name" j) Jsonx.to_string in
        let* count = Option.bind (Jsonx.member "count" j) Jsonx.to_int in
        let* total = Option.bind (Jsonx.member "total" j) Jsonx.to_float in
        let* max_s = Option.bind (Jsonx.member "max" j) Jsonx.to_float in
        let* p50 = Option.bind (Jsonx.member "p50" j) Jsonx.to_float in
        let* p95 = Option.bind (Jsonx.member "p95" j) Jsonx.to_float in
        let* p99 = Option.bind (Jsonx.member "p99" j) Jsonx.to_float in
        Ok (cat, name, { count; total; max_s; p50; p95; p99 })
      in
      let edge_of j =
        let* name = Option.bind (Jsonx.member "name" j) Jsonx.to_string in
        let* sends = Option.bind (Jsonx.member "sends" j) Jsonx.to_int in
        let* recvs = Option.bind (Jsonx.member "recvs" j) Jsonx.to_int in
        let* stalls = Option.bind (Jsonx.member "stalls" j) Jsonx.to_int in
        let* hwm = Option.bind (Jsonx.member "hwm" j) Jsonx.to_int in
        (* Absent in metrics files written before batch tracking. *)
        let opt_int key =
          Option.value (Option.bind (Jsonx.member key j) Jsonx.to_int) ~default:0
        in
        Ok
          ( name,
            {
              sends;
              recvs;
              stalls;
              hwm;
              batches = opt_int "batches";
              batch_p50 = opt_int "batch_p50";
              batch_p95 = opt_int "batch_p95";
            } )
      in
      let rec map_result f = function
        | [] -> Ok []
        | x :: xs -> (
            match f x with
            | Error e -> Error e
            | Ok y -> (
                match map_result f xs with
                | Error e -> Error e
                | Ok ys -> Ok (y :: ys)))
      in
      (match map_result span_of spans_j with
      | Error e -> Error e
      | Ok spans -> (
          match map_result edge_of edges_j with
          | Error e -> Error e
          | Ok edges -> Ok { spans; edges; star_depth_hwm; star_stages }))
