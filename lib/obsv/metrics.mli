(** Derived metrics: per-box latency histograms, per-edge throughput
    and queue-depth high-water marks, star depth over time.

    Unlike the event {!Sink} (which retains individual events for
    export), metrics aggregate in place: fixed-size HDR-style
    histograms and atomic counters keyed by component path. They can
    be enabled independently of event recording and are cheap enough
    to leave on for long runs.

    Histograms are log-linear: each power-of-two octave above a 64 ns
    base is split into 8 linear sub-buckets, giving a relative
    quantile error bounded by 1/8 ≈ 12.5% across the full range
    (64 ns .. >1 h). Percentiles are reported as the upper bound of
    the containing bucket, clamped to the observed maximum.

    Concurrency: cells are sharded per domain (like the {!Sink} ring
    buffers) and written single-writer as plain integers — the hot
    path takes no lock and performs no atomic read-modify-write; the
    only lock is on the first touch of a new name in a shard.
    {!snapshot} merges all shards with racy reads, so counters
    recorded while it runs may land in either the returned snapshot
    or the next one: per-field monotone, exact after writers quiesce,
    not a consistent cut (same relaxed semantics as
    [Core.Stats.snapshot]). *)

(** {1 Lifecycle} *)

val enable : unit -> unit
(** Start aggregating; clears previous metrics. *)

val disable : unit -> unit

val on : unit -> bool
val clear : unit -> unit

(** {1 Recording (runtime-internal; callers check {!on} first)} *)

val record_span : cat:string -> name:string -> dt:float -> unit
(** Add a duration (seconds) to the histogram for [cat]/[name]. *)

val record_edge_send : name:string -> depth:int -> unit
(** Count one message onto edge [name]; [depth] is the queue depth
    after the send and updates the high-water mark. *)

val record_edge_recv : name:string -> depth:int -> unit
val record_edge_stall : name:string -> unit

val record_edge_batch : name:string -> size:int -> unit
(** Count one consumer-side batch of [size] messages drained from edge
    [name] in a single lock/park cycle (or one cut-edge envelope).
    Sizes feed an exact small-integer histogram (clamped at 128) from
    which the snapshot reports p50/p95. *)

val record_star_depth : depth:int -> unit

(** {1 Snapshot} *)

type hist = {
  count : int;
  total : float;  (** Sum of observations, seconds. *)
  max_s : float;  (** Largest observation, seconds. *)
  p50 : float;
  p95 : float;
  p99 : float;  (** Percentiles, seconds. *)
}

type edge = {
  sends : int;
  recvs : int;
  stalls : int;
  hwm : int;  (** Queue-depth high-water mark. *)
  batches : int;  (** Consumer-side batch drains observed. *)
  batch_p50 : int;
  batch_p95 : int;
      (** Batch-size percentiles (messages per drain), 0 when no
          batch was recorded. *)
}

type snapshot = {
  spans : (string * string * hist) list;  (** cat, name, histogram. *)
  edges : (string * edge) list;
  star_depth_hwm : int;
  star_stages : int;
}

val snapshot : unit -> snapshot
(** Current aggregates; span and edge lists sorted by name. *)

(** {1 Raw snapshots (cluster aggregation)} *)

(** A raw snapshot keeps the full log-linear bucket arrays instead of
    derived percentiles. Because every process uses the same bucket
    layout ([sub]=8, 64 ns base), raw snapshots from different workers
    merge losslessly by vector addition ({!merge_raw}); the coordinator
    converts the merged result back to a {!snapshot} with
    {!snapshot_of_raw}. {!Agg} ships these across the wire. *)

type raw_span = {
  r_buckets : int array;  (** Log-linear histogram counts. *)
  r_total_ns : int;
  r_max_ns : int;
}

type raw_edge = {
  r_sends : int;
  r_recvs : int;
  r_stalls : int;
  r_hwm : int;
  r_batches : int;
  r_bsizes : int array;  (** Exact batch-size histogram, slot 0 unused. *)
}

type raw = {
  raw_spans : (string * raw_span) list;
      (** Keyed by the packed ["cat\000name"] span key; sorted. *)
  raw_edges : (string * raw_edge) list;  (** Keyed by edge name; sorted. *)
  raw_star_hwm : int;
  raw_star_stages : int;
}

val raw_snapshot : unit -> raw
(** Current aggregates with full buckets (same racy-merge contract as
    {!snapshot}). *)

val merge_raw : raw -> raw -> raw
(** Union of the two: counters and buckets vector-add, high-water
    marks and maxima take the max. Commutative and associative. *)

val snapshot_of_raw : raw -> snapshot
(** Derive percentiles from a (possibly merged) raw snapshot. *)

val empty_raw : raw
(** The identity of {!merge_raw}. *)

val percentile : float -> int array -> max_s:float -> float
(** [percentile q buckets ~max_s] — exposed for the exporter and
    bench; [q] in [0,1], buckets as stored (log-linear). *)

val batch_percentile : float -> int array -> int
(** Percentile over an exact batch-size histogram (as in
    {!raw_edge.r_bsizes}); used by the cluster aggregator. *)

val hist_of_buckets : int array -> total:float -> max_s:float -> hist
(** Build a {!hist} from raw bucket counts (used by bench to report
    percentiles from its own sampled histograms). *)

val pp : Format.formatter -> snapshot -> unit
(** Render the metrics table ([Stats.pp] appends this when metrics
    are on; [snet_top] renders a richer, sorted variant). *)

(** {1 Serialisation (for [--metrics-out] / [snet_top])} *)

val to_json : snapshot -> string
val of_json : string -> (snapshot, string) result
