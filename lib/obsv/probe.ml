(* Hot-path probes; one atomic load + branch when observability is
   off. See probe.mli. *)

let disabled = neg_infinity

let span_start () = if Sink.active () then Sink.now () else disabled

let span_end ~cat ~name t0 =
  if t0 <> disabled then begin
    let t1 = Sink.now () in
    if Sink.flag Sink.metrics_bit then
      Metrics.record_span ~cat ~name ~dt:(t1 -. t0);
    if Sink.events_on () then begin
      Sink.emit ~kind:Begin ~cat ~name ~value:0 ~ts:t0;
      Sink.emit ~kind:End ~cat ~name ~value:0 ~ts:t1
    end
  end

let instant ~cat ~name ?(value = 0) () =
  if Sink.events_on () then Sink.emit_now ~kind:Instant ~cat ~name ~value

let counter ~cat ~name ~value =
  if Sink.events_on () then Sink.emit_now ~kind:Counter ~cat ~name ~value

let edge_send ~name ~depth =
  if Sink.active () then begin
    if Sink.flag Sink.metrics_bit then Metrics.record_edge_send ~name ~depth;
    if Sink.events_on () then
      Sink.emit_now ~kind:Counter ~cat:"edge" ~name ~value:depth
  end

let edge_recv ~name ~depth =
  if Sink.active () then begin
    if Sink.flag Sink.metrics_bit then Metrics.record_edge_recv ~name ~depth;
    if Sink.events_on () then
      Sink.emit_now ~kind:Counter ~cat:"edge" ~name ~value:depth
  end

let edge_batch ~name ~size =
  if Sink.active () then begin
    if Sink.flag Sink.metrics_bit then Metrics.record_edge_batch ~name ~size;
    if Sink.events_on () then
      Sink.emit_now ~kind:Counter ~cat:"edge" ~name:(name ^ "!batch") ~value:size
  end

let edge_stall ~name =
  if Sink.active () then begin
    if Sink.flag Sink.metrics_bit then Metrics.record_edge_stall ~name;
    if Sink.events_on () then
      Sink.emit_now ~kind:Instant ~cat:"edge" ~name:(name ^ "!stall") ~value:0
  end

let flow_start ~cat ~name ~id =
  if Sink.events_on () then Sink.emit_now ~kind:Flow_start ~cat ~name ~value:id

let flow_end ~cat ~name ~id =
  if Sink.events_on () then Sink.emit_now ~kind:Flow_end ~cat ~name ~value:id

(* --- trace context ---------------------------------------------------- *)

let trace_tag = "obsv_trace"

let trace_seq = Atomic.make 1
let fresh_trace () = Atomic.fetch_and_add trace_seq 1

let star_depth ~depth =
  if Sink.active () then begin
    if Sink.flag Sink.metrics_bit then Metrics.record_star_depth ~depth;
    if Sink.events_on () then
      Sink.emit_now ~kind:Counter ~cat:"star" ~name:"star-depth" ~value:depth
  end
