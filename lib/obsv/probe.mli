(** Probes: the instrumentation points the runtime calls.

    Every function here is safe to call unconditionally from hot
    paths: when neither the event {!Sink} nor {!Metrics} is enabled it
    is one atomic load and a predicted branch. Span probes return a
    start timestamp so the clock is read only when something is
    listening; [span_start] hands back {!disabled} (checked by
    physical comparison against [neg_infinity]) when off, and
    [span_end] on a disabled start is a no-op — so a sink toggled
    mid-span cannot produce an unmatched [End]. *)

val disabled : float
(** Sentinel returned by {!span_start} when observability is off.
    [neg_infinity], because [0.] is a valid virtual-clock reading. *)

val span_start : unit -> float
(** Current time if anything is listening, {!disabled} otherwise. *)

val span_end : cat:string -> name:string -> float -> unit
(** Close a span opened at the given start time: records the duration
    histogram when metrics are on and a [Begin]/[End] event pair when
    the sink is on. No-op when the start is {!disabled}. *)

val instant : cat:string -> name:string -> ?value:int -> unit -> unit
(** Point event (pool steal/park, supervision retry/timeout/error). *)

val counter : cat:string -> name:string -> value:int -> unit
(** Sampled series value, e.g. star unfolding depth over time. *)

(** {1 Edge probes} — channel/mailbox activity, keyed by edge name. *)

val edge_send : name:string -> depth:int -> unit
(** A message entered the edge; [depth] is the queue depth after. *)

val edge_recv : name:string -> depth:int -> unit
(** A message left the edge; [depth] is the queue depth after. *)

val edge_batch : name:string -> size:int -> unit
(** A consumer drained a run of [size] messages from the edge in one
    batch (one lock/park cycle, or one cut-edge envelope). Feeds the
    per-edge batch-size distribution ([edge_batch_size] p50/p95 in
    [snet_top]). *)

val edge_stall : name:string -> unit
(** A producer blocked on backpressure at this edge. *)

val star_depth : depth:int -> unit
(** A star stage unfolded to [depth]. *)

(** {1 Flow probes} — causal arrows between spans, possibly across
    processes. A [flow_start]/[flow_end] pair sharing an [id] renders
    as an arrow in the merged Chrome trace ({!Export}, ph ["s"]/["f"]),
    linking the slice enclosing the start to the slice enclosing the
    end even when the two halves were recorded by different workers. *)

val flow_start : cat:string -> name:string -> id:int -> unit
(** The causal arrow with the given [id] leaves the current track. *)

val flow_end : cat:string -> name:string -> id:int -> unit
(** The causal arrow with the given [id] arrives at the current track. *)

(** {1 Trace context} — the record-level identity that survives cut
    edges. The coordinator (or serve gateway) stamps each record at net
    ingress with a fresh trace id under the reserved record tag
    {!trace_tag}; the tag rides the wire like any other tag, is copied
    to outputs by flow inheritance, and is stripped again before
    records leave the net. Flow ids are derived from it as
    [trace * 1024 + hop] so per-hop arrows stay unique. *)

val trace_tag : string
(** Reserved record tag carrying the trace id ("obsv_trace"). *)

val fresh_trace : unit -> int
(** Next trace id (process-global, starts at 1). Only the single
    ingress process allocates ids for a run, so no cross-process
    coordination is needed. *)
