(* Prometheus text exposition (version 0.0.4). See prom.mli. *)

(* Label values: backslash, double-quote and newline must be escaped;
   everything else passes through verbatim. *)
let escape_label s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let header b name typ help =
  Printf.bprintf b "# HELP %s %s\n# TYPE %s %s\n" name help name typ

let line b name labels v =
  (match labels with
  | [] -> Buffer.add_string b name
  | ls ->
      Buffer.add_string b name;
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, value) ->
          if i > 0 then Buffer.add_char b ',';
          Printf.bprintf b "%s=\"%s\"" k (escape_label value))
        ls;
      Buffer.add_char b '}');
  Buffer.add_char b ' ';
  Buffer.add_string b (num v);
  Buffer.add_char b '\n'

let render ?(parts = []) ?journal (snap : Metrics.snapshot) =
  let b = Buffer.create 4096 in
  if snap.spans <> [] then begin
    header b "snet_span_latency_seconds" "summary"
      "Span latency per category and name.";
    List.iter
      (fun (cat, name, (h : Metrics.hist)) ->
        let l q = [ ("cat", cat); ("name", name); ("quantile", q) ] in
        line b "snet_span_latency_seconds" (l "0.5") h.p50;
        line b "snet_span_latency_seconds" (l "0.95") h.p95;
        line b "snet_span_latency_seconds" (l "0.99") h.p99;
        line b "snet_span_latency_seconds_sum"
          [ ("cat", cat); ("name", name) ]
          h.total;
        line b "snet_span_latency_seconds_count"
          [ ("cat", cat); ("name", name) ]
          (float_of_int h.count))
      snap.spans
  end;
  if snap.edges <> [] then begin
    let edge_counter field help pick =
      header b field "counter" help;
      List.iter
        (fun (name, (e : Metrics.edge)) ->
          line b field [ ("edge", name) ] (float_of_int (pick e)))
        snap.edges
    in
    let edge_gauge field help pick =
      header b field "gauge" help;
      List.iter
        (fun (name, (e : Metrics.edge)) ->
          line b field [ ("edge", name) ] (float_of_int (pick e)))
        snap.edges
    in
    edge_counter "snet_edge_sends_total" "Messages sent onto the edge."
      (fun e -> e.sends);
    edge_counter "snet_edge_recvs_total" "Messages received from the edge."
      (fun e -> e.recvs);
    edge_counter "snet_edge_stalls_total" "Producer backpressure stalls."
      (fun e -> e.stalls);
    edge_gauge "snet_edge_queue_hwm" "Queue-depth high-water mark." (fun e ->
        e.hwm);
    edge_counter "snet_edge_batches_total" "Consumer-side batch drains."
      (fun e -> e.batches);
    edge_gauge "snet_edge_batch_p50" "Median batch size (messages per drain)."
      (fun e -> e.batch_p50);
    edge_gauge "snet_edge_batch_p95" "p95 batch size (messages per drain)."
      (fun e -> e.batch_p95)
  end;
  header b "snet_star_stages_total" "counter" "Star stages unfolded.";
  line b "snet_star_stages_total" [] (float_of_int snap.star_stages);
  header b "snet_star_depth_hwm" "gauge" "Star depth high-water mark.";
  line b "snet_star_depth_hwm" [] (float_of_int snap.star_depth_hwm);
  if parts <> [] then begin
    let part_metric typ field help pick =
      header b field typ help;
      List.iter
        (fun (p : Health.part) ->
          line b field [ ("part", string_of_int p.part) ] (pick p))
        parts
    in
    let fi pick (p : Health.part) = float_of_int (pick p) in
    part_metric "gauge" "snet_partition_up"
      "1 while the partition is alive, 0 after it died." (fun p ->
        if p.alive then 1. else 0.);
    part_metric "gauge" "snet_partition_queue_depth"
      "Records queued plus in flight toward the partition."
      (fi (fun p -> p.queue_depth));
    part_metric "gauge" "snet_partition_credit_window" "Credit window size."
      (fi (fun p -> p.window));
    part_metric "gauge" "snet_partition_credits_free"
      "Unused credits (occupancy = window - free)."
      (fi (fun p -> p.credits_free));
    part_metric "counter" "snet_partition_sends_total"
      "Messages sent at the partition's edges." (fi (fun p -> p.sends));
    part_metric "counter" "snet_partition_recvs_total"
      "Messages received at the partition's edges." (fi (fun p -> p.recvs));
    part_metric "counter" "snet_partition_stalls_total"
      "Backpressure stalls at the partition's edges." (fi (fun p -> p.stalls));
    part_metric "gauge" "snet_partition_stall_rate" "Stalls per send." (fun p ->
        p.stall_rate);
    part_metric "counter" "snet_partition_migrations_total"
      "Live repartitionings the partition went through."
      (fi (fun p -> p.migrations));
    part_metric "gauge" "snet_partition_batch_p50" "Median batch size."
      (fi (fun p -> p.batch_p50));
    part_metric "gauge" "snet_partition_batch_p95" "p95 batch size."
      (fi (fun p -> p.batch_p95));
    part_metric "gauge" "snet_partition_journal_lag"
      "Journal entries since the partition's last snapshot."
      (fi (fun p -> p.journal_lag));
    part_metric "gauge" "snet_partition_report_age_seconds"
      "Seconds since the partition's last report (-1 if none)." (fun p ->
        p.age)
  end;
  (match journal with
  | None -> ()
  | Some (j : Journal_stats.snapshot) ->
      let jc field help v =
        header b field "counter" help;
        line b field [] (float_of_int v)
      in
      jc "snet_journal_appends_total" "Journal entries written." j.appends;
      jc "snet_journal_append_bytes_total" "Journal bytes written."
        j.append_bytes;
      jc "snet_journal_fsyncs_total" "Journal fsyncs." j.fsyncs;
      jc "snet_journal_replays_total" "Entries replayed during recovery."
        j.replays;
      jc "snet_journal_snapshots_total" "Net snapshots persisted." j.snapshots;
      header b "snet_journal_lag" "gauge"
        "High-water mark of entries since the last snapshot.";
      line b "snet_journal_lag" [] (float_of_int j.lag));
  Buffer.contents b
