(** Prometheus text exposition (format version 0.0.4) of a metrics
    snapshot, optionally joined with partition health rows and journal
    counters. Served by the snet_serve HTTP gateway at
    [/metrics?format=prometheus]; also usable for one-shot dumps.

    Series: [snet_span_latency_seconds{cat,name,quantile}] summaries,
    [snet_edge_*{edge}] counters/gauges, [snet_star_*],
    [snet_partition_*{part}] health gauges (queue depth, credit window
    occupancy, stall rate, batch percentiles, journal lag, liveness)
    and [snet_journal_*] durability counters. *)

val render :
  ?parts:Health.part list ->
  ?journal:Journal_stats.snapshot ->
  Metrics.snapshot ->
  string
(** Render the exposition text; every line is [name{labels} value] or
    a [# HELP]/[# TYPE] comment, and label values are escaped per the
    exposition-format rules. *)
