(* Lock-free per-domain ring buffers of timed events. See sink.mli. *)

type kind = Begin | End | Instant | Counter | Flow_start | Flow_end

type event = {
  seq : int;
  ts : float;
  track : int;
  kind : kind;
  cat : string;
  name : string;
  value : int;
}

let dummy =
  { seq = -1; ts = 0.; track = 0; kind = Instant; cat = ""; name = ""; value = 0 }

(* --- gate ------------------------------------------------------------ *)

let events_bit = 1
let metrics_bit = 2
let flags = Atomic.make 0

let set_flag bit on =
  let rec go () =
    let v = Atomic.get flags in
    let v' = if on then v lor bit else v land lnot bit in
    if not (Atomic.compare_and_set flags v v') then go ()
  in
  go ()

let flag bit = Atomic.get flags land bit <> 0
let events_on () = flag events_bit
let active () = Atomic.get flags <> 0

(* --- clock ----------------------------------------------------------- *)

let clock : (unit -> float) ref = ref Unix.gettimeofday
let set_clock f = clock := f
let now () = !clock ()

(* --- rings ----------------------------------------------------------- *)

(* One ring per domain, found through DLS so recording needs no lock.
   [head] counts events ever written; the slot is [head mod capacity],
   so a full ring overwrites its oldest entries (drop-oldest) and the
   overflow is [head - capacity]. Threads sharing a domain (the
   thread-per-component engine) get unique slots from the atomic
   fetch-and-add on [head]. *)
type ring = { slots : event array; head : int Atomic.t; gen : int }

let default_capacity = 65536
let capacity = Atomic.make default_capacity
let generation = Atomic.make 0
let registry : ring list ref = ref []
let registry_mutex = Mutex.create ()
let seq = Atomic.make 0

let new_ring () =
  let r =
    { slots = Array.make (Atomic.get capacity) dummy;
      head = Atomic.make 0;
      gen = Atomic.get generation }
  in
  Mutex.protect registry_mutex (fun () -> registry := r :: !registry);
  r

let ring_key = Domain.DLS.new_key new_ring

(* [clear] bumps the generation and empties the registry, but each
   domain still holds its old ring in DLS; the next emit there notices
   the stale generation (or capacity change) and registers a fresh
   ring, lazily completing the reset. *)
let my_ring () =
  let r = Domain.DLS.get ring_key in
  if
    r.gen = Atomic.get generation
    && Array.length r.slots = Atomic.get capacity
  then r
  else begin
    let r' = new_ring () in
    Domain.DLS.set ring_key r';
    r'
  end

let track_id () =
  ((Domain.self () :> int) lsl 16) lor (Thread.id (Thread.self ()) land 0xFFFF)

let emit ~kind ~cat ~name ~value ~ts =
  let r = my_ring () in
  let s = Atomic.fetch_and_add seq 1 in
  let slot = Atomic.fetch_and_add r.head 1 mod Array.length r.slots in
  r.slots.(slot) <- { seq = s; ts; track = track_id (); kind; cat; name; value }

let emit_now ~kind ~cat ~name ~value = emit ~kind ~cat ~name ~value ~ts:(now ())

(* --- lifecycle and reading ------------------------------------------ *)

let clear () =
  Atomic.incr generation;
  Mutex.protect registry_mutex (fun () -> registry := []);
  Atomic.set seq 0

let enable ?capacity:(c = default_capacity) () =
  Atomic.set capacity (max 1 c);
  clear ();
  set_flag events_bit true

let disable () = set_flag events_bit false

let rings () = Mutex.protect registry_mutex (fun () -> !registry)

let events () =
  let collect r =
    let head = Atomic.get r.head in
    let cap = Array.length r.slots in
    let n = min head cap in
    List.init n (fun i -> r.slots.((head - n + i) mod cap))
  in
  rings ()
  |> List.concat_map collect
  |> List.filter (fun e -> e.seq >= 0)
  |> List.sort (fun a b -> compare a.seq b.seq)

let dropped () =
  rings ()
  |> List.fold_left
       (fun acc r -> acc + max 0 (Atomic.get r.head - Array.length r.slots))
       0
