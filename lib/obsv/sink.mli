(** The structured-event sink: timed span/instant/counter events in
    lock-free per-domain ring buffers.

    The S+Net line of work (Poss et al., arXiv:1306.2743) argues that a
    coordination runtime must expose extra-functional observables —
    where time goes, which queue backs up — alongside functional
    behaviour. This sink is the collection layer: runtime components
    ({!Probe} call sites in the engines, the actor layer, the
    work-stealing pool and supervision) record events here when the
    sink is enabled, and exporters ({!Export}) turn the drained events
    into Chrome [trace_event] JSON or JSONL.

    Pay-for-what-you-use: with the sink (and {!Metrics}) disabled every
    probe reduces to one atomic load and a predicted branch; no clock
    read, no allocation. Enabling costs one global sequence increment,
    one ring-slot write and a clock read per event.

    Concurrency: each domain writes its own ring buffer (registered on
    first use), so recording never takes a lock. Threads of the same
    domain share that domain's ring through an atomic head counter.
    {!events}/{!dropped}/{!clear} are meant for the quiet points
    between runs — draining while producers are still emitting yields
    a racy (but memory-safe) snapshot. *)

type kind =
  | Begin  (** Span opened; always followed by {!End} on the same track. *)
  | End  (** Span closed. *)
  | Instant  (** A point event (steal, park, retry, stall). *)
  | Counter  (** A sampled series value (queue depth, star depth). *)
  | Flow_start
      (** Causal arrow leaves this track; [value] is the flow id shared
          with the matching {!Flow_end} (possibly in another process). *)
  | Flow_end  (** Causal arrow arrives; [value] is the flow id. *)

type event = {
  seq : int;  (** Global, monotone emission order across all domains. *)
  ts : float;  (** {!now} at emission — virtual under detcheck. *)
  track : int;  (** Emitting domain and thread; spans never cross tracks. *)
  kind : kind;
  cat : string;  (** "box", "filter", "edge", "pool", "sup", "star", ... *)
  name : string;  (** Component path, counter name, ... *)
  value : int;  (** Counter sample / instant payload; [0] otherwise. *)
}

(** {1 Lifecycle} *)

val enable : ?capacity:int -> unit -> unit
(** Start recording events. [capacity] (default [65536], at least 1)
    bounds every per-domain ring: when a ring is full the {e oldest}
    events are overwritten and counted in {!dropped}. Clears previously
    recorded events. *)

val disable : unit -> unit
(** Stop recording. Already-recorded events stay readable. *)

val events_on : unit -> bool
(** Whether the event sink is recording. *)

val active : unit -> bool
(** Whether {e any} observability consumer (event sink or
    {!Metrics}) is on — the single hot-path gate every probe checks
    first. *)

val clear : unit -> unit
(** Drop all recorded events and reset the sequence counter and drop
    counts. Rings are re-allocated at the current capacity. *)

(** {1 Reading} *)

val events : unit -> event list
(** Snapshot of all retained events, ordered by [seq]. *)

val dropped : unit -> int
(** Events lost to ring overwrite since the last {!clear}/{!enable}. *)

(** {1 Clock} *)

val set_clock : (unit -> float) -> unit
(** Install the timestamp source. [Scheduler.Clock] installs its
    pluggable [now] on startup, so event time follows the virtual
    clock under detcheck; the fallback is [Unix.gettimeofday]. *)

val now : unit -> float

(** {1 Recording (runtime-internal)} *)

val emit : kind:kind -> cat:string -> name:string -> value:int -> ts:float -> unit
(** Record one event with an explicit timestamp (used for span begins,
    whose start time was captured before the work ran). Callers must
    check {!events_on} first; [emit] itself does not. *)

val emit_now : kind:kind -> cat:string -> name:string -> value:int -> unit
(** [emit] stamped with {!now}. *)

(** {1 Flag plumbing (for {!Metrics})} *)

val events_bit : int
val metrics_bit : int
val set_flag : int -> bool -> unit
val flag : int -> bool
