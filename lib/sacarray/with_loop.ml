type generator = {
  lower : int array;
  upper : int array; (* exclusive *)
  step : int array;
  counts : int array; (* index points per axis *)
}

let make_generator lower upper step =
  let r = Array.length lower in
  if Array.length upper <> r then
    invalid_arg "With_loop.range: lower/upper rank mismatch";
  if Array.length step <> r then
    invalid_arg "With_loop.range: step rank mismatch";
  Array.iter
    (fun s -> if s < 1 then invalid_arg "With_loop.range: step < 1")
    step;
  let counts =
    Array.init r (fun d ->
        let extent = upper.(d) - lower.(d) in
        if extent <= 0 then 0 else ((extent - 1) / step.(d)) + 1)
  in
  {
    lower = Array.copy lower;
    upper = Array.copy upper;
    step = Array.copy step;
    counts;
  }

let range ?step lower upper =
  let step =
    match step with
    | Some s -> s
    | None -> Array.make (Array.length lower) 1
  in
  make_generator lower upper step

let range_incl ?step lower upper =
  let upper_excl = Array.map (fun c -> c + 1) upper in
  range ?step lower upper_excl

let generator_size g = Shape.size g.counts
let generator_rank g = Array.length g.lower

let generator_mem g idx =
  Array.length idx = generator_rank g
  && (let ok = ref true in
      for d = 0 to Array.length idx - 1 do
        let c = idx.(d) in
        if
          c < g.lower.(d)
          || c >= g.upper.(d)
          || (c - g.lower.(d)) mod g.step.(d) <> 0
        then ok := false
      done;
      !ok)

(* The [k]-th index point of [g] in row-major order over the point grid. *)
let nth_point g k =
  let idx = Shape.unravel g.counts k in
  for d = 0 to Array.length idx - 1 do
    idx.(d) <- g.lower.(d) + (idx.(d) * g.step.(d))
  done;
  idx

let generator_iter g f =
  let n = generator_size g in
  for k = 0 to n - 1 do
    f (nth_point g k)
  done

type 'a part = generator * (int array -> 'a)

let check_generator ~shape g =
  if generator_rank g <> Shape.rank shape then
    invalid_arg
      (Printf.sprintf "With_loop: generator rank %d against shape %s"
         (generator_rank g) (Shape.to_string shape));
  if generator_size g > 0 then begin
    (* The extreme points bound the whole rectangle. *)
    let top =
      Array.init (generator_rank g) (fun d ->
          g.lower.(d) + ((g.counts.(d) - 1) * g.step.(d)))
    in
    if not (Shape.mem shape g.lower && Shape.mem shape top) then
      invalid_arg
        (Printf.sprintf
           "With_loop: generator %s..%s escapes shape %s"
           (Shape.to_string g.lower) (Shape.to_string g.upper)
           (Shape.to_string shape))
  end

(* Sequential cutoff: ranges smaller than this are not worth forking. *)
let parallel_cutoff = 512

(* ------------------------------------------------------------------ *)
(* Chunk executors.

   Each executor evaluates the generator points [klo, khi) of the
   row-major point grid using ONE scratch index vector for the whole
   chunk — the body sees the vector only for the duration of its call
   (the .mli documents this). The dense fast path (all steps = 1)
   additionally walks the destination buffer by flat offset: along the
   last axis consecutive grid points are consecutive row-major cells,
   so one [ravel] per visited row replaces a [ravel]+[unravel] (two
   array allocations) per element. *)

let is_dense g = Array.for_all (fun s -> s = 1) g.step

(* Write the coordinates of grid point [k] into the scratch [idx]. *)
let point_into g k idx =
  Shape.unravel_into g.counts k idx;
  for d = 0 to Array.length idx - 1 do
    idx.(d) <- g.lower.(d) + (idx.(d) * g.step.(d))
  done

let run_chunk_general ~shape data g body klo khi =
  let idx = Array.make (generator_rank g) 0 in
  for k = klo to khi - 1 do
    point_into g k idx;
    data.(Shape.ravel shape idx) <- body idx
  done

let run_chunk_dense ~shape data g body klo khi =
  let r = generator_rank g in
  if r = 0 then begin
    if klo < khi then data.(0) <- body [||]
  end
  else begin
    let m = g.counts.(r - 1) in
    let last_lo = g.lower.(r - 1) in
    let idx = Array.make r 0 in
    let k = ref klo in
    while !k < khi do
      point_into g !k idx;
      let off = ref (Shape.ravel shape idx) in
      let j0 = !k mod m in
      let len = min (m - j0) (khi - !k) in
      for j = j0 to j0 + len - 1 do
        idx.(r - 1) <- last_lo + j;
        data.(!off) <- body idx;
        incr off
      done;
      k := !k + len
    done
  end

(* Iterate grid points [klo, khi) with a reused scratch vector; the
   dense case advances the vector odometer-style instead of dividing
   [k] back into coordinates for every point. *)
let chunk_iter g klo khi f =
  if klo < khi then begin
    let r = generator_rank g in
    let idx = Array.make r 0 in
    if is_dense g && r > 0 then begin
      point_into g klo idx;
      let last = r - 1 in
      let lo_last = g.lower.(last) in
      let hi_last = lo_last + g.counts.(last) in
      for _k = klo to khi - 1 do
        f idx;
        let v = idx.(last) + 1 in
        if v < hi_last then idx.(last) <- v
        else begin
          idx.(last) <- lo_last;
          let d = ref (last - 1) in
          let carry = ref true in
          while !carry && !d >= 0 do
            let v = idx.(!d) + 1 in
            if v < g.lower.(!d) + g.counts.(!d) then begin
              idx.(!d) <- v;
              carry := false
            end
            else begin
              idx.(!d) <- g.lower.(!d);
              decr d
            end
          done
        end
      done
    end
    else
      for k = klo to khi - 1 do
        point_into g k idx;
        f idx
      done
  end

let use_pool pool n =
  match pool with
  | Some pool when n >= parallel_cutoff && Scheduler.Pool.parallelism pool > 1
    ->
      Some pool
  | _ -> None

let run_part ?pool ~shape data (g, body) =
  check_generator ~shape g;
  let n = generator_size g in
  if n > 0 then begin
    let chunk =
      if is_dense g then run_chunk_dense ~shape data g body
      else run_chunk_general ~shape data g body
    in
    match use_pool pool n with
    | Some pool ->
        Scheduler.Pool.parallel_for_range pool ~lo:0 ~hi:n
          (fun ~lo ~hi -> chunk lo hi)
    | None -> chunk 0 n
  end

let genarray ?pool ~shape ~default parts =
  Shape.validate shape;
  let data = Array.make (Shape.size shape) default in
  List.iter (run_part ?pool ~shape data) parts;
  Nd.unsafe_of_array (Array.copy shape) data

(* Full dense cover from the origin: grid point [k] IS flat offset [k],
   so no ravel at all — just an odometer-advanced index vector. *)
let init_chunk ~shape data body klo khi =
  if klo < khi then begin
    let r = Shape.rank shape in
    let idx = Array.make r 0 in
    Shape.unravel_into shape klo idx;
    for k = klo to khi - 1 do
      data.(k) <- body idx;
      let d = ref (r - 1) in
      let carry = ref true in
      while !carry && !d >= 0 do
        let v = idx.(!d) + 1 in
        if v < shape.(!d) then begin
          idx.(!d) <- v;
          carry := false
        end
        else begin
          idx.(!d) <- 0;
          decr d
        end
      done
    done
  end

let genarray_init ?pool ~shape body =
  Shape.validate shape;
  let n = Shape.size shape in
  if n = 0 then Nd.unsafe_of_array (Array.copy shape) [||]
  else begin
    (* Seed the buffer with the first element's value, then fill the
       rest; every index is evaluated exactly once. *)
    let first = body (Array.make (Shape.rank shape) 0) in
    let data = Array.make n first in
    (match use_pool pool n with
    | Some pool ->
        Scheduler.Pool.parallel_for_range pool ~lo:1 ~hi:n
          (fun ~lo ~hi -> init_chunk ~shape data body lo hi)
    | None -> init_chunk ~shape data body 1 n);
    Nd.unsafe_of_array (Array.copy shape) data
  end

let modarray ?pool src parts =
  let shape = Nd.shape src in
  let data = Nd.to_flat_array src in
  List.iter (run_part ?pool ~shape data) parts;
  Nd.unsafe_of_array shape data

let fold ?pool ~neutral ~combine parts =
  let fold_part acc (g, body) =
    let n = generator_size g in
    if n = 0 then acc
    else
      match use_pool pool n with
      | Some pool ->
          combine acc
            (Scheduler.Pool.parallel_for_reduce_range pool ~lo:0 ~hi:n
               ~combine ~init:neutral (fun ~lo ~hi ->
                 let a = ref neutral in
                 chunk_iter g lo hi (fun idx -> a := combine !a (body idx));
                 !a))
      | None ->
          let a = ref acc in
          chunk_iter g 0 n (fun idx -> a := combine !a (body idx));
          !a
  in
  List.fold_left fold_part neutral parts
