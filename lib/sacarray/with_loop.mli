(** SaC with-loops: data-parallel array comprehensions.

    A with-loop associates one or more {e generators} — rectangular,
    optionally strided index sets — with element expressions and builds
    an array ({!genarray}, {!modarray}) or folds a value ({!fold}).
    As in the paper (Section 2):

    - no evaluation order is defined {e within} a generator, which is
      what makes with-loops data-parallel for free;
    - when generators overlap, {e later generators win}: the paper's
      example sets index [3] to the second generator's value;
    - elements of a genarray covered by no generator take the default
      value; elements of a modarray take the source array's value.

    Passing [~pool] executes each generator's index space in parallel
    on the given {!Scheduler.Pool.t}; omitting it runs sequentially.
    Bodies must be pure: they may run in any order and concurrently.
    The index vector passed to a body is a scratch buffer reused across
    the calls of one execution chunk — it is valid only for the
    duration of the call, and a body that wants to retain it must copy
    it. (Dense unit-step generators additionally run on a fast path
    that walks the result buffer by flat offset; both paths produce
    identical arrays.) *)

type generator
(** A rectangular index set [lower <= iv < upper], optionally strided. *)

val range : ?step:int array -> int array -> int array -> generator
(** [range lower upper] is the generator [lower <= iv < upper]; with
    [~step] only indices [lower + k*step] (component-wise) are members.
    @raise Invalid_argument on rank mismatch or non-positive steps. *)

val range_incl : ?step:int array -> int array -> int array -> generator
(** [range_incl lower upper] is [lower <= iv <= upper] — the form the
    paper's [addNumber] uses. *)

val generator_size : generator -> int
(** Number of index points. *)

val generator_rank : generator -> int

val generator_mem : generator -> int array -> bool
(** Membership test, including the stride constraint. *)

val generator_iter : generator -> (int array -> unit) -> unit
(** Row-major iteration; a fresh vector per call. *)

(** {1 With-loop forms} *)

type 'a part = generator * (int array -> 'a)
(** One [generator : expr] association. *)

val genarray :
  ?pool:Scheduler.Pool.t ->
  shape:Shape.t ->
  default:'a ->
  'a part list ->
  'a Nd.t
(** [genarray ~shape ~default parts] — the paper's
    [with { gens }: genarray(shape, default)].
    @raise Invalid_argument if any generator index falls outside
    [shape] or has the wrong rank. *)

val genarray_init :
  ?pool:Scheduler.Pool.t -> shape:Shape.t -> (int array -> 'a) -> 'a Nd.t
(** A genarray whose single generator covers the whole index space, so
    no default is needed: [genarray_init ~shape f] evaluates [f]
    exactly once per index. This is the form most derived array
    operations (map, zipwith, selection) compile to. *)

val modarray : ?pool:Scheduler.Pool.t -> 'a Nd.t -> 'a part list -> 'a Nd.t
(** [modarray src parts] — a new array shaped like [src] with the
    generator-covered elements recomputed. *)

val fold :
  ?pool:Scheduler.Pool.t ->
  neutral:'a ->
  combine:('a -> 'a -> 'a) ->
  'a part list ->
  'a
(** Fold-with-loop: combine the value of every generator point with
    [combine], starting from [neutral]. [combine] must be associative
    and commutative with unit [neutral] — with-loops define no
    evaluation order. *)
