(* Chase & Lev, "Dynamic circular work-stealing deque", SPAA 2005,
   with the memory-ordering fixes of Lê et al. (PPoPP 2013) as far as
   OCaml's sequentially-consistent [Atomic] requires (OCaml atomics are
   SC, so the subtle fences of the C11 version are implicit). *)

type 'a buffer = {
  log_size : int;
  elements : 'a option array;
}

let buffer_create log_size =
  { log_size; elements = Array.make (1 lsl log_size) None }

let buffer_get buf i = buf.elements.(i land ((1 lsl buf.log_size) - 1))
let buffer_set buf i v = buf.elements.(i land ((1 lsl buf.log_size) - 1)) <- v

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a buffer Atomic.t;
}

let log2_ceil n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  go 0

let create ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Chase_lev.create: capacity < 1";
  (* Exactly the documented rounding: the smallest power of two >=
     [capacity] (at least 2, since [push] grows when size-1 slots are
     full).  Growth doubles from there, so a deliberately tiny initial
     capacity is honoured rather than silently clamped to 16. *)
  { top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (buffer_create (max 1 (log2_ceil capacity)));
  }

let size t =
  let b = Atomic.get t.bottom and tp = Atomic.get t.top in
  max 0 (b - tp)

let is_empty t = size t = 0

let grow t bottom top =
  let old = Atomic.get t.buf in
  let fresh = buffer_create (old.log_size + 1) in
  for i = top to bottom - 1 do
    buffer_set fresh i (buffer_get old i)
  done;
  Atomic.set t.buf fresh;
  fresh

let push t v =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let buf = Atomic.get t.buf in
  let buf =
    if b - tp >= (1 lsl buf.log_size) - 1 then grow t b tp else buf
  in
  buffer_set buf b (Some v);
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  let buf = Atomic.get t.buf in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if b < tp then begin
    (* Deque was empty; restore the canonical empty state. *)
    Atomic.set t.bottom tp;
    None
  end
  else begin
    let v = buffer_get buf b in
    if b > tp then begin
      buffer_set buf b None;
      v
    end
    else begin
      (* Last element: race against thieves for it with a CAS on top. *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then begin
        buffer_set buf b None;
        v
      end
      else None
    end
  end

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else begin
    let buf = Atomic.get t.buf in
    let v = buffer_get buf tp in
    if Atomic.compare_and_set t.top tp (tp + 1) then v else None
  end
