(** Chase–Lev work-stealing deque (SPAA 2005), dynamically growing.

    A single owner pushes and pops at the bottom; any number of thieves
    steal from the top. Lock-free except for buffer growth, which only
    the owner performs. This is the per-worker run queue of the actor
    engine and an optional backend for the {!Pool}. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] (default 64) is rounded up to the smallest power of two
    at least as large (minimum 2). The buffer doubles automatically on
    {!push} when full, so capacity only sets the initial allocation.
    @raise Invalid_argument if [capacity < 1]. *)

val push : 'a t -> 'a -> unit
(** Owner only: push at the bottom, growing the buffer if full. *)

val pop : 'a t -> 'a option
(** Owner only: pop the most recently pushed element (LIFO). *)

val steal : 'a t -> 'a option
(** Any thread: steal the oldest element (FIFO). Returns [None] when
    the deque looks empty or the steal races with a conflicting
    operation. *)

val size : 'a t -> int
(** Racy snapshot of the number of stored elements. *)

val is_empty : 'a t -> bool
