type source = {
  now : unit -> float;
  sleep : float -> unit;
  label : string;
}

let wall =
  { now = Unix.gettimeofday; sleep = Thread.delay; label = "wall" }

(* A plain atomic, not DLS: a virtual source is only ever installed by
   a detcheck run, which executes the whole system single-threaded on
   the installing thread. *)
let current = Atomic.make wall

let now () = (Atomic.get current).now ()
let sleep d = if d > 0. then (Atomic.get current).sleep d
let label () = (Atomic.get current).label

let with_source src f =
  let prev = Atomic.exchange current src in
  Fun.protect ~finally:(fun () -> Atomic.set current prev) f

(* Observability events are stamped through this clock, so traces
   recorded under detcheck carry virtual time. Installed at module
   init: [obsv] is below [scheduler] in the link order, so the sink
   exists before any probe can fire. *)
let () = Obsv.Sink.set_clock now
