(** The runtime's clock, as a pluggable source.

    Everything in the runtime that reads time or delays (supervision
    timeouts, retry backoff) goes through {!now} and {!sleep} so that
    deterministic tests can substitute a {e virtual} clock: [now]
    returns virtual time and [sleep] advances it instantly, making
    timeout behaviour both instantaneous and schedule-reproducible.
    The production source is the wall clock. *)

type source = {
  now : unit -> float;  (** Seconds, same epoch discipline as the source. *)
  sleep : float -> unit;
  label : string;
}

val wall : source
(** [Unix.gettimeofday] / [Thread.delay]. The default. *)

val now : unit -> float
val sleep : float -> unit
(** No-op for non-positive durations. *)

val label : unit -> string

val with_source : source -> (unit -> 'a) -> 'a
(** Install [source] for the duration of the callback (restored on
    exception). Installation is process-global: callers are expected
    to run the system under test single-threaded (detcheck does). *)
