exception Deadlock of string

let () =
  Printexc.register_printer (function
    | Deadlock msg -> Some (Printf.sprintf "Exec.Deadlock(%s)" msg)
    | _ -> None)

type t = {
  post : (unit -> unit) -> unit;
  help : unit -> bool;
  idle : unit -> unit;
  workers : int;
  label : string;
}

let of_pool p =
  {
    post = Pool.post p;
    help = (fun () -> Pool.help p);
    idle = Domain.cpu_relax;
    workers = Pool.num_workers p;
    label = "pool";
  }
