(** The task-executor interface the stream runtime schedules on.

    [Streams.Actors] (and through it the concurrent engine) never
    touches a {!Pool} directly any more: it posts activations, helps
    drain queued work while blocked, and idles through this record.
    Production wraps the work-stealing pool with {!of_pool} — each
    field is a direct call, so the indirection costs one record load —
    while detcheck substitutes a virtual scheduler whose [help] runs
    one strategy-chosen task on the calling thread and whose [idle]
    advances a virtual clock or reports deadlock. *)

exception Deadlock of string
(** Raised by an executor's [idle] when the system can make no further
    progress without outside intervention: nothing runnable, no timer
    pending, yet work is still in flight. The real pool never raises
    it (worker domains run concurrently); a virtual executor uses it
    to turn lost-wakeup bugs into immediate, replayable failures. *)

type t = {
  post : (unit -> unit) -> unit;  (** Fire-and-forget task submission. *)
  help : unit -> bool;
      (** Run one queued task on the calling thread if any is
          available; returns whether one ran. *)
  idle : unit -> unit;
      (** Called when the caller must wait but [help] found nothing:
          [Domain.cpu_relax] on a real pool; on a virtual executor,
          fire the next timer or raise {!Deadlock}. *)
  workers : int;
      (** Number of concurrent workers behind [post]. [0] means tasks
          only run when the calling thread helps — the virtual
          executor always reports [0]. *)
  label : string;
}

val of_pool : Pool.t -> t
(** Direct-call wrapper around the work-stealing pool. *)
