(* The seed scheduler: a single mutex-protected FIFO shared by all
   workers, with a shared fetch-and-add cursor for parallel_for.

   Kept (not wired into anything) as the measured baseline for the
   work-stealing [Pool]: `bench/main.exe scheduler` times both
   implementations on identical with-loop-shaped kernels so the perf
   trajectory of the substrate stays visible across PRs. Two seed bugs
   are fixed here rather than preserved: the blocking double
   [Latch.await] in [parallel_for_reduce] (awaiting helpers without
   draining the queue they are stuck in), and the unbounded
   [cpu_relax] busy-spin in [await_helping] on a pool with no workers
   (now a bounded spin followed by a blocking wait).

   The implementation is a functor over [Platform.S] so the detcheck
   mutation-sanity suite can run it on virtual fibers under a
   controlled scheduler; [inject_double_await] reintroduces the first
   seed bug for exactly that suite, which asserts that schedule
   exploration finds the deadlock within a bounded budget. *)

(* Test-only mutation flag (shared by every instantiation): when set,
   [parallel_for_reduce] waits for its helpers with the seed's blocking
   double [Latch.await] instead of helping to drain the queue, so a
   helper chunk sitting in the FIFO behind the awaiting participant
   deadlocks the pool. Never set outside the detcheck suite. *)
let inject_double_await = ref false

module type S = sig
  type t
  type 'a fut

  val create : ?num_domains:int -> unit -> t
  val num_workers : t -> int
  val parallelism : t -> int
  val submit : t -> (unit -> unit) -> unit
  val shutdown : t -> unit
  val async : t -> (unit -> 'a) -> 'a fut
  val help : t -> bool
  val run : t -> (unit -> 'a) -> 'a

  val parallel_for :
    t -> ?chunk:int -> lo:int -> hi:int -> (int -> unit) -> unit

  val parallel_for_reduce :
    t ->
    ?chunk:int ->
    lo:int ->
    hi:int ->
    combine:('a -> 'a -> 'a) ->
    init:'a ->
    (int -> 'a) ->
    'a
end

module Make (P : Platform.S) (F : Future.S) = struct
  module S = Sync.Make (P)

  type 'a fut = 'a F.t
  type task = unit -> unit

  type t = {
    mutex : P.mutex;
    nonempty : P.cond;
    queue : task Queue.t;
    mutable closed : bool;
    mutable domains : P.thread list;
    workers : int;
  }

  let spawn_worker t =
    P.spawn (fun () ->
        let rec loop () =
          P.lock t.mutex;
          while Queue.is_empty t.queue && not t.closed do
            P.wait t.nonempty t.mutex
          done;
          if Queue.is_empty t.queue && t.closed then P.unlock t.mutex
          else begin
            let task = Queue.pop t.queue in
            P.unlock t.mutex;
            (try task ()
             with e ->
               Printf.eprintf "Fifo_pool worker: uncaught exception: %s\n%!"
                 (Printexc.to_string e));
            loop ()
          end
        in
        loop ())

  let create ?num_domains () =
    let workers =
      match num_domains with
      | Some n ->
          if n < 0 then invalid_arg "Fifo_pool.create: negative num_domains";
          n
      | None -> max 0 (Domain.recommended_domain_count () - 1)
    in
    let t =
      {
        mutex = P.mutex_create ();
        nonempty = P.cond_create ();
        queue = Queue.create ();
        closed = false;
        domains = [];
        workers;
      }
    in
    t.domains <- List.init workers (fun _ -> spawn_worker t);
    t

  let num_workers t = t.workers
  let parallelism t = t.workers + 1

  let submit t task =
    P.lock t.mutex;
    if t.closed then begin
      P.unlock t.mutex;
      invalid_arg "Fifo_pool: submit to a shut-down pool"
    end;
    Queue.push task t.queue;
    P.signal t.nonempty;
    P.unlock t.mutex

  let try_pop t =
    P.lock t.mutex;
    let task = Queue.take_opt t.queue in
    P.unlock t.mutex;
    task

  let shutdown t =
    P.lock t.mutex;
    let was_closed = t.closed in
    t.closed <- true;
    P.broadcast t.nonempty;
    P.unlock t.mutex;
    if not was_closed then begin
      List.iter P.join t.domains;
      t.domains <- []
    end

  let help t =
    match try_pop t with
    | Some task ->
        task ();
        true
    | None -> false

  let async t f =
    let fut = F.create () in
    submit t (fun () -> F.run fut f);
    fut

  (* Wait for [fut] while helping to drain the queue. With no workers
     the task can only run on this thread or a sibling external thread,
     so after a bounded spin we block on the future instead of burning
     the CPU (seed bug: this spun unboundedly). *)
  let await_helping t fut =
    let rec loop spins =
      match F.peek fut with
      | Some (Ok v) -> v
      | Some (Error e) -> raise e
      | None -> (
          match try_pop t with
          | Some task ->
              task ();
              loop 0
          | None ->
              if t.workers = 0 && spins < 256 then begin
                P.relax ();
                loop (spins + 1)
              end
              else F.await fut)
    in
    loop 0

  let run t f = await_helping t (async t f)

  exception Stop

  let default_chunk t n = max 1 (n / (parallelism t * 8))

  let parallel_for_reduce t ?chunk ~lo ~hi ~combine ~init body =
    let n = hi - lo in
    if n <= 0 then init
    else begin
      let chunk =
        match chunk with
        | Some c ->
            if c < 1 then invalid_arg "Fifo_pool.parallel_for: chunk < 1";
            c
        | None -> default_chunk t n
      in
      let next = Atomic.make lo in
      let failure = Atomic.make None in
      let participants = min (parallelism t) ((n + chunk - 1) / chunk) in
      let helpers = participants - 1 in
      let latch = S.Latch.create helpers in
      let work () =
        let acc = ref init in
        (try
           let rec grab () =
             if Atomic.get failure <> None then raise Stop;
             let start = Atomic.fetch_and_add next chunk in
             if start < hi then begin
               let stop = min hi (start + chunk) in
               for i = start to stop - 1 do
                 acc := combine !acc (body i)
               done;
               grab ()
             end
           in
           grab ()
         with
        | Stop -> ()
        | e -> ignore (Atomic.compare_and_set failure None (Some e)));
        !acc
      in
      let partials = Array.make participants init in
      for k = 1 to helpers do
        submit t (fun () ->
            partials.(k) <- work ();
            S.Latch.count_down latch)
      done;
      partials.(0) <- work ();
      (* Help drain the queue while waiting so nested parallel_for from
         inside pool tasks cannot deadlock. The injected seed bug skips
         the helping and blocks on the latch directly (twice): a helper
         chunk still sitting in the FIFO then never runs when every
         worker is occupied, and the latch never opens. *)
      if !inject_double_await then begin
        S.Latch.await latch;
        S.Latch.await latch
      end
      else if t.workers = 0 then S.Latch.await latch
      else begin
        let rec wait () =
          if S.Latch.pending latch > 0 then begin
            (match try_pop t with
            | Some task -> task ()
            | None -> P.relax ());
            wait ()
          end
        in
        wait ()
      end;
      match Atomic.get failure with
      | Some e -> raise e
      | None -> Array.fold_left combine init partials
    end

  let parallel_for t ?chunk ~lo ~hi body =
    parallel_for_reduce t ?chunk ~lo ~hi ~combine:(fun () () -> ()) ~init:()
      (fun i -> body i)
end

include Make (Platform.Os) (Future)
