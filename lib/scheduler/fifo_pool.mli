(** The seed scheduler: one mutex-protected FIFO task queue shared by
    all worker domains, with a shared fetch-and-add cursor driving
    [parallel_for].

    Superseded by the work-stealing {!Pool} but kept as the measured
    baseline: the [scheduler] experiment in [bench/main.exe] times both
    pools on identical kernels so every later PR can see the perf
    trajectory of the data-parallel substrate. Nothing in the runtime
    uses this module. *)

type t

val create : ?num_domains:int -> unit -> t
val num_workers : t -> int
val parallelism : t -> int

val shutdown : t -> unit
(** Idempotent; submitting afterwards raises [Invalid_argument]. *)

val async : t -> (unit -> 'a) -> 'a Future.t
val help : t -> bool
val run : t -> (unit -> 'a) -> 'a

val parallel_for : t -> ?chunk:int -> lo:int -> hi:int -> (int -> unit) -> unit

val parallel_for_reduce :
  t ->
  ?chunk:int ->
  lo:int ->
  hi:int ->
  combine:('a -> 'a -> 'a) ->
  init:'a ->
  (int -> 'a) ->
  'a
