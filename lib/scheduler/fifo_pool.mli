(** The seed scheduler: one mutex-protected FIFO task queue shared by
    all worker domains, with a shared fetch-and-add cursor driving
    [parallel_for].

    Superseded by the work-stealing {!Pool} but kept as the measured
    baseline: the [scheduler] experiment in [bench/main.exe] times both
    pools on identical kernels so every later PR can see the perf
    trajectory of the data-parallel substrate. Nothing in the runtime
    uses this module.

    The implementation is a functor over {!Platform.S} (threads,
    mutexes, condition variables) and {!Future.S}; the top-level values
    are the OS instantiation. The detcheck mutation-sanity suite
    instantiates {!Make} with virtual fibers and flips
    {!inject_double_await} to check that schedule exploration finds the
    seed's deadlock. *)

val inject_double_await : bool ref
(** Test-only mutation flag, shared by every instantiation: when set,
    [parallel_for_reduce] reintroduces the seed bug of blocking on its
    helper latch (twice) instead of helping to drain the task queue —
    a deadlock whenever a helper chunk is queued behind the awaiting
    participant and every worker is busy. Never set this outside the
    detcheck suite. *)

module type S = sig
  type t
  type 'a fut

  val create : ?num_domains:int -> unit -> t
  val num_workers : t -> int
  val parallelism : t -> int

  val submit : t -> (unit -> unit) -> unit
  (** Fire-and-forget task submission (FIFO order). *)

  val shutdown : t -> unit
  (** Idempotent; submitting afterwards raises [Invalid_argument]. *)

  val async : t -> (unit -> 'a) -> 'a fut
  val help : t -> bool
  val run : t -> (unit -> 'a) -> 'a

  val parallel_for :
    t -> ?chunk:int -> lo:int -> hi:int -> (int -> unit) -> unit

  val parallel_for_reduce :
    t ->
    ?chunk:int ->
    lo:int ->
    hi:int ->
    combine:('a -> 'a -> 'a) ->
    init:'a ->
    (int -> 'a) ->
    'a
end

module Make (P : Platform.S) (F : Future.S) : S with type 'a fut = 'a F.t

include S with type 'a fut := 'a Future.t
