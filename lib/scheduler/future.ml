module type S = sig
  type 'a t

  val create : unit -> 'a t
  val fill : 'a t -> 'a -> unit
  val fill_error : 'a t -> exn -> unit
  val run : 'a t -> (unit -> 'a) -> unit
  val await : 'a t -> 'a
  val peek : 'a t -> ('a, exn) result option
  val is_resolved : 'a t -> bool
end

module Make (P : Platform.S) = struct
  type 'a state =
    | Pending
    | Resolved of ('a, exn) result

  type 'a t = {
    mutex : P.mutex;
    cond : P.cond;
    mutable state : 'a state;
  }

  let create () =
    { mutex = P.mutex_create (); cond = P.cond_create (); state = Pending }

  let resolve t result =
    P.lock t.mutex;
    match t.state with
    | Resolved _ ->
        P.unlock t.mutex;
        invalid_arg "Future: already resolved"
    | Pending ->
        t.state <- Resolved result;
        P.broadcast t.cond;
        P.unlock t.mutex

  let fill t v = resolve t (Ok v)
  let fill_error t e = resolve t (Error e)

  let run t f =
    let result = try Ok (f ()) with e -> Error e in
    resolve t result

  let await t =
    P.lock t.mutex;
    let rec wait () =
      match t.state with
      | Resolved r -> r
      | Pending ->
          P.wait t.cond t.mutex;
          wait ()
    in
    let r = wait () in
    P.unlock t.mutex;
    match r with Ok v -> v | Error e -> raise e

  let peek t =
    P.lock t.mutex;
    let r = match t.state with Pending -> None | Resolved r -> Some r in
    P.unlock t.mutex;
    r

  let is_resolved t = peek t <> None
end

include Make (Platform.Os)
