(** Write-once synchronisation cells (ivars).

    A future is filled exactly once, either with a value or with an
    exception; any number of consumers may block on it. Used as the
    completion handle for tasks submitted to a {!Pool}.

    The implementation is a functor over {!Platform.S} so that
    detcheck can run futures on virtual fibers; the top-level values
    are the {!Platform.Os} instantiation. *)

module type S = sig
  type 'a t

  val create : unit -> 'a t
  (** A fresh, unresolved future. *)

  val fill : 'a t -> 'a -> unit
  (** [fill fut v] resolves [fut] with [v].
      @raise Invalid_argument if [fut] is already resolved. *)

  val fill_error : 'a t -> exn -> unit
  (** [fill_error fut e] resolves [fut] with the exception [e].
      @raise Invalid_argument if [fut] is already resolved. *)

  val run : 'a t -> (unit -> 'a) -> unit
  (** [run fut f] evaluates [f ()] and resolves [fut] with its result
      or with the exception it raises. *)

  val await : 'a t -> 'a
  (** Block until resolved; return the value or re-raise the stored
      exception. *)

  val peek : 'a t -> ('a, exn) result option
  (** [peek fut] is the current state without blocking. *)

  val is_resolved : 'a t -> bool
end

module Make (P : Platform.S) : S

include S
