(* The blocking-primitive seam for deterministic concurrency testing.

   Modules whose concurrency bugs we want to explore under a controlled
   scheduler ({!Fifo_pool}, {!Sync}, {!Future}, [Streams.Channel]) are
   functorized over this signature instead of calling [Mutex],
   [Condition] and [Domain] directly. Production code instantiates the
   functors with {!Os} (a direct, zero-cost mapping onto the real
   primitives — each function is a partial application of the stdlib
   one), while the detcheck library instantiates them with a virtual
   platform whose "threads" are fibers multiplexed on one carrier
   thread and whose every park/wake decision is driven by a seeded,
   replayable strategy. *)

module type S = sig
  val name : string
  (** Identifies the platform in diagnostics ("os", "virtual"). *)

  type mutex

  val mutex_create : unit -> mutex
  val lock : mutex -> unit
  val unlock : mutex -> unit

  type cond

  val cond_create : unit -> cond

  val wait : cond -> mutex -> unit
  (** Atomically release the mutex and block until signalled, then
      reacquire — the [Condition.wait] contract, spurious wakeups
      allowed. *)

  val signal : cond -> unit
  val broadcast : cond -> unit

  type thread

  val spawn : (unit -> unit) -> thread
  val join : thread -> unit

  val relax : unit -> unit
  (** Called inside spin loops: [Domain.cpu_relax] on real hardware, a
      scheduling point on a virtual platform. *)
end

module Os : S = struct
  let name = "os"

  type mutex = Mutex.t

  let mutex_create = Mutex.create
  let lock = Mutex.lock
  let unlock = Mutex.unlock

  type cond = Condition.t

  let cond_create = Condition.create
  let wait = Condition.wait
  let signal = Condition.signal
  let broadcast = Condition.broadcast

  type thread = unit Domain.t

  let spawn f = Domain.spawn f
  let join = Domain.join
  let relax = Domain.cpu_relax
end
