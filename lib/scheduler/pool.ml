(* Work-stealing pool.

   One Chase–Lev deque per worker domain: a worker pushes and pops its
   own deque LIFO (locality for nested fork), thieves steal FIFO
   (oldest = biggest ranges under binary splitting). Submissions from
   threads that are not workers of this pool go through a small
   mutex-protected injector queue — that mutex is off the hot path,
   which is pop-own-deque.

   Parking: an idle worker that finds no work advertises itself in
   [n_parked], re-checks every queue, and then sleeps on a condition
   variable guarded by an epoch counter. Producers make work visible
   first, then (only if someone advertised) bump the epoch and signal.
   With OCaml's sequentially-consistent atomics this cannot lose a
   wakeup: if the producer read [n_parked = 0], the worker's re-check
   is ordered after the push and finds the task; if it read a non-zero
   value, the epoch bump is observed by the worker's wait predicate
   under the park mutex.

   [parallel_for]/[parallel_for_reduce] use lazy binary splitting
   instead of a shared fetch-and-add cursor: every participant owns a
   contiguous range and only splits off the right half (pushed to its
   own deque, stealable) when somebody is visibly hungry — a parked
   worker exists or the participant's own deque has been emptied by
   thieves. On a saturated machine each participant therefore runs its
   whole range as straight-line loops with no shared-counter traffic. *)

type task = unit -> unit

type counters = {
  c_tasks : int Atomic.t;   (* tasks executed by workers or helpers *)
  c_steals : int Atomic.t;  (* successful steals *)
  c_parks : int Atomic.t;   (* times a worker went to sleep *)
  c_splits : int Atomic.t;  (* ranges split by parallel_for/_reduce *)
}

type t = {
  deques : task Chase_lev.t array; (* slot i is owned by worker i *)
  injector : task Queue.t;
  inj_mutex : Mutex.t;
  inj_size : int Atomic.t;
  park_mutex : Mutex.t;
  park_cond : Condition.t;
  epoch : int Atomic.t;
  n_parked : int Atomic.t;
  steal_cursor : int Atomic.t; (* start hint for helper threads *)
  (* Pluggable steal-victim choice (detcheck's strategy hook): given
     the stealing worker's slot and the deque count, returns the sweep
     start. [None] — the production default — compiles to the direct
     per-worker RNG call. *)
  steal_choice : (slot:int -> n:int -> int) option;
  closed : bool Atomic.t;
  mutable domains : unit Domain.t list;
  workers : int;
  counters : counters;
}

(* Which pool (if any) the current domain is a worker of, and its deque
   slot. Lets [submit] from inside a task go to the worker's own deque,
   and lets helping/stealing skip the caller's own empty deque. *)
let worker_ctx : (t * int) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let my_slot t =
  match Domain.DLS.get worker_ctx with
  | Some (p, slot) when p == t -> Some slot
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Waking and parking                                                  *)

let wake t =
  if Atomic.get t.n_parked > 0 then begin
    Atomic.incr t.epoch;
    Mutex.lock t.park_mutex;
    Condition.signal t.park_cond;
    Mutex.unlock t.park_mutex
  end

let wake_all t =
  Atomic.incr t.epoch;
  Mutex.lock t.park_mutex;
  Condition.broadcast t.park_cond;
  Mutex.unlock t.park_mutex

let has_visible_work t =
  Atomic.get t.inj_size > 0
  || Array.exists (fun d -> not (Chase_lev.is_empty d)) t.deques

let park t =
  Atomic.incr t.n_parked;
  let e = Atomic.get t.epoch in
  (* Advertised-parked re-check: any producer that missed our
     increment pushed before it, so we see its task here. *)
  if has_visible_work t || Atomic.get t.closed then Atomic.decr t.n_parked
  else begin
    Atomic.incr t.counters.c_parks;
    Obsv.Probe.instant ~cat:"pool" ~name:"park" ();
    Mutex.lock t.park_mutex;
    while Atomic.get t.epoch = e && not (Atomic.get t.closed) do
      Condition.wait t.park_cond t.park_mutex
    done;
    Mutex.unlock t.park_mutex;
    Atomic.decr t.n_parked
  end

(* ------------------------------------------------------------------ *)
(* Finding work                                                        *)

let pop_injector t =
  if Atomic.get t.inj_size = 0 then None
  else begin
    Mutex.lock t.inj_mutex;
    let task = Queue.take_opt t.injector in
    if task <> None then Atomic.decr t.inj_size;
    Mutex.unlock t.inj_mutex;
    (* If the injector still holds work, pass the baton. *)
    if task <> None && Atomic.get t.inj_size > 0 then wake t;
    task
  end

(* One sweep over all deques starting at [start], skipping [exclude]. *)
let steal_sweep t ~start ~exclude =
  let w = Array.length t.deques in
  let rec go i =
    if i >= w then None
    else
      let v = (start + i) mod w in
      if v = exclude then go (i + 1)
      else
        match Chase_lev.steal t.deques.(v) with
        | Some task ->
            Atomic.incr t.counters.c_steals;
            Obsv.Probe.instant ~cat:"pool" ~name:"steal" ~value:v ();
            if not (Chase_lev.is_empty t.deques.(v)) then wake t;
            Some task
        | None -> go (i + 1)
  in
  if w = 0 then None else go 0

(* Work discovery for a worker: own deque, injector, then steal. *)
let find_work t slot rand =
  match Chase_lev.pop t.deques.(slot) with
  | Some _ as task -> task
  | None -> (
      match pop_injector t with
      | Some _ as task -> task
      | None ->
          let w = Array.length t.deques in
          if w <= 1 then None
          else
            let start =
              match t.steal_choice with
              | None -> Random.State.int rand w
              | Some choose -> choose ~slot ~n:w mod w
            in
            steal_sweep t ~start ~exclude:slot)

(* Work discovery for any thread ([help], waiters). *)
let try_pop t =
  let slot = my_slot t in
  let own =
    match slot with Some s -> Chase_lev.pop t.deques.(s) | None -> None
  in
  match own with
  | Some _ as task -> task
  | None -> (
      match pop_injector t with
      | Some _ as task -> task
      | None ->
          let w = Array.length t.deques in
          if w = 0 then None
          else
            steal_sweep t
              ~start:(Atomic.fetch_and_add t.steal_cursor 1 mod w)
              ~exclude:(match slot with Some s -> s | None -> -1))

let exec_task t task =
  Atomic.incr t.counters.c_tasks;
  let t0 = Obsv.Probe.span_start () in
  match task () with
  | () -> Obsv.Probe.span_end ~cat:"pool" ~name:"task" t0
  | exception e ->
    Obsv.Probe.span_end ~cat:"pool" ~name:"task" t0;
    (* Tasks are expected to contain their own failures (futures capture
       them); anything escaping here would otherwise kill the worker
       domain. *)
    Printf.eprintf "Pool worker: uncaught exception: %s\n%!"
      (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Workers and lifecycle                                               *)

let spawn_worker t slot =
  Domain.spawn (fun () ->
      Domain.DLS.set worker_ctx (Some (t, slot));
      let rand = Random.State.make [| slot; 0x5eed |] in
      let rec loop () =
        match find_work t slot rand with
        | Some task ->
            exec_task t task;
            loop ()
        | None ->
            if Atomic.get t.closed then
              (* Drained: a full sweep found nothing after close.  Any
                 task a racing steal hid from us was taken by the racer
                 and executes there. *)
              ()
            else begin
              park t;
              loop ()
            end
      in
      loop ())

let create ?num_domains ?steal_choice () =
  let workers =
    match num_domains with
    | Some n ->
        if n < 0 then invalid_arg "Pool.create: negative num_domains";
        n
    | None -> max 0 (Domain.recommended_domain_count () - 1)
  in
  let t =
    {
      deques = Array.init workers (fun _ -> Chase_lev.create ~capacity:256 ());
      injector = Queue.create ();
      inj_mutex = Mutex.create ();
      inj_size = Atomic.make 0;
      park_mutex = Mutex.create ();
      park_cond = Condition.create ();
      epoch = Atomic.make 0;
      n_parked = Atomic.make 0;
      steal_cursor = Atomic.make 0;
      steal_choice;
      closed = Atomic.make false;
      domains = [];
      workers;
      counters =
        {
          c_tasks = Atomic.make 0;
          c_steals = Atomic.make 0;
          c_parks = Atomic.make 0;
          c_splits = Atomic.make 0;
        };
    }
  in
  t.domains <- List.init workers (fun slot -> spawn_worker t slot);
  t

let num_workers t = t.workers
let parallelism t = t.workers + 1

type stats = { tasks : int; steals : int; parks : int; splits : int }

let stats t =
  {
    tasks = Atomic.get t.counters.c_tasks;
    steals = Atomic.get t.counters.c_steals;
    parks = Atomic.get t.counters.c_parks;
    splits = Atomic.get t.counters.c_splits;
  }

let push_task t task =
  (match my_slot t with
  | Some slot -> Chase_lev.push t.deques.(slot) task
  | None ->
      Mutex.lock t.inj_mutex;
      Queue.push task t.injector;
      Atomic.incr t.inj_size;
      Mutex.unlock t.inj_mutex);
  wake t

let submit t task =
  if Atomic.get t.closed then invalid_arg "Pool: submit to a shut-down pool";
  push_task t task

let post = submit

let shutdown t =
  let was_closed = Atomic.exchange t.closed true in
  wake_all t;
  if not was_closed then begin
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let help t =
  match try_pop t with
  | Some task ->
      exec_task t task;
      true
  | None -> false

let async t f =
  let fut = Future.create () in
  submit t (fun () -> Future.run fut f);
  fut

(* Wait for [fut] while helping to drain the pool, so that a task that
   itself calls [run] cannot starve the pool. With no workers the task
   can only be executed by this thread (via [help]) or a sibling
   external thread, so after a bounded spin we block on the future
   rather than burning the CPU. *)
let await_helping t fut =
  let rec loop spins =
    match Future.peek fut with
    | Some (Ok v) -> v
    | Some (Error e) -> raise e
    | None ->
        if help t then loop 0
        else if t.workers = 0 && spins < 256 then begin
          Domain.cpu_relax ();
          loop (spins + 1)
        end
        else Future.await fut
  in
  loop 0

let run t f = await_helping t (async t f)

(* ------------------------------------------------------------------ *)
(* Data-parallel ranges with lazy binary splitting                     *)

exception Stop

let default_grain t n =
  (* Aim for ~8 leaves per participant to absorb imbalance, but never
     below 1 index per leaf. *)
  max 1 (n / (parallelism t * 8))

(* Split only when somebody visibly wants work: a parked worker, or (if
   the caller is a worker) thieves have emptied its deque. *)
let work_wanted t =
  Atomic.get t.n_parked > 0
  ||
  match my_slot t with
  | Some slot -> Chase_lev.is_empty t.deques.(slot)
  | None -> false

let parallel_for_reduce_range t ?grain ~lo ~hi ~combine ~init body =
  let n = hi - lo in
  if n <= 0 then init
  else begin
    let grain =
      match grain with
      | Some g ->
          if g < 1 then invalid_arg "Pool.parallel_for: chunk < 1";
          g
      | None -> default_grain t n
    in
    if parallelism t <= 1 || n <= grain then combine init (body ~lo ~hi)
    else begin
      let failure = Atomic.make None in
      let pending = Atomic.make 1 in
      let done_fut = Future.create () in
      let result = ref init in
      let res_mutex = Mutex.create () in
      let merge v =
        Mutex.lock res_mutex;
        match combine !result v with
        | r ->
            result := r;
            Mutex.unlock res_mutex
        | exception e ->
            Mutex.unlock res_mutex;
            raise e
      in
      let finished () =
        if Atomic.fetch_and_add pending (-1) = 1 then Future.fill done_fut ()
      in
      let rec run_range rlo rhi =
        (try process rlo rhi with
        | Stop -> ()
        | e ->
            (* Record the first failure; later ones are dropped. *)
            ignore (Atomic.compare_and_set failure None (Some e)));
        finished ()
      and process rlo rhi =
        let lo = ref rlo and hi = ref rhi in
        while !lo < !hi do
          if Atomic.get failure <> None then raise Stop;
          if !hi - !lo > grain && work_wanted t then begin
            let mid = !lo + ((!hi - !lo) / 2) in
            let l = mid and h = !hi in
            Atomic.incr pending;
            Atomic.incr t.counters.c_splits;
            Obsv.Probe.instant ~cat:"pool" ~name:"split" ();
            push_task t (fun () -> run_range l h);
            hi := mid
          end
          else begin
            let stop = min !hi (!lo + grain) in
            merge (body ~lo:!lo ~hi:stop);
            lo := stop
          end
        done
      in
      (* The caller is a participant: it runs the root range and then
         helps until every split-off piece has finished. *)
      run_range lo hi;
      let rec wait spins =
        if not (Future.is_resolved done_fut) then
          if help t then wait 0
          else if spins < 64 then begin
            Domain.cpu_relax ();
            wait (spins + 1)
          end
          else Future.await done_fut
      in
      wait 0;
      match Atomic.get failure with
      | Some e -> raise e
      | None -> !result
    end
  end

let parallel_for_range t ?grain ~lo ~hi body =
  parallel_for_reduce_range t ?grain ~lo ~hi
    ~combine:(fun () () -> ())
    ~init:() body

let parallel_for_reduce t ?chunk ~lo ~hi ~combine ~init body =
  parallel_for_reduce_range t ?grain:chunk ~lo ~hi ~combine ~init
    (fun ~lo ~hi ->
      let acc = ref init in
      for i = lo to hi - 1 do
        acc := combine !acc (body i)
      done;
      !acc)

let parallel_for t ?chunk ~lo ~hi body =
  parallel_for_range t ?grain:chunk ~lo ~hi (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        body i
      done)

let parallel_map_array t f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let first = f a.(0) in
    let out = Array.make n first in
    parallel_for t ~lo:1 ~hi:n (fun i -> out.(i) <- f a.(i));
    out
  end

let default_size = ref None
let default_pool = ref None
let default_mutex = Mutex.create ()

let set_default_num_domains n =
  Mutex.lock default_mutex;
  default_size := Some n;
  Mutex.unlock default_mutex

let default () =
  Mutex.lock default_mutex;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create ?num_domains:!default_size () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_mutex;
  pool
