(** A work-stealing pool of worker domains.

    This is the execution substrate standing in for SaC's multithreaded
    runtime: data-parallel with-loops are partitioned into ranges and
    executed by the pool ({!parallel_for} and friends), and the S-Net
    actor engine runs component activations on it ({!async}).

    Each worker domain owns a Chase–Lev deque: it pushes and pops its
    own work LIFO and steals FIFO from siblings when empty, parking on
    a condition variable only after a full sweep finds nothing.
    Submissions from non-worker threads enter through a shared injector
    queue. Range operations ({!parallel_for}, {!parallel_for_reduce})
    use lazy binary splitting: every participant owns a contiguous
    subrange and splits off stealable halves only while idle workers
    are observed, so a saturated pool runs straight-line loops with no
    shared-counter traffic.

    The calling thread always participates in the bracketed operations
    ([parallel_for], [run]), so a pool created with [num_domains:0] is
    a correct, purely sequential executor — useful on single-core
    machines and for deterministic tests. *)

type t

val create :
  ?num_domains:int -> ?steal_choice:(slot:int -> n:int -> int) -> unit -> t
(** [create ~num_domains ()] spawns [num_domains] worker domains
    (default: [Domain.recommended_domain_count () - 1]).

    [steal_choice], when given, replaces the per-worker seeded RNG
    that picks where an idle worker starts its steal sweep — the
    pool's one tunable nondeterministic choice point. Detcheck routes
    it through a recorded strategy; production leaves it unset, which
    compiles to the direct RNG call. The function receives the
    stealing worker's [slot] and the number of deques [n] and must
    return a value whose [mod n] is the sweep start; it is called
    concurrently from all workers and must be thread-safe. *)

val num_workers : t -> int
(** Number of spawned worker domains (excludes the caller). *)

val parallelism : t -> int
(** [num_workers t + 1]: total parties executing a bracketed
    operation. *)

val shutdown : t -> unit
(** Wait for queued tasks to drain and join all workers. Idempotent.
    Submitting to a shut-down pool raises [Invalid_argument]. *)

val async : t -> (unit -> 'a) -> 'a Future.t
(** Submit a task; the future resolves with its result or exception. *)

val help : t -> bool
(** Run one queued task on the calling thread if any is available
    (the caller's own deque if it is a worker, then the injector, then
    a steal sweep); returns whether one ran. Lets a thread that is
    waiting on pool work make progress on pools created with
    [num_domains:0]. *)

val post : t -> (unit -> unit) -> unit
(** Fire-and-forget submission; the task must not raise (an escaping
    exception terminates the worker's current activation and is
    re-raised there). Used by the actor engine, which does its own
    error containment. From a worker of this pool the task goes to the
    worker's own deque (LIFO); from any other thread it goes through
    the injector queue. *)

val run : t -> (unit -> 'a) -> 'a
(** [run t f] submits [f] and waits, helping to execute other queued
    tasks while waiting (so nested [run] from inside a task cannot
    deadlock the pool). On a pool with no workers the wait is a
    bounded spin followed by a blocking wait, never an unbounded
    busy-loop. *)

val parallel_for : t -> ?chunk:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for t ~lo ~hi body] executes [body i] for [lo <= i < hi]
    with no ordering guarantee, partitioned into leaf ranges of at most
    [chunk] indices (default: a heuristic based on range size and
    parallelism). The first exception raised by any [body] is
    re-raised in the caller after all participants stop. *)

val parallel_for_range :
  t -> ?grain:int -> lo:int -> hi:int -> (lo:int -> hi:int -> unit) -> unit
(** Range-level variant of {!parallel_for}: [body ~lo ~hi] receives
    maximal machine-assigned subranges (each at most [grain] indices)
    instead of single indices, letting the caller hoist per-chunk state
    (scratch buffers, accumulators) out of the element loop. Subranges
    partition [lo, hi): every index is covered exactly once. *)

val parallel_for_reduce :
  t ->
  ?chunk:int ->
  lo:int ->
  hi:int ->
  combine:('a -> 'a -> 'a) ->
  init:'a ->
  (int -> 'a) ->
  'a
(** [parallel_for_reduce t ~lo ~hi ~combine ~init body] folds the
    results of [body i] with [combine], which must be associative and
    commutative with unit [init]; the combination order across leaf
    ranges is unspecified. *)

val parallel_for_reduce_range :
  t ->
  ?grain:int ->
  lo:int ->
  hi:int ->
  combine:('a -> 'a -> 'a) ->
  init:'a ->
  (lo:int -> hi:int -> 'a) ->
  'a
(** Range-level variant of {!parallel_for_reduce}: [body ~lo ~hi]
    computes the partial value of a whole subrange (typically folding
    locally from [init]); partials are combined in unspecified order. *)

val parallel_map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Element-wise map over an array using {!parallel_for}. *)

(** {1 Observability} *)

type stats = {
  tasks : int;  (** Tasks executed by workers and helping threads. *)
  steals : int;  (** Successful steals from a sibling's deque. *)
  parks : int;  (** Times a worker went to sleep for lack of work. *)
  splits : int;  (** Ranges split off by the data-parallel operations. *)
}

val stats : t -> stats
(** Monotonic per-pool counters since {!create}; cheap racy snapshot. *)

(** {1 Process-global default} *)

val default : unit -> t
(** A process-global pool, created on first use. *)

val set_default_num_domains : int -> unit
(** Configure the size of the pool returned by {!default}; only
    effective before the first call to [default]. *)
