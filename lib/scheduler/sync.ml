module type S = sig
  module Latch : sig
    type t

    val create : int -> t
    val count_down : t -> unit
    val await : t -> unit
    val pending : t -> int
  end

  module Barrier : sig
    type t

    val create : int -> t
    val await : t -> int
  end
end

module Make (P : Platform.S) = struct
  module Latch = struct
    type t = {
      mutex : P.mutex;
      cond : P.cond;
      mutable count : int;
    }

    let create n =
      if n < 0 then invalid_arg "Latch.create: negative count";
      { mutex = P.mutex_create (); cond = P.cond_create (); count = n }

    let count_down t =
      P.lock t.mutex;
      if t.count > 0 then begin
        t.count <- t.count - 1;
        if t.count = 0 then P.broadcast t.cond
      end;
      P.unlock t.mutex

    let await t =
      P.lock t.mutex;
      while t.count > 0 do
        P.wait t.cond t.mutex
      done;
      P.unlock t.mutex

    let pending t =
      P.lock t.mutex;
      let n = t.count in
      P.unlock t.mutex;
      n
  end

  module Barrier = struct
    type t = {
      mutex : P.mutex;
      cond : P.cond;
      parties : int;
      mutable waiting : int;
      mutable generation : int;
    }

    let create n =
      if n < 1 then invalid_arg "Barrier.create: need at least one party";
      {
        mutex = P.mutex_create ();
        cond = P.cond_create ();
        parties = n;
        waiting = 0;
        generation = 0;
      }

    let await t =
      P.lock t.mutex;
      let gen = t.generation in
      t.waiting <- t.waiting + 1;
      let index = t.parties - t.waiting in
      if t.waiting = t.parties then begin
        (* Last arrival trips the barrier and starts the next generation. *)
        t.waiting <- 0;
        t.generation <- gen + 1;
        P.broadcast t.cond
      end
      else
        while t.generation = gen do
          P.wait t.cond t.mutex
        done;
      P.unlock t.mutex;
      index
  end
end

include Make (Platform.Os)
