(** Small blocking synchronisation primitives used by the pool and the
    stream runtime: countdown latches and cyclic barriers.

    Functorized over {!Platform.S} so detcheck can explore their
    blocking behaviour on virtual fibers; the top-level [Latch] and
    [Barrier] are the {!Platform.Os} instantiation. *)

module type S = sig
  module Latch : sig
    (** A countdown latch: starts at [n], {!Latch.await} unblocks once
        [n] {!Latch.count_down} calls have happened. *)

    type t

    val create : int -> t
    (** [create n] requires [n >= 0]; with [n = 0] the latch is
        already open. *)

    val count_down : t -> unit
    (** Decrement; opening the latch wakes all waiters. Counting below
        zero is ignored. *)

    val await : t -> unit
    (** Block until the latch reaches zero. *)

    val pending : t -> int
    (** Current count (racy snapshot, for diagnostics). *)
  end

  module Barrier : sig
    (** A cyclic barrier for [n] parties. *)

    type t

    val create : int -> t
    (** [create n] requires [n >= 1]. *)

    val await : t -> int
    (** Block until [n] parties arrive; returns the arrival index of
        the caller within the current generation, in [0 .. n-1]; index
        0 is the party that completed the barrier. The barrier then
        resets for reuse. *)
  end
end

module Make (P : Platform.S) : S

include S
