(* Synchronous client for the framed-TCP session protocol: one
   connection, one session, one driving thread. Used by the serve
   tests and the load bench; snet_serve's peers in other processes
   would speak the same frames.

   The client owes the server nothing but credit discipline: [submit]
   blocks — reading and buffering response frames — until a credit is
   available, so a well-behaved client can never overrun its window. *)

module Proto = Dist.Proto
module Transport = Dist.Transport

type t = {
  conn : Transport.conn;
  ctx : Dist.Wire.ctx;
  session : int;
  sa_credits : int;
  mutable credits : int;
  pending : Snet.Record.t Queue.t;
  mutable state : [ `Open | `Draining | `Done | `Crashed of string ];
}

let session t = t.session
let window t = t.sa_credits

let connect ?(credits = 0) ?(batch = 0) ?(resume = -1) conn =
  let ctx = Dist.Wire.ctx () in
  let hello =
    Proto.Hello
      {
        spec = Proto.serve_spec;
        part = 0;
        parts = 1;
        policy = "";
        timeout = None;
        credits;
        crash_after = -1;
        crash_flush = false;
        batch;
        obsv = 0;
        coord_pid = 0;
        plan = "";
      }
  in
  Transport.send conn (Proto.encode hello);
  match Transport.recv conn with
  | `Closed -> Error "connection closed during hello"
  | `Msg m -> (
      match Proto.decode m with
      | Ok (Proto.Hello_ack _) -> (
          Transport.send conn
            (Proto.encode (Proto.Open_session { credits; batch; resume }));
          match Transport.recv conn with
          | `Closed -> Error "connection closed during open"
          | `Msg m -> (
              match Proto.decode m with
              | Ok (Proto.Session_ack a) when a.Proto.ok ->
                  Ok
                    {
                      conn;
                      ctx;
                      session = a.Proto.session;
                      sa_credits = a.Proto.sa_credits;
                      credits = a.Proto.sa_credits;
                      pending = Queue.create ();
                      state = `Open;
                    }
              | Ok (Proto.Session_ack a) -> Error a.Proto.reason
              | Ok m -> Error ("unexpected reply: " ^ Proto.to_string m)
              | Error e -> Error e))
      | Ok (Proto.Session_ack a) when not a.Proto.ok -> Error a.Proto.reason
      | Ok m -> Error ("unexpected reply: " ^ Proto.to_string m)
      | Error e -> Error e)

(* Pull one frame off the wire into the client's state machine. *)
let pump t =
  match Transport.recv t.conn with
  | `Closed -> if t.state = `Open || t.state = `Draining then t.state <- `Done
  | `Msg m -> (
      match Proto.decode ~ctx:t.ctx m with
      | Ok (Proto.Data r) -> Queue.push r t.pending
      | Ok (Proto.Data_batch rs) -> List.iter (fun r -> Queue.push r t.pending) rs
      | Ok (Proto.Credit n) -> t.credits <- t.credits + n
      | Ok (Proto.Session_ack a) when not a.Proto.ok -> t.state <- `Draining
      | Ok Proto.Done -> t.state <- `Done
      | Ok (Proto.Crash e) -> t.state <- `Crashed e
      | Ok _ -> ()
      | Error e -> t.state <- `Crashed ("decode: " ^ e))

let submit t r =
  let rec wait_credit () =
    match t.state with
    | `Draining -> `Draining
    | `Done -> `Done
    | `Crashed e -> `Crashed e
    | `Open ->
        if t.credits > 0 then `Ok
        else begin
          pump t;
          wait_credit ()
        end
  in
  match wait_credit () with
  | `Ok ->
      Transport.send t.conn (Proto.encode ~ctx:t.ctx (Proto.Data r));
      t.credits <- t.credits - 1;
      `Ok
  | (`Draining | `Done | `Crashed _) as x -> x

let recv t =
  let rec go () =
    match Queue.take_opt t.pending with
    | Some r -> `Record r
    | None -> (
        match t.state with
        | `Done -> `Done
        | `Crashed e -> `Crashed e
        | `Open | `Draining ->
            pump t;
            go ())
  in
  go ()

let close t =
  if t.state = `Open || t.state = `Draining then
    try Transport.send t.conn (Proto.encode (Proto.Close_session { session = t.session }))
    with Transport.Closed_conn -> ()

(* Close, then read to [Done]: everything the server still owed us. *)
let drain_remaining t =
  close t;
  let rec go acc =
    match recv t with
    | `Record r -> go (r :: acc)
    | `Done | `Crashed _ -> List.rev acc
  in
  let rs = go [] in
  Transport.close t.conn;
  rs
