(** Synchronous client for the [snet_serve] framed-TCP session
    protocol: one connection, one session, one driving thread. Used by
    the serve tests and the load bench.

    The client enforces credit discipline itself: {!submit} blocks —
    pumping and buffering response frames — until a credit is
    available, so it can never overrun the granted window. *)

type t

val connect :
  ?credits:int ->
  ?batch:int ->
  ?resume:int ->
  Dist.Transport.conn ->
  (t, string) result
(** Handshake ([Hello]/[Open_session]) on an established connection.
    [credits]/[batch] [<= 0] defer to the server's configuration.
    [resume >= 0] asks to re-attach to that session id after a server
    restart from journal — the server must have restored the session;
    responses the old incarnation still owed are redelivered. [Error
    reason] on rejection (admission control, drain, protocol
    mismatch, unknown resume id). *)

val session : t -> int
(** The server-assigned session id. *)

val window : t -> int
(** The granted submit window. *)

val submit :
  t ->
  Snet.Record.t ->
  [ `Ok | `Draining | `Done | `Crashed of string ]
(** Send one record, blocking for a credit first. [`Draining] once the
    server rejected a submission mid-drain (stop submitting, keep
    {!recv}-ing), [`Done] after the server flushed and finished. *)

val recv : t -> [ `Record of Snet.Record.t | `Done | `Crashed of string ]
(** Next response — buffered, or pumped off the wire (blocking).
    [`Done] is terminal: every response owed has been delivered. *)

val close : t -> unit
(** Announce [Close_session] (no more submissions). Responses already
    owed still arrive; terminate with {!recv} to [`Done] or
    {!drain_remaining}. *)

val drain_remaining : t -> Snet.Record.t list
(** {!close}, read every remaining response until [Done], then close
    the connection. *)
