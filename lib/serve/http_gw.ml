(* A deliberately small HTTP/1.1 front door for {!Serve}: hand-rolled
   request parsing on raw [Unix] sockets (the repo carries no HTTP
   dependency, mirroring how {!Obsv.Jsonx} exists instead of a JSON
   one), one request per connection, JSON in and out.

   Records cross the JSON boundary in two shapes: a ["tags"] object
   (enough for tag-only nets like [ping], and always present on
   responses), and optionally ["frame_hex"] — the hex of a complete
   {!Dist.Wire} frame — which carries full field payloads for any
   record whose codecs are registered, without the gateway knowing
   field types. *)

module J = Obsv.Jsonx

let rec restart f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart f

let max_head = 16 * 1024
let max_body = 4 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Record <-> JSON *)

let hex_of_string s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex"
  else
    try
      Ok
        (String.init (n / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with _ -> Error "invalid hex"

let record_to_json ~ctx r =
  let tags =
    J.Obj
      (List.map (fun (l, v) -> (l, J.Num (float_of_int v))) (Snet.Record.tags r))
  in
  let base = [ ("tags", tags) ] in
  let fields =
    match Snet.Record.field_labels r with
    | [] -> base
    | _ -> (
        (* Field payloads only travel when every codec is registered;
           tag-only consumers still get the tags either way. *)
        match Dist.Wire.render ~ctx r with
        | frame -> ("frame_hex", J.Str (hex_of_string frame)) :: base
        | exception Dist.Wire.Unencodable _ -> base)
  in
  J.Obj fields

let record_of_json ~ctx j =
  let ( let* ) = Result.bind in
  let* base =
    match J.member "frame_hex" j with
    | Some (J.Str hx) ->
        let* raw = string_of_hex hx in
        Dist.Wire.read ~ctx raw
    | Some _ -> Error "frame_hex: expected a string"
    | None -> Ok Snet.Record.empty
  in
  match J.member "tags" j with
  | None -> Ok base
  | Some (J.Obj kvs) ->
      List.fold_left
        (fun acc (l, v) ->
          let* r = acc in
          match J.to_int v with
          | Some n -> Ok (Snet.Record.with_tag l n r)
          | None -> Error (Printf.sprintf "tags.%s: expected an integer" l))
        (Ok base) kvs
  | Some _ -> Error "tags: expected an object"

(* ------------------------------------------------------------------ *)
(* Request plumbing *)

type request = {
  meth : string;
  path : string list;  (** decoded segments, query stripped *)
  query : (string * string) list;
  body : string;
}

let really_read fd buf pos len =
  let rec go pos len =
    if len > 0 then
      let n = restart (fun () -> Unix.read fd buf pos len) in
      if n = 0 then failwith "eof" else go (pos + n) (len - n)
  in
  go pos len

let read_request fd =
  let buf = Bytes.create 4096 in
  let acc = Buffer.create 512 in
  let rec head_end () =
    let s = Buffer.contents acc in
    let rec find i =
      if i + 3 >= String.length s then None
      else if
        s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
      then Some i
      else find (i + 1)
    in
    match find 0 with
    | Some i -> Some (s, i)
    | None ->
        if Buffer.length acc > max_head then None
        else
          let n = restart (fun () -> Unix.read fd buf 0 (Bytes.length buf)) in
          if n = 0 then None
          else begin
            Buffer.add_subbytes acc buf 0 n;
            head_end ()
          end
  in
  match head_end () with
  | None -> None
  | Some (s, i) -> (
      let head = String.sub s 0 i in
      let rest = String.sub s (i + 4) (String.length s - i - 4) in
      match String.split_on_char '\r' (head ^ "\r") |> List.map String.trim with
      | [] -> None
      | reqline :: headers -> (
          match String.split_on_char ' ' reqline with
          | meth :: target :: _ ->
              let clen =
                List.fold_left
                  (fun acc h ->
                    match String.index_opt h ':' with
                    | Some c
                      when String.lowercase_ascii (String.sub h 0 c)
                           = "content-length" -> (
                        match
                          int_of_string_opt
                            (String.trim
                               (String.sub h (c + 1) (String.length h - c - 1)))
                        with
                        | Some n -> n
                        | None -> acc)
                    | _ -> acc)
                  0 headers
              in
              if clen < 0 || clen > max_body then None
              else begin
                let body =
                  if String.length rest >= clen then String.sub rest 0 clen
                  else begin
                    let missing = clen - String.length rest in
                    let b = Bytes.create missing in
                    match really_read fd b 0 missing with
                    | () -> rest ^ Bytes.to_string b
                    | exception _ -> rest
                  end
                in
                let path_s, query_s =
                  match String.index_opt target '?' with
                  | None -> (target, "")
                  | Some q ->
                      ( String.sub target 0 q,
                        String.sub target (q + 1) (String.length target - q - 1)
                      )
                in
                let path =
                  String.split_on_char '/' path_s
                  |> List.filter (fun s -> s <> "")
                in
                let query =
                  String.split_on_char '&' query_s
                  |> List.filter_map (fun kv ->
                         match String.index_opt kv '=' with
                         | None -> None
                         | Some e ->
                             Some
                               ( String.sub kv 0 e,
                                 String.sub kv (e + 1)
                                   (String.length kv - e - 1) ))
                in
                Some { meth; path; query; body }
              end
          | _ -> None))

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go pos len =
    if len > 0 then
      let n = restart (fun () -> Unix.write fd b pos len) in
      go (pos + n) (len - n)
  in
  go 0 (Bytes.length b)

let status_text = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 429 -> "Too Many Requests"
  | 503 -> "Service Unavailable"
  | _ -> "Error"

(* Responders return the status they wrote, so the per-request probe
   in [handle_conn] can label its span without re-parsing anything. *)
let respond_ct fd status ~ctype body =
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: \
        %d\r\nConnection: close\r\n\r\n%s"
       status (status_text status) ctype (String.length body) body);
  status

let respond fd status body =
  respond_ct fd status ~ctype:"application/json" body

let respond_json fd status j = respond fd status (J.render j)
let err fd status msg = respond_json fd status (J.Obj [ ("error", J.Str msg) ])

(* ------------------------------------------------------------------ *)
(* The gateway *)

type t = {
  srv : Server.t;
  lfd : Unix.file_descr;
  port : int;
  mutable stop : bool;
  mutable acceptor : Thread.t option;
  mu : Mutex.t;
  sessions : (int, Server.session) Hashtbl.t;
      (* HTTP sessions are poll-based: the gateway keeps the id ->
         session map (the TCP path holds its session on the stack
         instead). *)
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* A session may predate this gateway instance: after a crash,
   recovery restores sessions inside the Server, and the client that
   re-polls over HTTP never re-opens. Fall back to resuming. *)
let lookup t id =
  match locked t (fun () -> Hashtbl.find_opt t.sessions id) with
  | Some s -> Some s
  | None -> (
      match Server.resume_session t.srv id with
      | Ok s ->
          locked t (fun () -> Hashtbl.replace t.sessions id s);
          Some s
      | Error `Unknown -> None)
let forget t id = locked t (fun () -> Hashtbl.remove t.sessions id)

let health_json h =
  let n f = J.Num (float_of_int f) in
  J.Obj
    [
      ("status", J.Str (if h.Server.draining then "draining" else "ok"));
      ("active", n h.Server.active);
      ("opened", n h.Server.opened);
      ("rejected", n h.Server.rejected);
      ("closed", n h.Server.closed);
      ("reaped", n h.Server.reaped);
      ("submitted", n h.Server.submitted);
      ("delivered", n h.Server.delivered);
      ("dropped", n h.Server.dropped);
      ("orphaned", n h.Server.orphaned);
    ]

let parse_records body ~ctx =
  match J.parse body with
  | Error e -> Error ("body: " ^ e)
  | Ok j -> (
      match J.member "records" j with
      | Some (J.List js) ->
          List.fold_left
            (fun acc rj ->
              Result.bind acc (fun rs ->
                  Result.map (fun r -> r :: rs) (record_of_json ~ctx rj)))
            (Ok []) js
          |> Result.map List.rev
      | Some _ -> Error "records: expected a list"
      | None -> Result.map (fun r -> [ r ]) (record_of_json ~ctx j))

let handle_request t ~ctx fd req =
  match (req.meth, req.path) with
  | "GET", [ "health" ] -> respond_json fd 200 (health_json (Server.health t.srv))
  | "GET", [ "metrics" ] -> (
      match List.assoc_opt "format" req.query with
      | Some "prometheus" ->
          (* Prometheus exposition: the merged metrics joined with
             per-session partition rows and journal counters. *)
          respond_ct fd 200 ~ctype:"text/plain; version=0.0.4"
            (Obsv.Prom.render
               ~parts:(Server.health_parts t.srv)
               ~journal:(Obsv.Journal_stats.snapshot ())
               (Obsv.Metrics.snapshot ()))
      | Some _ | None ->
          respond fd 200 (Obsv.Metrics.to_json (Obsv.Metrics.snapshot ())))
  | "POST", [ "v1"; "session" ] -> (
      let credits =
        match J.parse req.body with
        | Ok j -> Option.bind (J.member "credits" j) J.to_int
        | Error _ -> None
      in
      match Server.open_session ?credits t.srv with
      | Error `Draining -> err fd 503 "draining"
      | Error `Full -> err fd 503 "session limit reached"
      | Ok s ->
          let id = Server.session_id s in
          locked t (fun () -> Hashtbl.replace t.sessions id s);
          respond_json fd 201
            (J.Obj
               [
                 ("session", J.Num (float_of_int id));
                 ("credits", J.Num (float_of_int (Server.window s)));
               ]))
  | meth, [ "v1"; "session"; id_s ] -> (
      match (int_of_string_opt id_s, meth) with
      | None, _ -> err fd 400 "bad session id"
      | Some id, "DELETE" -> (
          match lookup t id with
          | None -> err fd 404 "unknown session"
          | Some s ->
              Server.close_session t.srv s;
              forget t id;
              respond_json fd 200 (J.Obj [ ("closed", J.Num (float_of_int id)) ])
          )
      | Some _, _ -> err fd 405 "method not allowed")
  | meth, [ "v1"; "session"; id_s; "records" ] -> (
      match int_of_string_opt id_s with
      | None -> err fd 400 "bad session id"
      | Some id -> (
          match lookup t id with
          | None -> err fd 404 "unknown session"
          | Some s -> (
              match meth with
              | "POST" -> (
                  match parse_records req.body ~ctx with
                  | Error e -> err fd 400 e
                  | Ok rs ->
                      (* The HTTP analogue of withheld credits: refuse
                         new work while the response backlog fills the
                         window. *)
                      if Server.backlog s >= Server.window s then
                        err fd 429 "backlogged: poll responses first"
                      else begin
                        let accepted = ref 0 and verdict = ref `Ok in
                        List.iter
                          (fun r ->
                            match Server.submit t.srv s r with
                            | `Ok -> incr accepted
                            | (`Closed | `Draining) as v -> verdict := v)
                          rs;
                        ignore (Server.take_grants t.srv s);
                        match !verdict with
                        | `Ok ->
                            respond_json fd 200
                              (J.Obj
                                 [
                                   ( "accepted",
                                     J.Num (float_of_int !accepted) );
                                 ])
                        | `Draining -> err fd 503 "draining"
                        | `Closed -> err fd 404 "session closed"
                      end)
              | "GET" ->
                  let max =
                    match List.assoc_opt "max" req.query with
                    | Some v -> (
                        match int_of_string_opt v with
                        | Some n when n > 0 -> n
                        | _ -> 64)
                    | None -> 64
                  in
                  let rs = Server.poll t.srv s ~max in
                  respond_json fd 200
                    (J.Obj
                       [
                         ("records", J.List (List.map (record_to_json ~ctx) rs));
                         ("closed", J.Bool (Server.closed s));
                       ])
              | _ -> err fd 405 "method not allowed")))
  | _ -> err fd 404 "no such route"

(* Route label for probes: numeric segments collapse to [:id] so the
   span/metric key space stays bounded by the route table, not by
   session ids. *)
let route_label req =
  let seg s = match int_of_string_opt s with Some _ -> ":id" | None -> s in
  req.meth ^ " /" ^ String.concat "/" (List.map seg req.path)

let handle_conn t fd =
  let ctx = Dist.Wire.ctx () in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match read_request fd with
      | None -> (try ignore (err fd 400 "malformed request" : int) with _ -> ())
      | Some req ->
          let sp = Obsv.Probe.span_start () in
          let status =
            try handle_request t ~ctx fd req
            with e -> (
              try err fd 400 (Printexc.to_string e) with _ -> 400)
          in
          (* One span per request, labelled route + status; 429s also
             count as admission stalls on the gateway edge. *)
          Obsv.Probe.edge_send ~name:"http:gw" ~depth:0;
          if status = 429 then Obsv.Probe.edge_stall ~name:"http:gw";
          Obsv.Probe.span_end ~cat:"http"
            ~name:(Printf.sprintf "%s -> %d" (route_label req) status)
            sp)

let wait_readable fd timeout_s =
  match restart (fun () -> Unix.select [ fd ] [] [] timeout_s) with
  | [], _, _ -> false
  | _ -> true

let accept_loop t () =
  while not t.stop do
    if wait_readable t.lfd 0.2 then
      match restart (fun () -> Unix.accept t.lfd) with
      | fd, _ -> ignore (Thread.create (handle_conn t) fd)
      | exception Unix.Unix_error ((ECONNABORTED | EAGAIN | EWOULDBLOCK), _, _)
        -> ()
      | exception Unix.Unix_error (EBADF, _, _) -> t.stop <- true
  done

let start ?(host = "127.0.0.1") ?(port = 0) srv =
  let lfd = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.setsockopt lfd SO_REUSEADDR true;
  (try Unix.bind lfd (ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     Unix.close lfd;
     raise e);
  Unix.listen lfd 64;
  let port =
    match Unix.getsockname lfd with
    | ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    {
      srv;
      lfd;
      port;
      stop = false;
      acceptor = None;
      mu = Mutex.create ();
      sessions = Hashtbl.create 16;
    }
  in
  t.acceptor <- Some (Thread.create (accept_loop t) ());
  t

let port t = t.port

let stop t =
  t.stop <- true;
  (try Unix.close t.lfd with Unix.Unix_error _ -> ());
  match t.acceptor with
  | Some th ->
      t.acceptor <- None;
      Thread.join th
  | None -> ()
