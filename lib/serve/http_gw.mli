(** HTTP/JSON front door for {!Serve} — a hand-rolled HTTP/1.1 server
    on raw [Unix] sockets (no HTTP dependency, in the same spirit as
    {!Obsv.Jsonx}), one request per connection.

    Routes:
    - [GET /health] — serving counters and drain state;
    - [GET /metrics] — the {!Obsv.Metrics} snapshot JSON ([snet_top]
      reads the same shape);
    - [POST /v1/session] — open a session (optional body
      [{"credits": n}]); [201] with [{"session", "credits"}], [503]
      when full or draining;
    - [POST /v1/session/<id>/records] — submit records; body is either
      one record object or [{"records": [...]}]. [429] while the
      session's response backlog fills its window (poll first) — the
      HTTP analogue of the TCP credit window;
    - [GET /v1/session/<id>/records?max=k] — non-blocking poll,
      [{"records": [...], "closed": bool}];
    - [DELETE /v1/session/<id>] — close the session.

    A record object is [{"tags": {label: int, ...}}] and/or
    [{"frame_hex": "..."}] (hex of a complete {!Dist.Wire} frame, for
    records with field payloads whose codecs are registered). *)

type t

val start : ?host:string -> ?port:int -> Server.t -> t
(** Bind, listen and spawn the accept thread. [host] defaults to
    ["127.0.0.1"], [port] to [0] (ephemeral — read it with
    {!val-port}). *)

val port : t -> int

val stop : t -> unit
(** Close the listener and join the accept thread (in-flight request
    handlers finish on their own). Does {e not} drain {!Serve} — the
    daemon sequences that. *)

val record_to_json : ctx:Dist.Wire.ctx -> Snet.Record.t -> Obsv.Jsonx.t
(** Exposed for the tests: the response-side record mapping. *)

val record_of_json :
  ctx:Dist.Wire.ctx -> Obsv.Jsonx.t -> (Snet.Record.t, string) result
(** Exposed for the tests: the request-side record mapping. *)
