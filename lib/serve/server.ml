(* Network-as-a-service core: one compiled net, many concurrent client
   sessions.

   The served network is wrapped in a parallel replicator on the
   session tag — [net !! <serve_session>] — so the combinator the paper
   already provides guarantees every session's records meet their own
   replica and responses carry the session tag back out (flow
   inheritance keeps the tag on every output). The transport layers
   (framed TCP in this module, HTTP in {!Http_gw}) are thin: all
   session lifecycle, admission, credit and drain logic lives here,
   against plain records, so the tier-1 tests drive it without
   sockets. *)

module Record = Snet.Record

let session_tag = "serve_session"

type config = {
  max_sessions : int;
  credits : int;
  batch : int;
  idle_timeout : float;
}

let default_config =
  {
    max_sessions = 64;
    credits = 32;
    batch = Dist.Engine_dist.default_batch;
    idle_timeout = 300.;
  }

type durability = {
  dir : string;
  fsync_every : int;
  snapshot_every : int;
  spec : string;
}

type recovery_stats = {
  from_snapshot : bool;
  restored_sessions : int;
  replayed : int;
  redelivered : int;
  journal_damage : string option;
}

type session = {
  id : int;
  window : int;
  out_q : Record.t Streams.Channel.t;
  mutable last_activity : float;
  mutable closing : bool;
  mutable withheld : int;
  mutable submitted : int;
  mutable delivered : int;
  mutable dropped : int;
  (* Highest client request number accepted ([submit ~req]); replayed
     from the journal on recovery so a client retrying a submission it
     cannot know the fate of (the ack was lost in the crash) is
     idempotent. *)
  mutable last_req : int;
  mutable on_evict : unit -> unit;
}

type health = {
  active : int;
  draining : bool;
  opened : int;
  rejected : int;
  closed : int;
  reaped : int;
  submitted : int;
  delivered : int;
  dropped : int;
  orphaned : int;
}

type t = {
  mu : Mutex.t;
  cfg : config;
  sessions : (int, session) Hashtbl.t;
  mutable inst : Snet.Engine_conc.instance option;
  mutable draining : bool;
  mutable inflight_feeds : int;
  (* durability (all None/idle when the server is not journaled) *)
  durability : durability option;
  mutable journal : Durable.Journal.writer option;
  mutable snapshotting : bool;
  mutable inputs_since_snap : int;
  mutable recovering : bool;
  mutable recovery_rev : Record.t list;
  mutable recovery : recovery_stats option;
  (* lifetime totals; per-session counters fold in on close/reap *)
  mutable n_opened : int;
  mutable n_rejected : int;
  mutable n_closed : int;
  mutable n_reaped : int;
  mutable n_submitted : int;
  mutable n_delivered : int;
  mutable n_dropped : int;
  mutable n_orphaned : int;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let edge_out s = Printf.sprintf "serve:s%d.out" s.id
let edge_in = "serve:in"

let instance t =
  match t.inst with
  | Some i -> i
  | None -> failwith "Serve: engine not initialised"

(* Responses reaching the global output stream are fanned out to the
   owning session's bounded queue. Runs on the engine's output actor:
   never block here, or a slow client stalls the whole net — the
   blocking fallback below is only reachable when one input fans out
   into more responses than the queue's headroom holds, and is counted
   as a stall. *)
let route_output t r =
  (* The trace id stamped at submit ingress has done its job once the
     response reaches the global output — strip it so clients never
     see the internal tag. *)
  let r = Record.without_tag Obsv.Probe.trace_tag r in
  let buffered =
    locked t (fun () ->
        if t.recovering then begin
          t.recovery_rev <- r :: t.recovery_rev;
          true
        end
        else false)
  in
  if buffered then ()
  else
  let target =
    match Record.tag session_tag r with
    | None -> None
    | Some id -> locked t (fun () -> Hashtbl.find_opt t.sessions id)
  in
  match target with
  | None -> locked t (fun () -> t.n_orphaned <- t.n_orphaned + 1)
  | Some s -> (
      match Streams.Channel.try_send s.out_q r with
      | `Ok ->
          Obsv.Probe.edge_send ~name:(edge_out s)
            ~depth:(Streams.Channel.length s.out_q)
      | `Closed -> s.dropped <- s.dropped + 1
      | `Full -> (
          Obsv.Probe.edge_stall ~name:(edge_out s);
          try Streams.Channel.send s.out_q r
          with Streams.Channel.Closed -> s.dropped <- s.dropped + 1))

(* Journal edge names carry the session id (and, for idempotent
   submissions, the client request number), so recovery can rebuild
   the session bookkeeping from edge strings alone, without decoding
   payloads it will not replay. *)
let journal_edge_in ?req id =
  match req with
  | Some q -> Printf.sprintf "serve:s%d.in#%d" id q
  | None -> Printf.sprintf "serve:s%d.in" id
let journal_edge_session id = Printf.sprintf "serve:s%d" id

let sid_of_edge edge =
  try Scanf.sscanf edge "serve:s%d" (fun id -> Some id) with _ -> None

let req_of_edge edge =
  match String.index_opt edge '#' with
  | None -> None
  | Some i ->
      int_of_string_opt (String.sub edge (i + 1) (String.length edge - i - 1))

let mk_session ~id ~window ~capacity ~on_evict =
  {
    id;
    window;
    out_q = Streams.Channel.create ~capacity ();
    last_activity = Scheduler.Clock.now ();
    closing = false;
    withheld = 0;
    submitted = 0;
    delivered = 0;
    dropped = 0;
    last_req = -1;
    on_evict;
  }

(* Rebuild a journaled server: load the latest snapshot (if its spec
   matches), restore the engine's net state from it, re-feed the
   journal's Input suffix above the snapshot watermark, and requeue
   for each restored session exactly the responses the previous
   incarnation had not yet delivered — (snapshot queue ++ replay
   outputs) minus the Delivered entries above the watermark, as a
   frame multiset with a floor at zero (frames are canonical, so
   byte-equality is record equality). *)
let recover t d ?pool ?exec wrapped =
  let snap =
    match Durable.Snapshot.load ~dir:d.dir with
    | Some s when s.Durable.Snapshot.spec = d.spec -> Some s
    | Some _ | None -> None
  in
  let entries, damage = Durable.Journal.read_dir d.dir in
  let entries = Durable.Journal.dedupe entries in
  let wm =
    match snap with Some s -> s.Durable.Snapshot.watermark | None -> -1
  in
  let live =
    List.filter (fun e -> e.Durable.Journal.seq > wm) entries
  in
  (* Open-session table: snapshot sessions plus the journal suffix. *)
  let alive : (int, int) Hashtbl.t = Hashtbl.create 16 in
  (match snap with
  | Some s ->
      List.iter
        (fun (id, window) -> Hashtbl.replace alive id window)
        s.Durable.Snapshot.sessions
  | None -> ());
  List.iter
    (fun e ->
      match (e.Durable.Journal.kind, sid_of_edge e.Durable.Journal.edge) with
      | Durable.Journal.Open_session, Some id ->
          let window =
            match int_of_string_opt e.Durable.Journal.payload with
            | Some w when w > 0 -> w
            | _ -> t.cfg.credits
          in
          Hashtbl.replace alive id window
      | Durable.Journal.Close_session, Some id -> Hashtbl.remove alive id
      | _ -> ())
    live;
  (* Highest accepted request number per session INCARNATION: the scan
     covers the whole journal (snapshots never truncate it), but resets
     at every Open/Close_session for the id — [alloc_id] reuses the
     smallest free id after a close, and a fresh client on a recycled
     id must not inherit the previous incarnation's idempotency floor
     (its early request numbers would be swallowed as "duplicates"
     without ever being journaled or fed). *)
  let last_reqs : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match (e.Durable.Journal.kind, sid_of_edge e.Durable.Journal.edge) with
      | Durable.Journal.Input, Some id -> (
          match req_of_edge e.Durable.Journal.edge with
          | Some q ->
              let cur =
                Option.value ~default:(-1) (Hashtbl.find_opt last_reqs id)
              in
              if q > cur then Hashtbl.replace last_reqs id q
          | None -> ())
      | ( (Durable.Journal.Open_session | Durable.Journal.Close_session),
          Some id ) ->
          Hashtbl.remove last_reqs id
      | _ -> ())
    entries;
  (* Engine with the snapshot's net state pre-built, outputs buffered
     until the replay settles. *)
  t.recovering <- true;
  let restore =
    match snap with
    | Some s -> s.Durable.Snapshot.state
    | None -> Snet.Netstate.empty
  in
  t.inst <-
    Some
      (Snet.Engine_conc.start ?pool ?exec ~restore
         ~on_output:(route_output t) wrapped);
  let replayed = ref 0 in
  List.iter
    (fun e ->
      if e.Durable.Journal.kind = Durable.Journal.Input then
        match Dist.Wire.read e.Durable.Journal.payload with
        | Ok r ->
            incr replayed;
            Obsv.Journal_stats.record_replay ();
            Snet.Engine_conc.feed (instance t) r
        | Error _ -> ())
    live;
  ignore (Snet.Engine_conc.finish (instance t) : Record.t list);
  let outputs = List.rev t.recovery_rev in
  t.recovery_rev <- [];
  t.recovering <- false;
  (* Undelivered = (snapshot queue ++ replay outputs) - Delivered
     entries above the watermark, per session, floor at zero. *)
  let delivered_after : (int * string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if e.Durable.Journal.kind = Durable.Journal.Delivered then
        match sid_of_edge e.Durable.Journal.edge with
        | Some id ->
            let k = (id, e.Durable.Journal.payload) in
            Hashtbl.replace delivered_after k
              (1 + Option.value ~default:0 (Hashtbl.find_opt delivered_after k))
        | None -> ())
    live;
  let cands : (int, (string * Record.t) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let add_cand id fr =
    match Hashtbl.find_opt cands id with
    | Some l -> l := fr :: !l
    | None -> Hashtbl.replace cands id (ref [ fr ])
  in
  (match snap with
  | Some s ->
      List.iter
        (fun (id, frames) ->
          List.iter
            (fun f ->
              match Dist.Wire.read f with
              | Ok r -> add_cand id (f, r)
              | Error _ -> ())
            frames)
        s.Durable.Snapshot.queued
  | None -> ());
  List.iter
    (fun r ->
      match Record.tag session_tag r with
      | Some id -> add_cand id (Dist.Wire.render r, r)
      | None -> t.n_orphaned <- t.n_orphaned + 1)
    outputs;
  let redelivered = ref 0 in
  Hashtbl.iter
    (fun id window ->
      let pending =
        match Hashtbl.find_opt cands id with
        | Some l -> List.rev !l
        | None -> []
      in
      let keep =
        List.filter
          (fun (f, _) ->
            match Hashtbl.find_opt delivered_after (id, f) with
            | Some n when n > 0 ->
                Hashtbl.replace delivered_after (id, f) (n - 1);
                false
            | _ -> true)
          pending
      in
      let s =
        mk_session ~id ~window
          ~capacity:(max (8 * window) (2 * List.length keep))
          ~on_evict:(fun () -> ())
      in
      (match Hashtbl.find_opt last_reqs id with
      | Some q -> s.last_req <- q
      | None -> ());
      List.iter
        (fun (_, r) ->
          redelivered := !redelivered + 1;
          match Streams.Channel.try_send s.out_q r with
          | `Ok -> ()
          | `Full | `Closed -> s.dropped <- s.dropped + 1)
        keep;
      Hashtbl.replace t.sessions id s)
    alive;
  (* Responses owed to sessions the journal says were closed. *)
  Hashtbl.iter
    (fun id l ->
      if not (Hashtbl.mem alive id) then
        t.n_dropped <- t.n_dropped + List.length !l)
    cands;
  t.journal <- Some (Durable.Journal.open_writer ~fsync_every:d.fsync_every d.dir);
  (* A directory with no prior journal or snapshot is a fresh start,
     not a recovery — report None so callers can tell the two apart. *)
  t.recovery <-
    (if entries = [] && snap = None then None
     else
       Some
         {
           from_snapshot = snap <> None;
           restored_sessions = Hashtbl.length alive;
           replayed = !replayed;
           redelivered = !redelivered;
           journal_damage = damage;
         })

let create ?pool ?exec ?(cfg = default_config) ?durability net =
  if cfg.max_sessions < 1 then invalid_arg "Serve.create: max_sessions < 1";
  if cfg.credits < 1 then invalid_arg "Serve.create: credits < 1";
  (match Dist.Engine_dist.batch_of_string (string_of_int cfg.batch) with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Serve.create: " ^ e));
  (match durability with
  | Some d ->
      if d.fsync_every < 0 then invalid_arg "Serve.create: fsync_every < 0";
      if d.snapshot_every < 0 then
        invalid_arg "Serve.create: snapshot_every < 0"
  | None -> ());
  let t =
    {
      mu = Mutex.create ();
      cfg;
      sessions = Hashtbl.create 64;
      inst = None;
      draining = false;
      inflight_feeds = 0;
      durability;
      journal = None;
      snapshotting = false;
      inputs_since_snap = 0;
      recovering = false;
      recovery_rev = [];
      recovery = None;
      n_opened = 0;
      n_rejected = 0;
      n_closed = 0;
      n_reaped = 0;
      n_submitted = 0;
      n_delivered = 0;
      n_dropped = 0;
      n_orphaned = 0;
    }
  in
  let wrapped = Snet.Net.split net session_tag in
  (match durability with
  | None ->
      t.inst <-
        Some
          (Snet.Engine_conc.start ?pool ?exec ~on_output:(route_output t)
             wrapped)
  | Some d -> recover t d ?pool ?exec wrapped);
  t

let recovery t = t.recovery

(* Session ids are the smallest free ones, not monotonic: the engine
   unfolds one net replica per distinct tag value and never folds it
   back, so id reuse keeps the replica count bounded by [max_sessions]
   over the daemon's lifetime. (Corollary: a net with cross-record
   state — sync cells — carries that state from a closed session to
   the next one reusing its id; serve stateless-per-record nets.) *)
let alloc_id t =
  let rec go i = if Hashtbl.mem t.sessions i then go (i + 1) else i in
  go 0

let open_session ?credits ?(on_evict = fun () -> ()) t =
  let window =
    match credits with
    | Some c when c > 0 -> min c t.cfg.credits
    | _ -> t.cfg.credits
  in
  locked t (fun () ->
      if t.draining then begin
        t.n_rejected <- t.n_rejected + 1;
        Error `Draining
      end
      else if Hashtbl.length t.sessions >= t.cfg.max_sessions then begin
        t.n_rejected <- t.n_rejected + 1;
        Error `Full
      end
      else begin
        let id = alloc_id t in
        (* Write-ahead: the open must be durable before the session is
           visible, or a crash right after the ack would restore a
           server that denies the session ever existed. *)
        (match t.journal with
        | Some w ->
            ignore
              (Durable.Journal.append w ~kind:Durable.Journal.Open_session
                 ~edge:(journal_edge_session id) (string_of_int window)
                : int)
        | None -> ());
        (* Headroom above the credit window: fan-out nets may answer
           one input with several records. *)
        let s = mk_session ~id ~window ~capacity:(8 * window) ~on_evict in
        Hashtbl.replace t.sessions id s;
        t.n_opened <- t.n_opened + 1;
        Obsv.Probe.instant ~cat:"serve" ~name:"session.open" ~value:id ();
        Ok s
      end)

(* Re-attach to a session restored from the journal (or simply still
   open) after the original connection — or the original process —
   went away. *)
let resume_session ?(on_evict = fun () -> ()) t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.sessions id with
      | Some s when not s.closing ->
          s.on_evict <- on_evict;
          s.last_activity <- Scheduler.Clock.now ();
          Ok s
      | Some _ | None -> Error `Unknown)

(* Quiesce the engine and persist a snapshot: block new admissions
   (the [snapshotting] barrier below), let in-flight feeds land, run
   the net to quiescence, then capture — journal watermark first, so a
   response delivered while we are peeking the queues is above the
   watermark and recovery's floor-at-zero subtraction corrects the
   double-count. *)
let snapshot_now t w d =
  Fun.protect
    ~finally:(fun () ->
      locked t (fun () ->
          t.snapshotting <- false;
          t.inputs_since_snap <- 0))
    (fun () ->
      let rec settle () =
        if locked t (fun () -> t.inflight_feeds > 0) then begin
          Scheduler.Clock.sleep 0.001;
          settle ()
        end
      in
      settle ();
      ignore (Snet.Engine_conc.finish (instance t) : Record.t list);
      (* The watermark asserts that every journal entry <= it is
         recoverable. Under machine-crash durability that means the
         journal must be synced up to the watermark before the
         snapshot may claim it — otherwise a crash could persist a
         snapshot whose watermark exceeds the fsynced journal prefix,
         hiding Open_session/last_req entries below it. *)
      if d.fsync_every > 0 then Durable.Journal.sync w;
      let watermark = Durable.Journal.next_seq w - 1 in
      let state = Snet.Engine_conc.capture (instance t) in
      let sessions, queued =
        locked t (fun () ->
            Hashtbl.fold
              (fun _ s (ss, qs) ->
                ( (s.id, s.window) :: ss,
                  (s.id, List.map Dist.Wire.render (Streams.Channel.peek s.out_q))
                  :: qs ))
              t.sessions ([], []))
      in
      Durable.Snapshot.save ~journal:w ~dir:d.dir
        { Durable.Snapshot.spec = d.spec; watermark; state; sessions; queued })

let maybe_snapshot t =
  match (t.journal, t.durability) with
  | Some w, Some d when d.snapshot_every > 0 ->
      let due =
        locked t (fun () ->
            if t.inputs_since_snap >= d.snapshot_every && not t.snapshotting
            then begin
              t.snapshotting <- true;
              true
            end
            else false)
      in
      if due then snapshot_now t w d
  | _ -> ()

let submit ?req t s r =
  let rec admitted () =
    let a =
      locked t (fun () ->
          if s.closing then `Closed
          else if t.draining then `Draining
          else if t.snapshotting then `Wait
          else
            match req with
            | Some q when q <= s.last_req -> `Duplicate
            | _ ->
                (match req with Some q -> s.last_req <- q | None -> ());
                s.last_activity <- Scheduler.Clock.now ();
                s.submitted <- s.submitted + 1;
                t.n_submitted <- t.n_submitted + 1;
                t.inflight_feeds <- t.inflight_feeds + 1;
                if t.journal <> None then
                  t.inputs_since_snap <- t.inputs_since_snap + 1;
                `Admit)
    in
    match a with
    | `Wait ->
        (* A snapshot is capturing: wait it out ([Clock.sleep] keeps
           the retry schedulable under detcheck's virtual clock). *)
        Scheduler.Clock.sleep 0.001;
        admitted ()
    | (`Closed | `Draining | `Duplicate | `Admit) as x -> x
  in
  match admitted () with
  | (`Closed | `Draining) as x -> x
  | `Duplicate ->
      (* Already accepted (and journaled) before a crash or a lost
         ack: the retry succeeds without re-feeding. *)
      `Ok
  | `Admit ->
      let tagged = Record.with_tag session_tag s.id r in
      (* Trace ingress (mirrors the distributed coordinator): a fresh
         trace id per submission, kept if the caller already stamped
         one, so spans this record touches share an id. *)
      let tagged =
        if
          Obsv.Sink.events_on ()
          && Record.tag Obsv.Probe.trace_tag tagged = None
        then
          Record.with_tag Obsv.Probe.trace_tag (Obsv.Probe.fresh_trace ())
            tagged
        else tagged
      in
      Obsv.Probe.edge_send ~name:edge_in ~depth:(s.submitted - s.delivered);
      Fun.protect
        ~finally:(fun () ->
          locked t (fun () -> t.inflight_feeds <- t.inflight_feeds - 1))
        (fun () ->
          (* Write-ahead: the entry is durable before the record's
             effects can become visible. [Journal.Killed] (a simulated
             crash) propagates — the record was neither persisted nor
             fed, exactly like a real pre-append death. *)
          (match t.journal with
          | Some w ->
              ignore
                (Durable.Journal.append w ~kind:Durable.Journal.Input
                   ~edge:(journal_edge_in ?req s.id)
                   (Dist.Wire.render tagged)
                  : int)
          | None -> ());
          Snet.Engine_conc.feed (instance t) tagged);
      locked t (fun () -> s.withheld <- s.withheld + 1);
      maybe_snapshot t;
      `Ok

(* Each admitted record earns one credit, granted back to the client
   only while the session's response backlog is below its window: a
   client that stops reading responses stops receiving credits, and
   therefore stops submitting — per-session backpressure that never
   touches the net. *)
let take_grants t s =
  (* Crash seam: a death here loses the grant but not the work — the
     client retries under its idempotency key. *)
  if t.journal <> None then Durable.Journal.seam "ack";
  locked t (fun () ->
      if Streams.Channel.length s.out_q >= s.window then 0
      else begin
        let g = s.withheld in
        s.withheld <- 0;
        g
      end)

let backlog s = Streams.Channel.length s.out_q
let window s = s.window
let closed s = Streams.Channel.is_closed s.out_q

let note_delivered t s rs =
  let n = List.length rs in
  if n > 0 then begin
    Obsv.Probe.edge_recv ~name:(edge_out s) ~depth:(Streams.Channel.length s.out_q);
    Obsv.Probe.edge_batch ~name:(edge_out s) ~size:n;
    (* A journaled delivery is what recovery subtracts from the owed
       set. [Killed] is swallowed: a dead process journals nothing,
       and deliveries the journal missed are simply redelivered after
       restart (at-least-once; frames are canonical, so the client can
       recognise the duplicate byte-for-byte). *)
    (match t.journal with
    | Some w -> (
        try
          List.iter
            (fun r ->
              ignore
                (Durable.Journal.append w ~kind:Durable.Journal.Delivered
                   ~edge:(edge_out s) (Dist.Wire.render r)
                  : int))
            rs
        with Durable.Journal.Killed -> ())
    | None -> ());
    locked t (fun () ->
        s.delivered <- s.delivered + n;
        t.n_delivered <- t.n_delivered + n)
  end

let poll t s ~max =
  let rs = Streams.Channel.drain s.out_q ~max in
  note_delivered t s rs;
  (match rs with
  | [] -> ()
  | _ :: _ -> locked t (fun () -> s.last_activity <- Scheduler.Clock.now ()));
  rs

let recv_outputs t s ~max =
  match Streams.Channel.recv_batch s.out_q ~max with
  | `Closed -> `Closed
  | `Batch rs ->
      note_delivered t s rs;
      `Batch rs

let fold_counters t (s : session) ~reaped =
  (* caller holds t.mu *)
  t.n_dropped <- t.n_dropped + s.dropped;
  if reaped then t.n_reaped <- t.n_reaped + 1 else t.n_closed <- t.n_closed + 1

let close_session t s =
  let fresh =
    locked t (fun () ->
        if s.closing then false
        else begin
          s.closing <- true;
          Hashtbl.remove t.sessions s.id;
          fold_counters t s ~reaped:false;
          true
        end)
  in
  if fresh then begin
    (* At-least-once close: a crash between the in-memory close and
       the append restores the session as open — the client simply
       closes it again. [Killed] swallowed for the same reason as in
       [note_delivered]. *)
    (match t.journal with
    | Some w -> (
        try
          ignore
            (Durable.Journal.append w ~kind:Durable.Journal.Close_session
               ~edge:(journal_edge_session s.id) ""
              : int)
        with Durable.Journal.Killed -> ())
    | None -> ());
    Streams.Channel.close s.out_q;
    Obsv.Probe.instant ~cat:"serve" ~name:"session.close" ~value:s.id ()
  end

let reap_idle t =
  if t.cfg.idle_timeout <= 0. then []
  else begin
    let now = Scheduler.Clock.now () in
    let victims =
      locked t (fun () ->
          let vs =
            Hashtbl.fold
              (fun _ s acc ->
                if
                  (not s.closing)
                  && now -. s.last_activity > t.cfg.idle_timeout
                then s :: acc
                else acc)
              t.sessions []
          in
          List.iter
            (fun s ->
              s.closing <- true;
              Hashtbl.remove t.sessions s.id;
              fold_counters t s ~reaped:true)
            vs;
          vs)
    in
    List.iter
      (fun s ->
        (match t.journal with
        | Some w -> (
            try
              ignore
                (Durable.Journal.append w ~kind:Durable.Journal.Close_session
                   ~edge:(journal_edge_session s.id) ""
                  : int)
            with Durable.Journal.Killed -> ())
        | None -> ());
        Streams.Channel.close s.out_q;
        Obsv.Probe.instant ~cat:"serve" ~name:"session.reap" ~value:s.id ();
        s.on_evict ())
      victims;
    List.map (fun s -> s.id) victims
  end

let begin_drain t = locked t (fun () -> t.draining <- true)
let is_draining t = locked t (fun () -> t.draining)

(* Graceful drain: reject new work, wait until every in-flight record
   has fully traversed the net and its response was routed, then close
   the session queues so consumers flush and observe end-of-stream.
   The settle loop below closes the admit-then-feed window — a submit
   that won the admission race may still be injecting its record while
   we wait for quiescence; [Clock.sleep] keeps the retry schedulable
   under detcheck's virtual clock. *)
let drain t =
  begin_drain t;
  let rec settle () =
    ignore (Snet.Engine_conc.finish (instance t));
    if locked t (fun () -> t.inflight_feeds > 0) then begin
      Scheduler.Clock.sleep 0.001;
      settle ()
    end
    else ignore (Snet.Engine_conc.finish (instance t))
  in
  settle ();
  let remaining =
    locked t (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [])
  in
  List.iter (fun s -> Streams.Channel.close s.out_q) remaining;
  Obsv.Probe.instant ~cat:"serve" ~name:"drain" ()

let session_count t = locked t (fun () -> Hashtbl.length t.sessions)

let health t =
  locked t (fun () ->
      let live f = Hashtbl.fold (fun _ s acc -> acc + f s) t.sessions 0 in
      {
        active = Hashtbl.length t.sessions;
        draining = t.draining;
        opened = t.n_opened;
        rejected = t.n_rejected;
        closed = t.n_closed;
        reaped = t.n_reaped;
        submitted = t.n_submitted;
        delivered = t.n_delivered;
        dropped = t.n_dropped + live (fun s -> s.dropped);
        orphaned = t.n_orphaned;
      })

let session_id s = s.id

(* Per-session health rows: a serve session is this daemon's analogue
   of a partition. Queue/credit figures are live; edge counters come
   from the metrics registry when it is on (zeros otherwise). Also
   refreshes the process-global Health registry, so Prom/snet_top see
   the same rows. *)
let health_parts t =
  let edges =
    if Obsv.Metrics.on () then (Obsv.Metrics.snapshot ()).Obsv.Metrics.edges
    else []
  in
  let lag = Obsv.Journal_stats.current_lag () in
  let parts =
    locked t (fun () ->
        Hashtbl.fold
          (fun _ s acc ->
            let backlog = Streams.Channel.length s.out_q in
            let sends, recvs, stalls, bp50, bp95 =
              match List.assoc_opt (edge_out s) edges with
              | Some e ->
                  ( e.Obsv.Metrics.sends,
                    e.Obsv.Metrics.recvs,
                    e.Obsv.Metrics.stalls,
                    e.Obsv.Metrics.batch_p50,
                    e.Obsv.Metrics.batch_p95 )
              | None -> (0, 0, 0, 0, 0)
            in
            Obsv.Health.make ~alive:(not s.closing) ~queue_depth:backlog
              ~window:s.window
              ~credits_free:(max 0 (s.window - backlog))
              ~sends ~recvs ~stalls ~batch_p50:bp50 ~batch_p95:bp95
              ~journal_lag:lag ~age:0. ~part:s.id ()
            :: acc)
          t.sessions [])
  in
  let parts = List.sort (fun a b -> compare a.Obsv.Health.part b.Obsv.Health.part) parts in
  Obsv.Health.set parts;
  parts

(* ------------------------------------------------------------------ *)
(* Framed-TCP session service over Transport.conn                      *)

let reject_ack reason =
  Dist.Proto.Session_ack
    { session = 0; ok = false; sa_credits = 0; sa_batch = 0; reason }

(* Envelope splitting, mirroring the cut-edge pumps: plain Data when
   the cap is 1 or the run is a singleton, Data_batch chunks bounded by
   the cap otherwise. *)
let data_msgs ~ctx ~batch rs =
  if batch <= 1 then
    List.map (fun r -> Dist.Proto.encode ~ctx (Dist.Proto.Data r)) rs
  else begin
    let rec chunks acc rs =
      match rs with
      | [] -> List.rev acc
      | _ ->
          let rec take k xs acc =
            match (k, xs) with
            | 0, _ | _, [] -> (List.rev acc, xs)
            | k, x :: xs -> take (k - 1) xs (x :: acc)
          in
          let chunk, rest = take batch rs [] in
          chunks (chunk :: acc) rest
    in
    List.map
      (function
        | [ r ] -> Dist.Proto.encode ~ctx (Dist.Proto.Data r)
        | chunk -> Dist.Proto.encode ~ctx (Dist.Proto.Data_batch chunk))
      (chunks [] rs)
  end

let attempt f = try f () with _ -> ()

(* Response writer: drains the session queue in envelope-sized batches,
   piggybacks any pending credit grants on the same transport write,
   and — once the queue is closed and flushed — answers [Done] and
   closes the connection (waking the reader). Connection teardown is
   the writer's job on every path, so the flush always precedes it. *)
let session_writer t s conn ~batch () =
  let ctx = Dist.Wire.ctx () in
  let rec loop () =
    match Streams.Channel.recv_batch s.out_q ~max:(max 1 batch) with
    | `Batch rs ->
        let grants = take_grants t s in
        let msgs =
          data_msgs ~ctx ~batch rs
          @
          if grants > 0 then [ Dist.Proto.encode (Dist.Proto.Credit grants) ]
          else []
        in
        let sent =
          try
            Dist.Transport.send_many conn msgs;
            true
          with _ -> false
        in
        (* Count (and journal) the delivery only once the frames
           reached the transport: a crash between the send and the
           journal append redelivers after restart rather than losing
           the response — at-least-once toward the client, who can
           dedupe byte-identical frames. *)
        if sent then note_delivered t s rs;
        loop ()
    | `Closed ->
        attempt (fun () ->
            Dist.Transport.send conn (Dist.Proto.encode Dist.Proto.Done));
        Dist.Transport.close conn
  in
  loop ()

(* Serve one negotiated session on [conn]; returns when the connection
   is done. The reader (this thread) feeds the net and grants credits;
   the writer thread streams responses back. *)
let serve_session t conn ~window ~batch s =
  let ctx = Dist.Wire.ctx () in
  ignore window;
  let writer = Thread.create (session_writer t s conn ~batch) () in
  let handle r =
    match submit t s r with
    | `Ok ->
        let g = take_grants t s in
        if g > 0 then
          attempt (fun () ->
              Dist.Transport.send conn (Dist.Proto.encode (Dist.Proto.Credit g)))
    | `Draining ->
        attempt (fun () ->
            Dist.Transport.send conn (Dist.Proto.encode (reject_ack "draining")))
    | `Closed -> ()
  in
  let rec loop () =
    match Dist.Transport.recv conn with
    | `Closed -> close_session t s
    | `Msg m -> (
        match Dist.Proto.decode ~ctx m with
        | Ok (Dist.Proto.Data r) ->
            handle r;
            loop ()
        | Ok (Dist.Proto.Data_batch rs) ->
            List.iter handle rs;
            loop ()
        | Ok (Dist.Proto.Close_session _ | Dist.Proto.Eof) ->
            (* No more submissions: flush-and-done happens in the
               writer once the queue closes; keep reading until it
               closes the connection. *)
            close_session t s;
            loop ()
        | Ok _ -> loop ()
        | Error e ->
            close_session t s;
            attempt (fun () ->
                Dist.Transport.send conn
                  (Dist.Proto.encode
                     (Dist.Proto.Crash ("protocol error: " ^ e)))))
  in
  loop ();
  (* The session may have been closed by reap/drain while the client
     still held the connection: make sure the writer wakes. *)
  close_session t s;
  Thread.join writer;
  Dist.Transport.close conn

(* Full connection lifecycle: Hello/Hello_ack, Open_session/Session_ack
   (admission control answers rejections in-band), then the session
   loop. *)
let serve_conn t conn =
  let fail reason =
    attempt (fun () -> Dist.Transport.send conn (Dist.Proto.encode (reject_ack reason)));
    Dist.Transport.close conn
  in
  match Dist.Transport.recv conn with
  | `Closed -> Dist.Transport.close conn
  | `Msg m -> (
      match Dist.Proto.decode m with
      | Ok (Dist.Proto.Hello h) when h.Dist.Proto.spec = Dist.Proto.serve_spec
        -> (
          attempt (fun () ->
              Dist.Transport.send conn
                (Dist.Proto.encode (Dist.Proto.Hello_ack { part = 0 })));
          match Dist.Transport.recv conn with
          | `Closed -> Dist.Transport.close conn
          | `Msg m -> (
              match Dist.Proto.decode m with
              | Ok (Dist.Proto.Open_session { credits; batch; resume }) -> (
                  let batch =
                    if batch <= 0 then t.cfg.batch else min batch t.cfg.batch
                  in
                  let on_evict () = Dist.Transport.close conn in
                  let ack_and_serve s =
                    attempt (fun () ->
                        Dist.Transport.send conn
                          (Dist.Proto.encode
                             (Dist.Proto.Session_ack
                                {
                                  session = s.id;
                                  ok = true;
                                  sa_credits = s.window;
                                  sa_batch = batch;
                                  reason = "";
                                })));
                    serve_session t conn ~window:s.window ~batch s
                  in
                  if resume >= 0 then
                    match resume_session ~on_evict t resume with
                    | Ok s -> ack_and_serve s
                    | Error `Unknown -> fail "unknown resume session"
                  else
                    match
                      open_session
                        ~credits:
                          (if credits <= 0 then t.cfg.credits else credits)
                        ~on_evict t
                    with
                    | Error `Draining -> fail "draining"
                    | Error `Full -> fail "session limit reached"
                    | Ok s -> ack_and_serve s)
              | Ok _ | Error _ -> fail "expected Open_session"))
      | Ok (Dist.Proto.Hello _) -> fail "unsupported hello spec"
      | Ok _ | Error _ -> fail "expected Hello")
