(* Network-as-a-service core: one compiled net, many concurrent client
   sessions.

   The served network is wrapped in a parallel replicator on the
   session tag — [net !! <serve_session>] — so the combinator the paper
   already provides guarantees every session's records meet their own
   replica and responses carry the session tag back out (flow
   inheritance keeps the tag on every output). The transport layers
   (framed TCP in this module, HTTP in {!Http_gw}) are thin: all
   session lifecycle, admission, credit and drain logic lives here,
   against plain records, so the tier-1 tests drive it without
   sockets. *)

module Record = Snet.Record

let session_tag = "serve_session"

type config = {
  max_sessions : int;
  credits : int;
  batch : int;
  idle_timeout : float;
}

let default_config =
  {
    max_sessions = 64;
    credits = 32;
    batch = Dist.Engine_dist.default_batch;
    idle_timeout = 300.;
  }

type session = {
  id : int;
  window : int;
  out_q : Record.t Streams.Channel.t;
  mutable last_activity : float;
  mutable closing : bool;
  mutable withheld : int;
  mutable submitted : int;
  mutable delivered : int;
  mutable dropped : int;
  on_evict : unit -> unit;
}

type health = {
  active : int;
  draining : bool;
  opened : int;
  rejected : int;
  closed : int;
  reaped : int;
  submitted : int;
  delivered : int;
  dropped : int;
  orphaned : int;
}

type t = {
  mu : Mutex.t;
  cfg : config;
  sessions : (int, session) Hashtbl.t;
  mutable inst : Snet.Engine_conc.instance option;
  mutable draining : bool;
  mutable inflight_feeds : int;
  (* lifetime totals; per-session counters fold in on close/reap *)
  mutable n_opened : int;
  mutable n_rejected : int;
  mutable n_closed : int;
  mutable n_reaped : int;
  mutable n_submitted : int;
  mutable n_delivered : int;
  mutable n_dropped : int;
  mutable n_orphaned : int;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let edge_out s = Printf.sprintf "serve:s%d.out" s.id
let edge_in = "serve:in"

let instance t =
  match t.inst with
  | Some i -> i
  | None -> failwith "Serve: engine not initialised"

(* Responses reaching the global output stream are fanned out to the
   owning session's bounded queue. Runs on the engine's output actor:
   never block here, or a slow client stalls the whole net — the
   blocking fallback below is only reachable when one input fans out
   into more responses than the queue's headroom holds, and is counted
   as a stall. *)
let route_output t r =
  let target =
    match Record.tag session_tag r with
    | None -> None
    | Some id -> locked t (fun () -> Hashtbl.find_opt t.sessions id)
  in
  match target with
  | None -> locked t (fun () -> t.n_orphaned <- t.n_orphaned + 1)
  | Some s -> (
      match Streams.Channel.try_send s.out_q r with
      | `Ok ->
          Obsv.Probe.edge_send ~name:(edge_out s)
            ~depth:(Streams.Channel.length s.out_q)
      | `Closed -> s.dropped <- s.dropped + 1
      | `Full -> (
          Obsv.Probe.edge_stall ~name:(edge_out s);
          try Streams.Channel.send s.out_q r
          with Streams.Channel.Closed -> s.dropped <- s.dropped + 1))

let create ?pool ?exec ?(cfg = default_config) net =
  if cfg.max_sessions < 1 then invalid_arg "Serve.create: max_sessions < 1";
  if cfg.credits < 1 then invalid_arg "Serve.create: credits < 1";
  (match Dist.Engine_dist.batch_of_string (string_of_int cfg.batch) with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Serve.create: " ^ e));
  let t =
    {
      mu = Mutex.create ();
      cfg;
      sessions = Hashtbl.create 64;
      inst = None;
      draining = false;
      inflight_feeds = 0;
      n_opened = 0;
      n_rejected = 0;
      n_closed = 0;
      n_reaped = 0;
      n_submitted = 0;
      n_delivered = 0;
      n_dropped = 0;
      n_orphaned = 0;
    }
  in
  let wrapped = Snet.Net.split net session_tag in
  t.inst <-
    Some
      (Snet.Engine_conc.start ?pool ?exec ~on_output:(route_output t) wrapped);
  t

(* Session ids are the smallest free ones, not monotonic: the engine
   unfolds one net replica per distinct tag value and never folds it
   back, so id reuse keeps the replica count bounded by [max_sessions]
   over the daemon's lifetime. (Corollary: a net with cross-record
   state — sync cells — carries that state from a closed session to
   the next one reusing its id; serve stateless-per-record nets.) *)
let alloc_id t =
  let rec go i = if Hashtbl.mem t.sessions i then go (i + 1) else i in
  go 0

let open_session ?credits ?(on_evict = fun () -> ()) t =
  let window =
    match credits with
    | Some c when c > 0 -> min c t.cfg.credits
    | _ -> t.cfg.credits
  in
  locked t (fun () ->
      if t.draining then begin
        t.n_rejected <- t.n_rejected + 1;
        Error `Draining
      end
      else if Hashtbl.length t.sessions >= t.cfg.max_sessions then begin
        t.n_rejected <- t.n_rejected + 1;
        Error `Full
      end
      else begin
        let id = alloc_id t in
        let s =
          {
            id;
            window;
            (* Headroom above the credit window: fan-out nets may
               answer one input with several records. *)
            out_q = Streams.Channel.create ~capacity:(8 * window) ();
            last_activity = Scheduler.Clock.now ();
            closing = false;
            withheld = 0;
            submitted = 0;
            delivered = 0;
            dropped = 0;
            on_evict;
          }
        in
        Hashtbl.replace t.sessions id s;
        t.n_opened <- t.n_opened + 1;
        Obsv.Probe.instant ~cat:"serve" ~name:"session.open" ~value:id ();
        Ok s
      end)

let submit t s r =
  let admitted =
    locked t (fun () ->
        if s.closing then `Closed
        else if t.draining then `Draining
        else begin
          s.last_activity <- Scheduler.Clock.now ();
          s.submitted <- s.submitted + 1;
          t.n_submitted <- t.n_submitted + 1;
          t.inflight_feeds <- t.inflight_feeds + 1;
          `Admit
        end)
  in
  match admitted with
  | (`Closed | `Draining) as x -> x
  | `Admit ->
      let tagged = Record.with_tag session_tag s.id r in
      Obsv.Probe.edge_send ~name:edge_in ~depth:(s.submitted - s.delivered);
      Fun.protect
        ~finally:(fun () ->
          locked t (fun () -> t.inflight_feeds <- t.inflight_feeds - 1))
        (fun () -> Snet.Engine_conc.feed (instance t) tagged);
      locked t (fun () -> s.withheld <- s.withheld + 1);
      `Ok

(* Each admitted record earns one credit, granted back to the client
   only while the session's response backlog is below its window: a
   client that stops reading responses stops receiving credits, and
   therefore stops submitting — per-session backpressure that never
   touches the net. *)
let take_grants t s =
  locked t (fun () ->
      if Streams.Channel.length s.out_q >= s.window then 0
      else begin
        let g = s.withheld in
        s.withheld <- 0;
        g
      end)

let backlog s = Streams.Channel.length s.out_q
let window s = s.window
let closed s = Streams.Channel.is_closed s.out_q

let note_delivered t s n =
  if n > 0 then begin
    Obsv.Probe.edge_recv ~name:(edge_out s) ~depth:(Streams.Channel.length s.out_q);
    Obsv.Probe.edge_batch ~name:(edge_out s) ~size:n;
    locked t (fun () ->
        s.delivered <- s.delivered + n;
        t.n_delivered <- t.n_delivered + n)
  end

let poll t s ~max =
  let rs = Streams.Channel.drain s.out_q ~max in
  note_delivered t s (List.length rs);
  (match rs with
  | [] -> ()
  | _ :: _ -> locked t (fun () -> s.last_activity <- Scheduler.Clock.now ()));
  rs

let recv_outputs t s ~max =
  match Streams.Channel.recv_batch s.out_q ~max with
  | `Closed -> `Closed
  | `Batch rs ->
      note_delivered t s (List.length rs);
      `Batch rs

let fold_counters t (s : session) ~reaped =
  (* caller holds t.mu *)
  t.n_dropped <- t.n_dropped + s.dropped;
  if reaped then t.n_reaped <- t.n_reaped + 1 else t.n_closed <- t.n_closed + 1

let close_session t s =
  let fresh =
    locked t (fun () ->
        if s.closing then false
        else begin
          s.closing <- true;
          Hashtbl.remove t.sessions s.id;
          fold_counters t s ~reaped:false;
          true
        end)
  in
  if fresh then begin
    Streams.Channel.close s.out_q;
    Obsv.Probe.instant ~cat:"serve" ~name:"session.close" ~value:s.id ()
  end

let reap_idle t =
  if t.cfg.idle_timeout <= 0. then []
  else begin
    let now = Scheduler.Clock.now () in
    let victims =
      locked t (fun () ->
          let vs =
            Hashtbl.fold
              (fun _ s acc ->
                if
                  (not s.closing)
                  && now -. s.last_activity > t.cfg.idle_timeout
                then s :: acc
                else acc)
              t.sessions []
          in
          List.iter
            (fun s ->
              s.closing <- true;
              Hashtbl.remove t.sessions s.id;
              fold_counters t s ~reaped:true)
            vs;
          vs)
    in
    List.iter
      (fun s ->
        Streams.Channel.close s.out_q;
        Obsv.Probe.instant ~cat:"serve" ~name:"session.reap" ~value:s.id ();
        s.on_evict ())
      victims;
    List.map (fun s -> s.id) victims
  end

let begin_drain t = locked t (fun () -> t.draining <- true)
let is_draining t = locked t (fun () -> t.draining)

(* Graceful drain: reject new work, wait until every in-flight record
   has fully traversed the net and its response was routed, then close
   the session queues so consumers flush and observe end-of-stream.
   The settle loop below closes the admit-then-feed window — a submit
   that won the admission race may still be injecting its record while
   we wait for quiescence; [Clock.sleep] keeps the retry schedulable
   under detcheck's virtual clock. *)
let drain t =
  begin_drain t;
  let rec settle () =
    ignore (Snet.Engine_conc.finish (instance t));
    if locked t (fun () -> t.inflight_feeds > 0) then begin
      Scheduler.Clock.sleep 0.001;
      settle ()
    end
    else ignore (Snet.Engine_conc.finish (instance t))
  in
  settle ();
  let remaining =
    locked t (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [])
  in
  List.iter (fun s -> Streams.Channel.close s.out_q) remaining;
  Obsv.Probe.instant ~cat:"serve" ~name:"drain" ()

let session_count t = locked t (fun () -> Hashtbl.length t.sessions)

let health t =
  locked t (fun () ->
      let live f = Hashtbl.fold (fun _ s acc -> acc + f s) t.sessions 0 in
      {
        active = Hashtbl.length t.sessions;
        draining = t.draining;
        opened = t.n_opened;
        rejected = t.n_rejected;
        closed = t.n_closed;
        reaped = t.n_reaped;
        submitted = t.n_submitted;
        delivered = t.n_delivered;
        dropped = t.n_dropped + live (fun s -> s.dropped);
        orphaned = t.n_orphaned;
      })

let session_id s = s.id

(* ------------------------------------------------------------------ *)
(* Framed-TCP session service over Transport.conn                      *)

let reject_ack reason =
  Dist.Proto.Session_ack
    { session = 0; ok = false; sa_credits = 0; sa_batch = 0; reason }

(* Envelope splitting, mirroring the cut-edge pumps: plain Data when
   the cap is 1 or the run is a singleton, Data_batch chunks bounded by
   the cap otherwise. *)
let data_msgs ~ctx ~batch rs =
  if batch <= 1 then
    List.map (fun r -> Dist.Proto.encode ~ctx (Dist.Proto.Data r)) rs
  else begin
    let rec chunks acc rs =
      match rs with
      | [] -> List.rev acc
      | _ ->
          let rec take k xs acc =
            match (k, xs) with
            | 0, _ | _, [] -> (List.rev acc, xs)
            | k, x :: xs -> take (k - 1) xs (x :: acc)
          in
          let chunk, rest = take batch rs [] in
          chunks (chunk :: acc) rest
    in
    List.map
      (function
        | [ r ] -> Dist.Proto.encode ~ctx (Dist.Proto.Data r)
        | chunk -> Dist.Proto.encode ~ctx (Dist.Proto.Data_batch chunk))
      (chunks [] rs)
  end

let attempt f = try f () with _ -> ()

(* Response writer: drains the session queue in envelope-sized batches,
   piggybacks any pending credit grants on the same transport write,
   and — once the queue is closed and flushed — answers [Done] and
   closes the connection (waking the reader). Connection teardown is
   the writer's job on every path, so the flush always precedes it. *)
let session_writer t s conn ~batch () =
  let ctx = Dist.Wire.ctx () in
  let rec loop () =
    match recv_outputs t s ~max:(max 1 batch) with
    | `Batch rs ->
        let grants = take_grants t s in
        let msgs =
          data_msgs ~ctx ~batch rs
          @
          if grants > 0 then [ Dist.Proto.encode (Dist.Proto.Credit grants) ]
          else []
        in
        attempt (fun () -> Dist.Transport.send_many conn msgs);
        loop ()
    | `Closed ->
        attempt (fun () ->
            Dist.Transport.send conn (Dist.Proto.encode Dist.Proto.Done));
        Dist.Transport.close conn
  in
  loop ()

(* Serve one negotiated session on [conn]; returns when the connection
   is done. The reader (this thread) feeds the net and grants credits;
   the writer thread streams responses back. *)
let serve_session t conn ~window ~batch s =
  let ctx = Dist.Wire.ctx () in
  ignore window;
  let writer = Thread.create (session_writer t s conn ~batch) () in
  let handle r =
    match submit t s r with
    | `Ok ->
        let g = take_grants t s in
        if g > 0 then
          attempt (fun () ->
              Dist.Transport.send conn (Dist.Proto.encode (Dist.Proto.Credit g)))
    | `Draining ->
        attempt (fun () ->
            Dist.Transport.send conn (Dist.Proto.encode (reject_ack "draining")))
    | `Closed -> ()
  in
  let rec loop () =
    match Dist.Transport.recv conn with
    | `Closed -> close_session t s
    | `Msg m -> (
        match Dist.Proto.decode ~ctx m with
        | Ok (Dist.Proto.Data r) ->
            handle r;
            loop ()
        | Ok (Dist.Proto.Data_batch rs) ->
            List.iter handle rs;
            loop ()
        | Ok (Dist.Proto.Close_session _ | Dist.Proto.Eof) ->
            (* No more submissions: flush-and-done happens in the
               writer once the queue closes; keep reading until it
               closes the connection. *)
            close_session t s;
            loop ()
        | Ok _ -> loop ()
        | Error e ->
            close_session t s;
            attempt (fun () ->
                Dist.Transport.send conn
                  (Dist.Proto.encode
                     (Dist.Proto.Crash ("protocol error: " ^ e)))))
  in
  loop ();
  (* The session may have been closed by reap/drain while the client
     still held the connection: make sure the writer wakes. *)
  close_session t s;
  Thread.join writer;
  Dist.Transport.close conn

(* Full connection lifecycle: Hello/Hello_ack, Open_session/Session_ack
   (admission control answers rejections in-band), then the session
   loop. *)
let serve_conn t conn =
  let fail reason =
    attempt (fun () -> Dist.Transport.send conn (Dist.Proto.encode (reject_ack reason)));
    Dist.Transport.close conn
  in
  match Dist.Transport.recv conn with
  | `Closed -> Dist.Transport.close conn
  | `Msg m -> (
      match Dist.Proto.decode m with
      | Ok (Dist.Proto.Hello h) when h.Dist.Proto.spec = Dist.Proto.serve_spec
        -> (
          attempt (fun () ->
              Dist.Transport.send conn
                (Dist.Proto.encode (Dist.Proto.Hello_ack { part = 0 })));
          match Dist.Transport.recv conn with
          | `Closed -> Dist.Transport.close conn
          | `Msg m -> (
              match Dist.Proto.decode m with
              | Ok (Dist.Proto.Open_session { credits; batch }) -> (
                  let batch =
                    if batch <= 0 then t.cfg.batch else min batch t.cfg.batch
                  in
                  let on_evict () = Dist.Transport.close conn in
                  match
                    open_session
                      ~credits:(if credits <= 0 then t.cfg.credits else credits)
                      ~on_evict t
                  with
                  | Error `Draining -> fail "draining"
                  | Error `Full -> fail "session limit reached"
                  | Ok s ->
                      attempt (fun () ->
                          Dist.Transport.send conn
                            (Dist.Proto.encode
                               (Dist.Proto.Session_ack
                                  {
                                    session = s.id;
                                    ok = true;
                                    sa_credits = s.window;
                                    sa_batch = batch;
                                    reason = "";
                                  })));
                      serve_session t conn ~window:s.window ~batch s)
              | Ok _ | Error _ -> fail "expected Open_session"))
      | Ok (Dist.Proto.Hello _) -> fail "unsupported hello spec"
      | Ok _ | Error _ -> fail "expected Hello")
