(** Network-as-a-service: one compiled S-Net, many concurrent client
    sessions.

    The served network is wrapped in the paper's parallel replicator on
    a reserved session tag — [net !! <serve_session>] — so each session
    gets its own replica, records from different sessions never mix,
    and flow inheritance carries the tag back out on every response,
    which is how {!val-poll}/{!serve_conn} route outputs to the right
    client.

    All lifecycle logic (admission, per-session credit windows, idle
    reaping, graceful drain) lives here against plain records; the
    transports are thin adapters — {!serve_conn} speaks the framed
    session sub-protocol of {!Dist.Proto} over any
    {!Dist.Transport.conn}, and {!Http_gw} adds an HTTP/JSON front
    door. *)

type config = {
  max_sessions : int;  (** Admission cap; further opens are rejected. *)
  credits : int;
      (** Default and upper bound for a session's submit window. *)
  batch : int;
      (** Default response-envelope cap for TCP sessions (validated
          against {!Dist.Engine_dist.batch_of_string} bounds). *)
  idle_timeout : float;
      (** Seconds of inactivity before {!reap_idle} evicts a session;
          [<= 0.] disables reaping. *)
}

val default_config : config
(** 64 sessions, window 32, batch {!Dist.Engine_dist.default_batch},
    5-minute idle timeout. *)

type durability = {
  dir : string;  (** Journal directory (created as needed). *)
  fsync_every : int;
      (** [> 0]: [fsync] every that many appends; [0] flushes to the
          OS only (sufficient for the process-crash fault model). *)
  snapshot_every : int;
      (** Take a net snapshot every that many journaled submissions;
          [0] disables snapshots (recovery replays the whole
          journal). *)
  spec : string;
      (** Network spec string stored in snapshots; a snapshot whose
          spec differs is ignored on recovery. *)
}

type recovery_stats = {
  from_snapshot : bool;  (** A valid, spec-matching snapshot loaded. *)
  restored_sessions : int;
  replayed : int;  (** Input entries re-fed above the watermark. *)
  redelivered : int;  (** Responses requeued as still-undelivered. *)
  journal_damage : string option;
      (** Damage description when the journal had a torn/corrupt tail
          (the valid prefix was still recovered). *)
}

type t
(** A serving instance: the running engine plus its session table. *)

type session

val create :
  ?pool:Scheduler.Pool.t ->
  ?exec:Scheduler.Exec.t ->
  ?cfg:config ->
  ?durability:durability ->
  Snet.Net.t ->
  t
(** Wrap [net] in the session replicator and start it. [exec] runs the
    engine on a custom executor (detcheck's virtual scheduler).

    A server streams responses while no one is blocked in the engine,
    so pass a [pool] with at least one worker domain (or an [exec]
    with its own drivers): under the zero-worker default pool of a
    single-core host, actors only progress inside [finish], and
    responses would sit in the net until {!drain}.

    [durability] makes the server journal-backed: every accepted
    submission is appended (write-ahead) to the edge journal before it
    is fed, every delivered response and session open/close is
    journaled, and a net snapshot is taken every [snapshot_every]
    inputs. If the directory already holds a journal, [create]
    {e recovers}: the net state is restored from the latest snapshot,
    the journal's Input suffix is replayed, open sessions are
    re-created, and exactly the responses the previous incarnation had
    not delivered are requeued — the union of responses over
    crash-separated incarnations is multiset-identical to an
    uninterrupted run ({!recovery} reports what was restored).
    Deliveries are journaled {e after} the frames reach the consumer
    (or transport), so a crash in between redelivers rather than
    loses: at-least-once per response, exactly-once for responses
    whose delivery was journaled.
    @raise Invalid_argument on nonsensical [cfg]/[durability] bounds. *)

val recovery : t -> recovery_stats option
(** What {!create} restored, when [durability] was given and the
    directory held prior state; [None] for a fresh start. *)

val open_session :
  ?credits:int ->
  ?on_evict:(unit -> unit) ->
  t ->
  (session, [ `Full | `Draining ]) result
(** Admit a new session. [credits] asks for a smaller window than the
    configured default (larger requests are clamped); [on_evict] runs
    when the {e server} tears the session down ({!reap_idle}), so a
    connection handler can close its socket. Session ids are the
    smallest free ones — the engine unfolds one replica per distinct
    id and never folds it back, so reuse keeps replica count bounded by
    [max_sessions]. *)

val session_id : session -> int

val resume_session :
  ?on_evict:(unit -> unit) ->
  t ->
  int ->
  (session, [ `Unknown ]) result
(** Re-attach to an open session by id — typically one restored from
    the journal after a restart ([Open_session] with [resume] on the
    wire). Undelivered responses are waiting in its queue. *)

val submit :
  ?req:int -> t -> session -> Snet.Record.t -> [ `Ok | `Closed | `Draining ]
(** Stamp the record with the session tag and feed the net. [`Closed]
    after the session closed, [`Draining] once a drain began (the
    record is {e not} accepted). [req] is an idempotency key: a
    monotone per-session client request number. A submission whose
    [req] is at or below the highest already accepted (including
    accepted by a {e previous incarnation}, via the journal) returns
    [`Ok] without re-feeding — the safe retry after a crash or lost
    ack. Journal-backed servers persist the entry before feeding;
    {!Durable.Journal.Killed} propagates from a writer killed by the
    crash-point tests. *)

val take_grants : t -> session -> int
(** Credits earned since the last call — one per admitted record — but
    only while the session's response backlog is below its window: a
    client that stops reading responses stops receiving credits, and
    therefore stops submitting. Returns [0] (retaining the credits)
    while backlogged; call again after draining responses. *)

val backlog : session -> int
(** Responses queued and not yet taken (racy snapshot). *)

val window : session -> int
(** The granted submit window. *)

val closed : session -> bool
(** Whether the session has been closed (by either side, or by
    reap/drain). Queued responses remain {!val-poll}-able after. *)

val poll : t -> session -> max:int -> Snet.Record.t list
(** Non-blocking: up to [max] queued responses (possibly none). The
    HTTP gateway's read path. *)

val recv_outputs :
  t -> session -> max:int -> [ `Closed | `Batch of Snet.Record.t list ]
(** Blocking batch read of responses; [`Closed] once the session's
    queue is closed {e and} flushed. The TCP writer's read path. *)

val close_session : t -> session -> unit
(** Client-initiated close: no further submissions; queued responses
    remain readable until the queue drains ([`Closed] from
    {!recv_outputs} / [Done] on the wire). Idempotent. Responses still
    in flight inside the net when the close lands are dropped (and
    counted) — close after collecting what you expect. *)

val reap_idle : t -> int list
(** Evict every session idle longer than [idle_timeout], running each
    one's [on_evict]; returns the evicted ids. Time comes from
    {!Scheduler.Clock.now}, so tests drive reaping under a virtual
    clock. *)

val begin_drain : t -> unit
(** Stop admitting sessions and submissions, without waiting. *)

val is_draining : t -> bool

val drain : t -> unit
(** Graceful drain: {!begin_drain}, wait until every in-flight record
    has fully traversed the net and its response was routed (engine
    quiescence), then close all session queues so consumers flush and
    observe end-of-stream. After [drain], the union of responses
    delivered to sessions is multiset-identical to an undisturbed
    run's. *)

val session_count : t -> int

type health = {
  active : int;
  draining : bool;
  opened : int;
  rejected : int;
  closed : int;
  reaped : int;
  submitted : int;
  delivered : int;
  dropped : int;  (** Responses for already-closed sessions. *)
  orphaned : int;  (** Outputs with no (or an unknown) session tag. *)
}

val health : t -> health

val health_parts : t -> Obsv.Health.part list
(** Per-session health rows (a serve session is this daemon's analogue
    of a partition): live queue depth and credit occupancy, plus the
    session's edge counters when metrics are on. Sorted by session id;
    also refreshes the process-global {!Obsv.Health} registry so the
    Prometheus endpoint and [snet_top] read the same rows. *)

val session_tag : string
(** The reserved routing tag (["serve_session"]). Records submitted
    through a session must not carry it themselves. *)

val serve_conn : t -> Dist.Transport.conn -> unit
(** Serve one connection end-to-end: [Hello]([serve_spec]) /
    [Hello_ack], [Open_session] / [Session_ack] (admission rejections
    are answered in-band with [ok = false]), then the session loop —
    client [Data]/[Data_batch] submissions flow into the net, responses
    stream back in envelopes with piggybacked [Credit] grants, and
    [Close_session] (or peer close) flushes queued responses, answers
    [Done] and frees the slot. Returns when the connection is torn
    down. Spawns one writer thread for the connection's lifetime. *)
