module Exec = Scheduler.Exec

type system = {
  exec : Exec.t;
  pool : Scheduler.Pool.t option;
  batch : int;
  mailbox : int;
  mutex : Mutex.t;
  quiescent : Condition.t;
  mutable in_flight : int;
  mutable first_error : exn option;
  next_id : int Atomic.t;
  stalls : int Atomic.t;
}

let default_mailbox = 1024

let system ?pool ?exec ?(batch = 64) ?(mailbox = default_mailbox) () =
  if batch < 1 then invalid_arg "Actors.system: batch < 1";
  if mailbox < 1 then invalid_arg "Actors.system: mailbox < 1";
  let exec, pool =
    match (exec, pool) with
    | Some e, p -> (e, p)
    | None, Some p -> (Exec.of_pool p, Some p)
    | None, None ->
        let p = Scheduler.Pool.default () in
        (Exec.of_pool p, Some p)
  in
  {
    exec;
    pool;
    batch;
    mailbox;
    mutex = Mutex.create ();
    quiescent = Condition.create ();
    in_flight = 0;
    first_error = None;
    next_id = Atomic.make 0;
    stalls = Atomic.make 0;
  }

let pool sys = sys.pool
let executor sys = sys.exec
let stalls sys = Atomic.get sys.stalls

let message_sent sys =
  Mutex.lock sys.mutex;
  sys.in_flight <- sys.in_flight + 1;
  Mutex.unlock sys.mutex

let message_done sys =
  Mutex.lock sys.mutex;
  sys.in_flight <- sys.in_flight - 1;
  if sys.in_flight = 0 then Condition.broadcast sys.quiescent;
  Mutex.unlock sys.mutex

let record_error sys e =
  Mutex.lock sys.mutex;
  if sys.first_error = None then sys.first_error <- Some e;
  Mutex.unlock sys.mutex

type 'm t = {
  sys : system;
  actor_name : string;
  handler : 'm -> unit;
  qmutex : Mutex.t;
  queue : 'm Queue.t;
  (* true when an activation is scheduled or running; protected by
     [qmutex] so the schedule/idle transition and queue emptiness are
     decided atomically. *)
  mutable active : bool;
  (* Thread currently running this actor's handler, if any. Written by
     the activation around each handler call; read by [send] to detect
     a self-send. A racy read is harmless: only the handler's own
     thread can ever observe its own id here. *)
  mutable running_thread : int option;
}

let spawn sys ?name handler =
  let id = Atomic.fetch_and_add sys.next_id 1 in
  let actor_name =
    match name with Some n -> n | None -> Printf.sprintf "actor-%d" id
  in
  {
    sys;
    actor_name;
    handler;
    qmutex = Mutex.create ();
    queue = Queue.create ();
    active = false;
    running_thread = None;
  }

let name a = a.actor_name
let mailbox_length a =
  Mutex.lock a.qmutex;
  let n = Queue.length a.queue in
  Mutex.unlock a.qmutex;
  n

(* Handle up to [sys.batch] messages per pool activation, then yield
   the worker so that long message trains cannot starve other actors.
   The whole run of messages is drained under ONE qmutex acquisition
   (the box invocation pulls a batch, not a message) — per-message
   locking was a measurable share of edge cost on deep pipelines.
   Messages arriving while the batch is being handled (including
   self-sends) are picked up by the re-check at the end. *)
let rec activation a () =
  let self = Thread.id (Thread.self ()) in
  let buf = Queue.create () in
  Mutex.lock a.qmutex;
  let n = min a.sys.batch (Queue.length a.queue) in
  for _ = 1 to n do
    Queue.push (Queue.pop a.queue) buf
  done;
  if n = 0 then a.active <- false;
  let depth = Queue.length a.queue in
  Mutex.unlock a.qmutex;
  if n > 0 then begin
    Obsv.Probe.edge_batch ~name:a.actor_name ~size:n;
    a.running_thread <- Some self;
    Queue.iter
      (fun m ->
        Obsv.Probe.edge_recv ~name:a.actor_name ~depth;
        (try a.handler m with e -> record_error a.sys e);
        message_done a.sys)
      buf;
    a.running_thread <- None;
    (* Yield: hand whatever arrived meanwhile to a fresh activation. *)
    Mutex.lock a.qmutex;
    let more = not (Queue.is_empty a.queue) in
    if not more then a.active <- false;
    Mutex.unlock a.qmutex;
    if more then a.sys.exec.Exec.post (activation a)
  end

(* Credit-based backpressure: a send finding the mailbox at capacity
   does not grow it; the producer parks and repays its debt by
   executing queued activations ([Exec.help]) until the consumer
   drains. Because the unfolded network graph is acyclic and the
   output sinks never block, some helped activation always makes
   progress, so this cannot deadlock. The one cycle — an actor
   sending to itself from its own handler, whose queue only drains
   after that very handler returns — is detected via
   [running_thread] and admitted past the bound. *)
let send a m =
  message_sent a.sys;
  let self = Thread.id (Thread.self ()) in
  let rec try_enqueue stalled =
    Mutex.lock a.qmutex;
    if
      Queue.length a.queue >= a.sys.mailbox
      && a.running_thread <> Some self
    then begin
      Mutex.unlock a.qmutex;
      if not stalled then begin
        ignore (Atomic.fetch_and_add a.sys.stalls 1);
        Obsv.Probe.edge_stall ~name:a.actor_name
      end;
      if not (a.sys.exec.Exec.help ()) then a.sys.exec.Exec.idle ();
      try_enqueue true
    end
    else begin
      Queue.push m a.queue;
      let depth = Queue.length a.queue in
      let need_schedule = not a.active in
      if need_schedule then a.active <- true;
      Mutex.unlock a.qmutex;
      Obsv.Probe.edge_send ~name:a.actor_name ~depth;
      if need_schedule then a.sys.exec.Exec.post (activation a)
    end
  in
  try_enqueue false

let await_quiescence sys =
  (* On an executor without concurrent workers (a zero-domain pool, or
     detcheck's virtual scheduler) the caller must execute the
     activations itself; otherwise it can simply sleep on the
     condition. *)
  if sys.exec.Exec.workers = 0 then begin
    let quiet () =
      Mutex.lock sys.mutex;
      let q = sys.in_flight = 0 in
      Mutex.unlock sys.mutex;
      q
    in
    while not (quiet ()) do
      if not (sys.exec.Exec.help ()) then sys.exec.Exec.idle ()
    done
  end
  else begin
    Mutex.lock sys.mutex;
    while sys.in_flight > 0 do
      Condition.wait sys.quiescent sys.mutex
    done;
    Mutex.unlock sys.mutex
  end;
  let err =
    Mutex.lock sys.mutex;
    let e = sys.first_error in
    Mutex.unlock sys.mutex;
    e
  in
  match err with Some e -> raise e | None -> ()

let pending sys =
  Mutex.lock sys.mutex;
  let n = sys.in_flight in
  Mutex.unlock sys.mutex;
  n

let failure sys =
  Mutex.lock sys.mutex;
  let e = sys.first_error in
  Mutex.unlock sys.mutex;
  e
