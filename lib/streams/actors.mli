(** A lightweight actor layer over a task executor ({!Scheduler.Exec}),
    normally the domain {!Scheduler.Pool}.

    This substitutes for S-Net's LPEL (light-weight parallel execution
    layer): a running network may contain hundreds of box instances
    (the paper bounds its sudoku network at 729 concurrently existing
    boxes), far more than the sensible number of OCaml domains, so each
    component instance becomes an {e actor} — a mailbox plus a
    single-threaded message handler — and actors with pending messages
    are multiplexed over the executor's workers.

    Every scheduling interaction (posting an activation, helping while
    blocked, idling) goes through the system's {!Scheduler.Exec.t}, so
    detcheck can substitute a virtual scheduler that runs the whole
    system single-threaded under a seeded, replayable strategy; the
    production executor is a direct-call wrapper over the pool.

    Guarantees:
    - per-actor FIFO: messages from one sender to one actor are handled
      in send order, and at most one activation of an actor's handler
      runs at a time;
    - quiescence: {!await_quiescence} returns only when every message
      sent into the system has been fully handled (including messages
      sent from inside handlers);
    - containment: an exception escaping a handler is recorded (first
      one wins) and re-raised by {!await_quiescence}; the message is
      still accounted as handled so the system cannot hang;
    - bounded mailboxes: each mailbox holds at most [mailbox] messages.
      A {!send} finding the mailbox full parks the producer, which
      repays its debt by running queued activations until the consumer
      drains — credit-based backpressure instead of unbounded queue
      growth (the S-Net-vs-CnC evaluation attributes S-Net's throughput
      collapse under load to exactly that unbounded buffering). The
      only send admitted past the bound is an actor messaging itself
      from its own handler, whose queue cannot drain until the handler
      returns. *)

type system

val system :
  ?pool:Scheduler.Pool.t ->
  ?exec:Scheduler.Exec.t ->
  ?batch:int ->
  ?mailbox:int ->
  unit ->
  system
(** Actors of this system run on [exec] when given, else on [pool]
    (default {!Scheduler.Pool.default}[ ()]) wrapped as an executor.
    [batch] (default 64) is the maximum number of messages one
    activation handles before yielding its worker — the
    fairness/throughput trade-off measured by the [ablation]
    benchmark. [mailbox] (default 1024, at least 1) bounds every
    actor's queue. *)

val pool : system -> Scheduler.Pool.t option
(** The underlying pool, when the system runs on one ([None] under a
    substituted executor). *)

val executor : system -> Scheduler.Exec.t

val stalls : system -> int
(** Number of sends so far that found a full mailbox and had to park
    (monotonic; each blocked send counts once however long it waits). *)

type 'm t
(** An actor accepting messages of type ['m]. *)

val spawn : system -> ?name:string -> ('m -> unit) -> 'm t
(** Create an actor whose handler is invoked once per message. The
    handler may {!send} to any actor, including itself. *)

val send : 'm t -> 'm -> unit
(** Enqueue a message and schedule the actor. Blocks (helping the
    executor) while the target mailbox is full, except for a handler
    sending to its own actor. *)

val name : 'm t -> string

val mailbox_length : 'm t -> int
(** Racy snapshot of this actor's queued message count; at most the
    system's [mailbox] bound except transiently for self-sends. *)

val await_quiescence : system -> unit
(** Block the calling thread until no message is pending or being
    handled anywhere in the system, then re-raise the first handler
    exception if any occurred. On an executor without concurrent
    workers the caller drives the executor itself ([help]/[idle]), so
    a virtual executor may raise {!Scheduler.Exec.Deadlock} here when
    the system cannot progress. *)

val pending : system -> int
(** Racy snapshot of unprocessed messages across the system. *)

val failure : system -> exn option
(** First handler exception recorded so far, if any. *)
