exception Closed

(* Test-only mutation flag (shared by every instantiation): when set,
   [close] omits the wakeup of senders blocked on a full buffer — the
   seed bug where a producer parked on [not_full] slept through the
   close and hung forever. The detcheck mutation-sanity suite flips it
   to assert that schedule exploration finds the lost wakeup. Never
   set outside that suite. *)
let inject_close_no_wake = ref false

module type S = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  val send : 'a t -> 'a -> unit
  val try_send : 'a t -> 'a -> [ `Ok | `Full | `Closed ]
  val recv : 'a t -> [ `Closed | `Msg of 'a ]
  val recv_batch : 'a t -> max:int -> [ `Closed | `Batch of 'a list ]
  val try_recv : 'a t -> [ `Closed | `Empty | `Msg of 'a ]
  val drain : 'a t -> max:int -> 'a list
  val close : 'a t -> unit
  val is_closed : 'a t -> bool
  val length : 'a t -> int
  val to_list : 'a t -> 'a list
  val peek : 'a t -> 'a list
  val of_list : ?close:bool -> 'a list -> 'a t
end

module Make (P : Scheduler.Platform.S) = struct
  type 'a t = {
    mutex : P.mutex;
    not_empty : P.cond;
    not_full : P.cond;
    queue : 'a Queue.t;
    capacity : int;
    mutable closed : bool;
  }

  let create ?(capacity = 1024) () =
    if capacity < 1 then invalid_arg "Channel.create: capacity < 1";
    {
      mutex = P.mutex_create ();
      not_empty = P.cond_create ();
      not_full = P.cond_create ();
      queue = Queue.create ();
      capacity;
      closed = false;
    }

  let send t v =
    P.lock t.mutex;
    while Queue.length t.queue >= t.capacity && not t.closed do
      P.wait t.not_full t.mutex
    done;
    if t.closed then begin
      P.unlock t.mutex;
      raise Closed
    end;
    Queue.push v t.queue;
    P.signal t.not_empty;
    P.unlock t.mutex

  (* Non-blocking send: a producer that must never park (e.g. an
     engine output callback fanning records out to per-session queues)
     asks instead of waiting, and handles [`Full]/[`Closed] itself. *)
  let try_send t v =
    P.lock t.mutex;
    let r =
      if t.closed then `Closed
      else if Queue.length t.queue >= t.capacity then `Full
      else begin
        Queue.push v t.queue;
        P.signal t.not_empty;
        `Ok
      end
    in
    P.unlock t.mutex;
    r

  let recv t =
    P.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      P.wait t.not_empty t.mutex
    done;
    let r =
      match Queue.take_opt t.queue with
      | Some v ->
          P.signal t.not_full;
          `Msg v
      | None -> `Closed
    in
    P.unlock t.mutex;
    r

  (* Take up to [max] buffered elements under ONE lock acquisition /
     park cycle — the batch-dequeue primitive batched consumers (edge
     pumps, box invocations) amortise their per-record locking with.
     Blocks like [recv] while empty and open; the returned batch is
     never empty. *)
  let take_up_to t max =
    let n = min max (Queue.length t.queue) in
    let rec go k acc =
      if k = 0 then List.rev acc else go (k - 1) (Queue.pop t.queue :: acc)
    in
    let xs = go n [] in
    (* n senders may now proceed *)
    if n > 0 then P.broadcast t.not_full;
    xs

  let recv_batch t ~max =
    if max < 1 then invalid_arg "Channel.recv_batch: max < 1";
    P.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      P.wait t.not_empty t.mutex
    done;
    let r =
      if Queue.is_empty t.queue then `Closed else `Batch (take_up_to t max)
    in
    P.unlock t.mutex;
    r

  let drain t ~max =
    if max < 1 then invalid_arg "Channel.drain: max < 1";
    P.lock t.mutex;
    let xs = take_up_to t max in
    P.unlock t.mutex;
    xs

  let try_recv t =
    P.lock t.mutex;
    let r =
      match Queue.take_opt t.queue with
      | Some v ->
          P.signal t.not_full;
          `Msg v
      | None -> if t.closed then `Closed else `Empty
    in
    P.unlock t.mutex;
    r

  let close t =
    P.lock t.mutex;
    t.closed <- true;
    P.broadcast t.not_empty;
    if not !inject_close_no_wake then P.broadcast t.not_full;
    P.unlock t.mutex

  let is_closed t =
    P.lock t.mutex;
    let c = t.closed in
    P.unlock t.mutex;
    c

  let length t =
    P.lock t.mutex;
    let n = Queue.length t.queue in
    P.unlock t.mutex;
    n

  let peek t =
    P.lock t.mutex;
    let xs = Queue.fold (fun acc v -> v :: acc) [] t.queue in
    P.unlock t.mutex;
    List.rev xs

  let to_list t =
    let rec go acc =
      match recv t with
      | `Msg v -> go (v :: acc)
      | `Closed -> List.rev acc
    in
    go []

  let of_list ?close:(close_it = true) xs =
    (* Leave headroom above the prefill so an unclosed channel stays
       usable without draining first. *)
    let t = create ~capacity:(max 16 (2 * List.length xs)) () in
    List.iter (fun x -> send t x) xs;
    if close_it then close t;
    t
end

include Make (Scheduler.Platform.Os)
