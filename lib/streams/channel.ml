exception Closed

type 'a t = {
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  queue : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
}

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Channel.create: capacity < 1";
  {
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    queue = Queue.create ();
    capacity;
    closed = false;
  }

let send t v =
  Mutex.lock t.mutex;
  while Queue.length t.queue >= t.capacity && not t.closed do
    Condition.wait t.not_full t.mutex
  done;
  if t.closed then begin
    Mutex.unlock t.mutex;
    raise Closed
  end;
  Queue.push v t.queue;
  Condition.signal t.not_empty;
  Mutex.unlock t.mutex

let recv t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.not_empty t.mutex
  done;
  let r =
    match Queue.take_opt t.queue with
    | Some v ->
        Condition.signal t.not_full;
        `Msg v
    | None -> `Closed
  in
  Mutex.unlock t.mutex;
  r

let try_recv t =
  Mutex.lock t.mutex;
  let r =
    match Queue.take_opt t.queue with
    | Some v ->
        Condition.signal t.not_full;
        `Msg v
    | None -> if t.closed then `Closed else `Empty
  in
  Mutex.unlock t.mutex;
  r

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mutex

let is_closed t =
  Mutex.lock t.mutex;
  let c = t.closed in
  Mutex.unlock t.mutex;
  c

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

let to_list t =
  let rec go acc =
    match recv t with
    | `Msg v -> go (v :: acc)
    | `Closed -> List.rev acc
  in
  go []

let of_list ?close:(close_it = true) xs =
  (* Leave headroom above the prefill so an unclosed channel stays
     usable without draining first. *)
  let t = create ~capacity:(max 16 (2 * List.length xs)) () in
  List.iter (fun x -> send t x) xs;
  if close_it then close t;
  t
