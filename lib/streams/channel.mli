(** Bounded blocking FIFO channels.

    These are the edges between a running S-Net network and the outside
    world (the network's global input and output streams): producers
    block when the channel is full, consumers block when it is empty,
    and {!close} lets consumers observe end-of-stream after the buffer
    drains. Internal network edges use actor mailboxes instead
    ({!Actors}).

    Receive results distinguish the three consumer-visible states —
    a message, a transiently empty buffer, and end-of-stream — so
    consumers never have to guess whether a producer is merely slow.

    The implementation is a functor over {!Scheduler.Platform.S} so
    detcheck can run channels on virtual fibers under a controlled,
    replayable scheduler; the top-level values are the OS
    instantiation. *)

exception Closed
(** Raised by [send] on a closed channel (every instantiation raises
    this same exception). *)

val inject_close_no_wake : bool ref
(** Test-only mutation flag, shared by every instantiation: when set,
    [close] skips waking senders blocked on a full buffer — the seed's
    lost-wakeup hang. Never set this outside the detcheck suite. *)

module type S = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  (** [capacity] (default 1024) must be at least 1. *)

  val send : 'a t -> 'a -> unit
  (** Block while full. @raise Closed if the channel was closed (also
      when the close happens while blocked waiting for space). *)

  val try_send : 'a t -> 'a -> [ `Ok | `Full | `Closed ]
  (** Non-blocking send: [`Full] instead of parking, [`Closed] instead
      of raising. For producers that must never block — e.g. an engine
      output callback fanning records out to bounded per-session
      queues, where one full queue must not stall the network. *)

  val recv : 'a t -> [ `Closed | `Msg of 'a ]
  (** Block while empty and open; [`Closed] once the channel is closed
      {e and} drained. Never returns while the buffer is merely
      empty. *)

  val recv_batch : 'a t -> max:int -> [ `Closed | `Batch of 'a list ]
  (** Like {!recv}, but takes up to [max] buffered elements in one
      lock/park cycle. Blocks while empty and open; a returned
      [`Batch] is never empty, and [`Closed] appears only at
      end-of-stream after the buffer drained — so
      [recv_batch ~max:1] is {!recv} with a singleton wrapper.
      @raise Invalid_argument when [max < 1]. *)

  val try_recv : 'a t -> [ `Closed | `Empty | `Msg of 'a ]
  (** Non-blocking receive: [`Empty] when the channel is open but has
      nothing buffered (a slow producer), [`Closed] at
      end-of-stream. *)

  val drain : 'a t -> max:int -> 'a list
  (** Non-blocking batch receive: whatever is buffered, up to [max]
      (possibly nothing). Use {!try_recv} to distinguish an empty open
      channel from end-of-stream.
      @raise Invalid_argument when [max < 1]. *)

  val close : 'a t -> unit
  (** Idempotent. Buffered elements remain receivable; blocked senders
      wake and raise {!Closed}, blocked receivers wake and drain. *)

  val is_closed : 'a t -> bool

  val length : 'a t -> int
  (** Racy snapshot of the buffered element count. *)

  val to_list : 'a t -> 'a list
  (** Receive until end-of-stream; only sensible on a channel that
      will be closed by its producer. *)

  val peek : 'a t -> 'a list
  (** Non-destructive snapshot of the buffered elements, oldest first.
      Consistent (taken under the channel lock) but immediately stale
      against concurrent peers; meant for quiescent-point capture
      (net snapshots of undelivered responses). *)

  val of_list : ?close:bool -> 'a list -> 'a t
  (** A channel pre-filled with the list (capacity is sized with
      headroom above the list), closed afterwards unless
      [~close:false]. The close goes through {!close} so blocked peers
      observe it. *)
end

module Make (P : Scheduler.Platform.S) : S

include S
