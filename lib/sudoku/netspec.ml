let registered = ref false

let register_codecs () =
  if not !registered then begin
    registered := true;
    Dist.Wire.register_nd_int Boxes.board_field;
    Dist.Wire.register_nd_bool Boxes.opts_field
  end

let spec ?(det = false) ?throttle ?cutoff ?side ?shards ?spin name =
  (match name with
  | "fig1" | "fig2" | "fig3" | "ping" | "shard" -> ()
  | _ -> invalid_arg ("Netspec.spec: unknown network " ^ name));
  let b = Buffer.create 32 in
  Buffer.add_string b name;
  if det then Buffer.add_string b ":det";
  let opt k = function
    | None -> ()
    | Some v -> Buffer.add_string b (Printf.sprintf ":%s=%d" k v)
  in
  opt "throttle" throttle;
  opt "cutoff" cutoff;
  opt "side" side;
  opt "shards" shards;
  opt "spin" spin;
  Buffer.contents b

let resolve ?pool s =
  match String.split_on_char ':' s with
  | [] -> failwith "Netspec.resolve: empty spec"
  | name :: opts ->
      let det = ref false in
      let throttle = ref None and cutoff = ref None and side = ref None in
      let shards = ref None and spin = ref None in
      List.iter
        (fun o ->
          match String.index_opt o '=' with
          | None when o = "det" -> det := true
          | None -> failwith (Printf.sprintf "Netspec.resolve: bad option %S" o)
          | Some eq -> (
              let k = String.sub o 0 eq
              and v = String.sub o (eq + 1) (String.length o - eq - 1) in
              let v =
                match int_of_string_opt v with
                | Some v -> v
                | None ->
                    failwith
                      (Printf.sprintf "Netspec.resolve: bad value in %S" o)
              in
              match k with
              | "throttle" -> throttle := Some v
              | "cutoff" -> cutoff := Some v
              | "side" -> side := Some v
              | "shards" -> shards := Some v
              | "spin" -> spin := Some v
              | _ ->
                  failwith (Printf.sprintf "Netspec.resolve: bad option %S" o)))
        opts;
      let det = !det in
      (match (name, !throttle, !cutoff, !side, !shards, !spin) with
      | ("fig1" | "fig2" | "ping"), None, None, None, None, None -> ()
      | ("fig1" | "fig2" | "ping"), _, _, _, _, _ ->
          failwith ("Netspec.resolve: " ^ name ^ " takes no options but det")
      | "fig3", _, _, _, None, None -> ()
      | "fig3", _, _, _, _, _ ->
          failwith "Netspec.resolve: fig3 takes no shards/spin options"
      | "shard", None, None, None, _, _ -> ()
      | "shard", _, _, _, _, _ ->
          failwith "Netspec.resolve: shard takes only shards/spin options"
      | _ -> ());
      (match name with
      | "fig1" -> Networks.fig1 ?pool ~det ()
      | "fig2" -> Networks.fig2 ?pool ~det ()
      | "ping" -> Networks.ping ()
      | "shard" ->
          if det then failwith "Netspec.resolve: shard has no det variant";
          Networks.shard ?shards:!shards ?spin:!spin ()
      | "fig3" ->
          Networks.fig3 ?pool ~det ?throttle:!throttle ?cutoff:!cutoff
            ?side:!side ()
      | other -> failwith ("Netspec.resolve: unknown network " ^ other))
