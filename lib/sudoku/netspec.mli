(** Network specs for distributed sudoku runs.

    {!Dist.Engine_dist.run_spawned} ships only a {e spec string} to the
    worker processes — closures cannot cross a process boundary — and
    both sides must build the very same network from it (they each
    compute the partition locally and have to agree). This module is
    that shared vocabulary: {!spec} renders the coordinator's solver
    configuration to a string, {!resolve} parses it back into a
    network inside the worker. *)

val register_codecs : unit -> unit
(** Register the {!Dist.Wire} codecs for the sudoku field keys
    ([board] as an int array, [opts] as a bool array). Idempotent;
    both coordinator and worker must call it before records travel. *)

val spec :
  ?det:bool ->
  ?throttle:int ->
  ?cutoff:int ->
  ?side:int ->
  ?shards:int ->
  ?spin:int ->
  string ->
  string
(** [spec name] renders a spec string, e.g.
    [spec ~det:true "fig2" = "fig2:det"] or
    [spec ~throttle:4 ~cutoff:40 ~side:9 "fig3" =
     "fig3:throttle=4:cutoff=40:side=9"]. [name] must be [fig1],
    [fig2], [fig3], [ping] (the codec-free load-test network,
    {!Networks.ping}) or [shard] (the replication-on-a-cut-boundary
    network, {!Networks.shard}; takes [shards]/[spin]). *)

val resolve : ?pool:Scheduler.Pool.t -> string -> Snet.Net.t
(** Parse a {!spec} string and build the network.
    @raise Failure on an unknown network name or malformed option. *)
