module Net = Snet.Net
module Filter = Snet.Filter
module Pattern = Snet.Pattern

let done_pattern = Pattern.make ~fields:[] ~tags:[ "done" ] ()

let fig1 ?pool ?det () =
  Net.serial
    (Net.box (Boxes.compute_opts ?pool ()))
    (Net.star ?det (Net.box (Boxes.solve_one_level ?pool ())) done_pattern)

(* [{} -> {<k>=1}] — extends any record with the routing tag; board and
   opts flow-inherit through it. *)
let add_k_filter () =
  Filter.make ~name:"addK"
    (Pattern.make ~fields:[] ~tags:[] ())
    [ [ Filter.Set_tag ("k", Pattern.Const 1) ] ]

let fig2 ?pool ?det () =
  Net.serial_list
    [
      Net.box (Boxes.compute_opts ?pool ());
      Net.filter (add_k_filter ());
      Net.star ?det
        (Net.split ?det (Net.box (Boxes.solve_one_level_k ?pool ())) "k")
        done_pattern;
    ]

let fig3 ?pool ?det ?(throttle = 4) ?(cutoff = 40) ?(side = 9) () =
  if throttle < 1 then invalid_arg "Networks.fig3: throttle < 1";
  if cutoff < 0 || cutoff >= side * side then
    invalid_arg
      (Printf.sprintf "Networks.fig3: cutoff %d outside [0, %d)" cutoff
         (side * side));
  (* [{<k>} -> {<k>=<k>%throttle}] — the paper's throttling filter. *)
  let throttle_filter =
    Filter.make ~name:"throttleK"
      (Pattern.make ~fields:[] ~tags:[ "k" ] ())
      [
        [
          Filter.Set_tag
            ("k", Pattern.Mod (Pattern.Tag "k", Pattern.Const throttle));
        ];
      ]
  in
  let exit =
    Pattern.make ~fields:[] ~tags:[ "level" ]
      ~guard:(Pattern.Cmp (Pattern.Gt, Pattern.Tag "level", Pattern.Const cutoff))
      ()
  in
  Net.serial_list
    [
      Net.box (Boxes.compute_opts ?pool ());
      Net.filter (add_k_filter ());
      Net.star ?det
        (Net.serial
           (Net.filter throttle_filter)
           (Net.split ?det
              (Net.box (Boxes.solve_one_level_level ?pool ()))
              "k"))
        exit;
      Net.box (Boxes.solve_box ?pool ());
    ]

(* A deliberately tiny network for exercising the serving/distribution
   machinery at high request rates: one box, tag-only records (no field
   codecs needed on the wire), a pure arithmetic response. *)
let ping () =
  Net.box
    (Snet.Box.make ~name:"ping" ~input:[ Snet.Box.T "x" ]
       ~outputs:[ [ Snet.Box.T "y" ] ] (fun ~emit -> function
      | [ Snet.Box.Tag x ] -> emit 1 [ Snet.Box.Tag (x + 1) ]
      | _ -> assert false))

(* A three-segment pipeline whose middle segment is a parallel
   replication — the minimal network that puts a [!!] on a cut
   boundary. Tag-only records (no field codecs), deterministic
   arithmetic, so distributed runs diff cleanly against Engine_seq.
   [shards] attaches an [@shards] placement hint to the split segment;
   [spin] adds per-record busy work inside the replicated box (without
   changing its output), so shard replicas have something to win. *)
let shard ?shards ?(spin = 0) () =
  if spin < 0 then invalid_arg "Networks.shard: spin < 0";
  let route =
    Net.box
      (Snet.Box.make ~name:"route" ~input:[ Snet.Box.T "x" ]
         ~outputs:[ [ Snet.Box.T "x"; Snet.Box.T "t" ] ] (fun ~emit -> function
        | [ Snet.Box.Tag x ] ->
            emit 1 [ Snet.Box.Tag x; Snet.Box.Tag (((x mod 8) + 8) mod 8) ]
        | _ -> assert false))
  in
  let work =
    Net.box
      (Snet.Box.make ~name:"work"
         ~input:[ Snet.Box.T "x"; Snet.Box.T "t" ]
         ~outputs:[ [ Snet.Box.T "y"; Snet.Box.T "t" ] ]
         (fun ~emit -> function
        | [ Snet.Box.Tag x; Snet.Box.Tag t ] ->
            let acc = ref x in
            for _ = 1 to spin do
              acc := ((!acc * 1103515245) + 12345) land 0xFFFF
            done;
            ignore (Sys.opaque_identity !acc);
            emit 1 [ Snet.Box.Tag ((3 * x) + 1); Snet.Box.Tag t ]
        | _ -> assert false))
  in
  let merge =
    Net.box
      (Snet.Box.make ~name:"merge"
         ~input:[ Snet.Box.T "y"; Snet.Box.T "t" ]
         ~outputs:[ [ Snet.Box.T "z" ] ] (fun ~emit -> function
        | [ Snet.Box.Tag y; Snet.Box.Tag t ] ->
            emit 1 [ Snet.Box.Tag ((y * 10) + t) ]
        | _ -> assert false))
  in
  Net.serial_list [ route; Net.place ?shards (Net.split work "t"); merge ]

let solved_boards records =
  List.filter_map
    (fun r ->
      match Snet.Record.field "board" r with
      | None -> None
      | Some v ->
          let board = Snet.Value.project_exn Boxes.board_field v in
          if Board.solved board then Some board else None)
    records
