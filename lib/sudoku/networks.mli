(** The three hybrid SaC/S-Net sudoku networks of Section 5.

    Feed records built with {!Boxes.inject_board}; solved boards come
    out as records carrying a [board] field (plus [<done>] for Figs. 1
    and 2, [<k>]/[<level>] for Fig. 3). Because the streaming networks
    perform an exhaustive search, a puzzle with several solutions
    yields several output records, and a puzzle with none yields none —
    unlike the sequential solver, which reports where it got stuck. *)

val fig1 : ?pool:Scheduler.Pool.t -> ?det:bool -> unit -> Snet.Net.t
(** [computeOpts .. (solveOneLevel ** {<done>})] — the serial
    replicator turns the solver's recursion into a pipeline, unfolding
    at most side² replicas deep. *)

val fig2 : ?pool:Scheduler.Pool.t -> ?det:bool -> unit -> Snet.Net.t
(** [computeOpts .. \[{} -> {<k>=1}\] ..
    ((solveOneLevelK !! <k>) ** {<done>})] — full unfolding: up to
    side replicas of the box per pipeline stage. *)

val fig3 :
  ?pool:Scheduler.Pool.t ->
  ?det:bool ->
  ?throttle:int ->
  ?cutoff:int ->
  ?side:int ->
  unit ->
  Snet.Net.t
(** [computeOpts .. \[{} -> {<k>=1}\] ..
    ((\[{<k>} -> {<k>=<k>%throttle}\] .. (solveOneLevelL !! <k>))
      ** ({<level>} | <level> > cutoff)) .. solve] —
    throttled unfolding: at most [throttle] (default 4, the paper's
    choice) split replicas per stage, and the serial replicator is cut
    at [cutoff] placed numbers (default 40, as in the paper) with the
    residual sequential [solve] box finishing partial boards.
    @raise Invalid_argument unless [0 < throttle] and
    [0 <= cutoff < side²] ([side] defaults to 9) — a cutoff at or
    beyond the cell count would loop solved boards forever. *)

val ping : unit -> Snet.Net.t
(** A one-box network answering [{<x>}] with [{<y>=x+1}]. Not from the
    paper: a minimal, codec-free workload for driving the serving and
    distribution layers at high request rates (the [snet_serve] load
    bench and session tests). *)

val shard : ?shards:int -> ?spin:int -> unit -> Snet.Net.t
(** [route .. ((work !! <t>) @shards k) .. merge] — a three-segment
    pipeline with a parallel replication on a cut boundary, the
    reference workload for distributed [!!] sharding and live
    repartitioning. Records are tag-only ([{<x>}] in, [{<z>}] out,
    [z = (3x+1)·10 + (x mod 8)]), so no field codecs are needed on the
    wire and outputs diff deterministically against {!Snet.Engine_seq}.
    [shards] attaches the [@shards] placement hint to the split
    segment (omitted: no hint); [spin] busy-loops that many iterations
    per record inside [work] without changing its output.
    @raise Invalid_argument when [spin < 0]. *)

val solved_boards : Snet.Record.t list -> Board.t list
(** Extract and keep the completed, valid boards of a network run. *)
