(* Aggregated test runner: one suite per module area. *)

let () =
  Alcotest.run "snet_sac"
    [
      ("shape", Test_shape.suite);
      ("nd", Test_nd.suite);
      ("with_loop", Test_with_loop.suite);
      ("builtins", Test_builtins.suite);
      ("scheduler", Test_scheduler.suite);
      ("streams", Test_streams.suite);
      ("record", Test_record.suite);
      ("rectype", Test_rectype.suite);
      ("pattern", Test_pattern.suite);
      ("filter_box", Test_filter_box.suite);
      ("net", Test_net.suite);
      ("optimize", Test_optimize.suite);
      ("sync", Test_sync.suite);
      ("engines", Test_engines.suite);
      ("engine_thread", Test_engine_thread.suite);
      ("trace", Test_trace.suite);
      ("random_nets", Test_random_nets.suite);
      ("detmerge", Test_detmerge.suite);
      ("stress", Test_stress.suite);
      ("coverage", Test_coverage.suite);
      ("source_files", Test_source_files.suite);
      ("lang", Test_lang.suite);
      ("saclang", Test_saclang.suite);
      ("sac_sudoku", Test_sac_sudoku.suite);
      ("sac_check", Test_sac_check.suite);
      ("sac_prelude", Test_sac_prelude.suite);
      ("sudoku", Test_sudoku.suite);
      ("networks", Test_networks.suite);
      ("propagate", Test_propagate.suite);
      ("faults", Test_faults.suite);
      ("obsv", Test_obsv.suite);
      ("jsonx", Test_jsonx.suite);
      ("dist", Test_dist.suite);
      ("elastic", Test_elastic.suite);
      ("serve", Test_serve.suite);
      ("detcheck", Test_detcheck.suite);
      ("durable", Test_durable.suite);
    ]
