(* Seed discipline — one policy for every randomized test in the
   repo:

   - DETCHECK_SEED, if set, wins (the detcheck CI matrix sets it);
   - otherwise QCHECK_SEED (the conventional QCheck variable);
   - otherwise a fresh self-initialised seed.

   Whichever way the seed was obtained it is printed once at startup,
   so any failing run — property test or schedule exploration — is
   reproducible by exporting the printed value. Individual tests must
   not call [Random.self_init] or construct their own ad-hoc
   randomness; they go through {!to_alcotest} / {!state} / {!seed}. *)

let seed =
  let lazy_seed =
    lazy
      (let from_env name =
         Option.bind (Sys.getenv_opt name) (fun s ->
             int_of_string_opt (String.trim s))
       in
       match (from_env "DETCHECK_SEED", from_env "QCHECK_SEED") with
       | Some n, _ ->
           Printf.printf "randomized tests: seed %d (from DETCHECK_SEED)\n%!" n;
           n
       | None, Some n ->
           Printf.printf "randomized tests: seed %d (from QCHECK_SEED)\n%!" n;
           n
       | None, None ->
           Random.self_init ();
           let n = Random.int 0x3FFFFFFF in
           Printf.printf
             "randomized tests: seed %d (export QCHECK_SEED=%d to reproduce)\n%!"
             n n;
           n)
  in
  fun () -> Lazy.force lazy_seed

(* A fresh PRNG per call, derived from the session seed: every
   consumer gets the same stream regardless of how many other tests
   drew from theirs. *)
let state () = Random.State.make [| 0x7e57; seed () |]

let to_alcotest test = QCheck_alcotest.to_alcotest ~rand:(state ()) test
