(* SaC-style builtin array operations. *)

module Nd = Sacarray.Nd
module B = Sacarray.Builtins

let int_nd = Alcotest.testable (Nd.pp Format.pp_print_int) (Nd.equal Int.equal)
let check_nd = Alcotest.check int_nd

let test_iota () =
  check_nd "iota 5" (Nd.vector [ 0; 1; 2; 3; 4 ]) (B.iota 5);
  check_nd "iota 0" (Nd.of_array [| 0 |] [||]) (B.iota 0)

(* The paper's worked example: vector concatenation via with-loops. *)
let test_concat_paper () =
  check_nd "++"
    (Nd.vector [ 1; 2; 3; 4; 5 ])
    (B.concat (Nd.vector [ 1; 2 ]) (Nd.vector [ 3; 4; 5 ]))

let test_concat_matrix () =
  check_nd "axis 0"
    (Nd.matrix [ [ 1; 2 ]; [ 3; 4 ]; [ 5; 6 ] ])
    (B.concat (Nd.matrix [ [ 1; 2 ] ]) (Nd.matrix [ [ 3; 4 ]; [ 5; 6 ] ]));
  Alcotest.(check bool) "shape mismatch" true
    (try ignore (B.concat (Nd.matrix [ [ 1 ] ]) (Nd.matrix [ [ 1; 2 ] ])); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "scalars rejected" true
    (try ignore (B.concat (Nd.scalar 1) (Nd.scalar 2)); false
     with Invalid_argument _ -> true)

let test_take_drop () =
  let v = Nd.vector [ 1; 2; 3; 4; 5 ] in
  check_nd "take 2" (Nd.vector [ 1; 2 ]) (B.take [| 2 |] v);
  check_nd "take -2 (from the end, as in SaC)" (Nd.vector [ 4; 5 ]) (B.take [| -2 |] v);
  check_nd "drop 2" (Nd.vector [ 3; 4; 5 ]) (B.drop [| 2 |] v);
  check_nd "drop -2" (Nd.vector [ 1; 2; 3 ]) (B.drop [| -2 |] v);
  let m = Nd.matrix [ [ 1; 2; 3 ]; [ 4; 5; 6 ] ] in
  check_nd "take [1] keeps remaining axes" (Nd.matrix [ [ 1; 2; 3 ] ]) (B.take [| 1 |] m);
  check_nd "take [1,2]" (Nd.matrix [ [ 1; 2 ] ]) (B.take [| 1; 2 |] m);
  Alcotest.(check bool) "take too much" true
    (try ignore (B.take [| 9 |] v); false with Invalid_argument _ -> true)

let test_tile () =
  let m = Nd.matrix [ [ 1; 2; 3 ]; [ 4; 5; 6 ]; [ 7; 8; 9 ] ] in
  check_nd "inner tile"
    (Nd.matrix [ [ 5; 6 ]; [ 8; 9 ] ])
    (B.tile [| 2; 2 |] [| 1; 1 |] m);
  Alcotest.(check bool) "escape" true
    (try ignore (B.tile [| 2; 2 |] [| 2; 2 |] m); false
     with Invalid_argument _ -> true)

let test_reverse_rotate_shift () =
  let v = Nd.vector [ 1; 2; 3; 4 ] in
  check_nd "reverse" (Nd.vector [ 4; 3; 2; 1 ]) (B.reverse 0 v);
  check_nd "rotate 1" (Nd.vector [ 4; 1; 2; 3 ]) (B.rotate 0 1 v);
  check_nd "rotate -1" (Nd.vector [ 2; 3; 4; 1 ]) (B.rotate 0 (-1) v);
  check_nd "rotate wraps" (B.rotate 0 1 v) (B.rotate 0 5 v);
  check_nd "shift 1" (Nd.vector [ 0; 1; 2; 3 ]) (B.shift 0 1 0 v);
  check_nd "shift -2" (Nd.vector [ 3; 4; 0; 0 ]) (B.shift 0 (-2) 0 v)

let test_transpose () =
  let m = Nd.matrix [ [ 1; 2; 3 ]; [ 4; 5; 6 ] ] in
  check_nd "2d transpose"
    (Nd.matrix [ [ 1; 4 ]; [ 2; 5 ]; [ 3; 6 ] ])
    (B.transpose m);
  check_nd "identity permutation" m (B.transpose ~perm:[| 0; 1 |] m);
  Alcotest.(check bool) "bad permutation" true
    (try ignore (B.transpose ~perm:[| 0; 0 |] m); false
     with Invalid_argument _ -> true)

let test_elementwise () =
  let a = Nd.vector [ 1; 2; 3 ] and b = Nd.vector [ 10; 20; 30 ] in
  check_nd "zipwith" (Nd.vector [ 11; 22; 33 ]) (B.zipwith ( + ) a b);
  check_nd "map" (Nd.vector [ 2; 4; 6 ]) (B.map (fun x -> 2 * x) a);
  let cond = Nd.of_array [| 3 |] [| true; false; true |] in
  check_nd "where" (Nd.vector [ 1; 20; 3 ]) (B.where cond a b)

let test_reductions () =
  let v = Nd.vector [ 3; 1; 4; 1; 5 ] in
  Alcotest.(check int) "sum" 14 (B.sum v);
  Alcotest.(check int) "prod" 60 (B.prod v);
  Alcotest.(check int) "maxval" 5 (B.maxval v);
  Alcotest.(check int) "minval" 1 (B.minval v);
  let bv = Nd.of_array [| 4 |] [| true; false; true; true |] in
  Alcotest.(check int) "count" 3 (B.count bv);
  Alcotest.(check bool) "any" true (B.any bv);
  Alcotest.(check bool) "all" false (B.all bv);
  Alcotest.(check (float 1e-9)) "sum_float" 6.0
    (B.sum_float (Nd.of_array [| 3 |] [| 1.0; 2.0; 3.0 |]));
  Alcotest.(check bool) "maxval empty" true
    (try ignore (B.maxval (B.iota 0)); false with Invalid_argument _ -> true)

let test_axis_ops () =
  let m = Nd.matrix [ [ 1; 2; 3 ]; [ 4; 5; 6 ] ] in
  check_nd "sum along rows" (Nd.vector [ 5; 7; 9 ]) (B.sum_axis ~axis:0 m);
  check_nd "sum along columns" (Nd.vector [ 6; 15 ]) (B.sum_axis ~axis:1 m);
  check_nd "reduce_axis max"
    (Nd.vector [ 4; 5; 6 ])
    (B.reduce_axis ~axis:0 ~neutral:min_int ~combine:max m);
  Alcotest.(check bool) "bad axis" true
    (try ignore (B.sum_axis ~axis:2 m); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "rank 0" true
    (try ignore (B.sum_axis ~axis:0 (Nd.scalar 1)); false
     with Invalid_argument _ -> true)

let test_matmul () =
  let a = Nd.matrix [ [ 1; 2 ]; [ 3; 4 ] ] in
  let b = Nd.matrix [ [ 5; 6 ]; [ 7; 8 ] ] in
  check_nd "2x2 product" (Nd.matrix [ [ 19; 22 ]; [ 43; 50 ] ]) (B.matmul a b);
  let id = Nd.matrix [ [ 1; 0 ]; [ 0; 1 ] ] in
  check_nd "identity" a (B.matmul a id);
  Alcotest.(check bool) "shape mismatch" true
    (try ignore (B.matmul a (Nd.matrix [ [ 1; 2 ] ])); false
     with Invalid_argument _ -> true)

let vec_gen = QCheck.Gen.(list_size (int_range 0 20) (int_range (-50) 50))

let prop_matmul_assoc =
  QCheck.Test.make ~name:"matmul is associative" ~count:30
    (QCheck.make
       QCheck.Gen.(
         let dim = int_range 1 4 in
         quad dim dim dim dim >>= fun (m, k, l, n) ->
         let mat rows cols seed =
           Nd.init [| rows; cols |] (fun iv ->
               ((iv.(0) * 7) + (iv.(1) * 3) + seed) mod 10)
         in
         return (mat m k 1, mat k l 2, mat l n 3)))
    (fun (a, b, c) ->
      Nd.equal Int.equal
        (B.matmul (B.matmul a b) c)
        (B.matmul a (B.matmul b c)))

let prop_sum_axis_total =
  QCheck.Test.make ~name:"sum of sum_axis = total sum" ~count:50
    (QCheck.make QCheck.Gen.(pair (int_range 1 6) (int_range 1 6)))
    (fun (r, c) ->
      let m = Nd.init [| r; c |] (fun iv -> (iv.(0) * 13) + iv.(1)) in
      B.sum (B.sum_axis ~axis:0 m) = B.sum m
      && B.sum (B.sum_axis ~axis:1 m) = B.sum m)

let prop_concat_length =
  QCheck.Test.make ~name:"length (a ++ b) = length a + length b" ~count:100
    (QCheck.make QCheck.Gen.(pair vec_gen vec_gen))
    (fun (a, b) ->
      Nd.size (B.concat (Nd.vector a) (Nd.vector b))
      = List.length a + List.length b)

let prop_concat_assoc =
  QCheck.Test.make ~name:"++ is associative" ~count:100
    (QCheck.make QCheck.Gen.(triple vec_gen vec_gen vec_gen))
    (fun (a, b, c) ->
      let v = Nd.vector in
      Nd.equal Int.equal
        (B.concat (B.concat (v a) (v b)) (v c))
        (B.concat (v a) (B.concat (v b) (v c))))

let prop_take_drop_concat =
  QCheck.Test.make ~name:"take n v ++ drop n v = v" ~count:100
    (QCheck.make
       QCheck.Gen.(
         vec_gen >>= fun xs ->
         int_range 0 (List.length xs) >|= fun n -> (xs, n)))
    (fun (xs, n) ->
      let v = Nd.vector xs in
      List.length xs = 0
      || Nd.equal Int.equal v (B.concat (B.take [| n |] v) (B.drop [| n |] v)))

let prop_reverse_involution =
  QCheck.Test.make ~name:"reverse . reverse = id" ~count:100
    (QCheck.make vec_gen)
    (fun xs ->
      let v = Nd.vector xs in
      Nd.equal Int.equal v (B.reverse 0 (B.reverse 0 v)))

let prop_rotate_sum =
  QCheck.Test.make ~name:"rotate preserves multiset (sum)" ~count:100
    (QCheck.make QCheck.Gen.(pair vec_gen (int_range (-30) 30)))
    (fun (xs, k) ->
      let v = Nd.vector xs in
      B.sum v = B.sum (B.rotate 0 k v))

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose . transpose = id (rank 2)" ~count:50
    (QCheck.make QCheck.Gen.(pair (int_range 1 6) (int_range 1 6)))
    (fun (r, c) ->
      let m = Nd.init [| r; c |] (fun iv -> (17 * iv.(0)) + iv.(1)) in
      Nd.equal Int.equal m (B.transpose (B.transpose m)))

let suite =
  [
    Alcotest.test_case "iota" `Quick test_iota;
    Alcotest.test_case "paper's ++" `Quick test_concat_paper;
    Alcotest.test_case "concat on matrices" `Quick test_concat_matrix;
    Alcotest.test_case "take/drop" `Quick test_take_drop;
    Alcotest.test_case "tile" `Quick test_tile;
    Alcotest.test_case "reverse/rotate/shift" `Quick test_reverse_rotate_shift;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "elementwise" `Quick test_elementwise;
    Alcotest.test_case "reductions" `Quick test_reductions;
    Alcotest.test_case "axis operations" `Quick test_axis_ops;
    Alcotest.test_case "matmul" `Quick test_matmul;
    Seeded.to_alcotest prop_matmul_assoc;
    Seeded.to_alcotest prop_sum_axis_total;
    Seeded.to_alcotest prop_concat_length;
    Seeded.to_alcotest prop_concat_assoc;
    Seeded.to_alcotest prop_take_drop_concat;
    Seeded.to_alcotest prop_reverse_involution;
    Seeded.to_alcotest prop_rotate_sum;
    Seeded.to_alcotest prop_transpose_involution;
  ]
