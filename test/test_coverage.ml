(* Assorted coverage of API surface not central to other suites. *)

module Net = Snet.Net
module Box = Snet.Box
module Record = Snet.Record

let test_stats_pp () =
  let s = Snet.Stats.create () in
  Snet.Stats.record_box_invocation s;
  Snet.Stats.record_emission s 3;
  Snet.Stats.record_star_stage s ~depth:2;
  Snet.Stats.record_star_stage s ~depth:1 (* max stays 2 *);
  let str = Format.asprintf "%a" Snet.Stats.pp (Snet.Stats.snapshot s) in
  Alcotest.(check bool) "renders" true (String.length str > 20);
  Alcotest.(check int) "max depth kept" 2
    (Snet.Stats.snapshot s).Snet.Stats.max_star_depth

let test_net_traversal () =
  let b name =
    Box.make ~name ~input:[ Box.T "x" ] ~outputs:[ [ Box.T "x" ] ]
      (fun ~emit:_ _ -> ())
  in
  let net =
    Net.serial (Net.box (b "a"))
      (Net.star
         (Net.split (Net.box (b "c")) "k")
         (Snet.Pattern.make ~fields:[] ~tags:[ "t" ] ()))
  in
  Alcotest.(check int) "two leaf components" 2 (Net.count_boxes net);
  let nodes = ref 0 in
  Net.iter_components (fun _ -> incr nodes) net;
  Alcotest.(check int) "five nodes" 5 !nodes

let test_value_to_string_fallback () =
  let key = Snet.Value.Key.create "mystery" in
  Alcotest.(check string) "no printer" "<mystery>"
    (Snet.Value.to_string (Snet.Value.inject key 42))

let test_record_compare_structure () =
  let a = Snet.record ~tags:[ ("x", 1) ] () in
  let b = Snet.record ~tags:[ ("x", 1) ] () in
  Alcotest.(check int) "equal structures" 0 (Record.compare_structure a b)

let test_channel_unclosed_of_list () =
  let recv_opt ch =
    match Streams.Channel.recv ch with `Msg v -> Some v | `Closed -> None
  in
  let ch = Streams.Channel.of_list ~close:false [ 1 ] in
  Alcotest.(check bool) "still open" false (Streams.Channel.is_closed ch);
  Alcotest.(check (option int)) "first" (Some 1) (recv_opt ch);
  Streams.Channel.send ch 2;
  Alcotest.(check (option int)) "second" (Some 2) (recv_opt ch)

let test_pool_default_configuration () =
  (* The global default pool is created on first use with the
     configured size. (Other suites may have touched it already, so we
     only check it is usable and stable.) *)
  Scheduler.Pool.set_default_num_domains 1;
  let p1 = Scheduler.Pool.default () in
  let p2 = Scheduler.Pool.default () in
  Alcotest.(check bool) "same pool" true (p1 == p2);
  Alcotest.(check int) "usable" 5 (Scheduler.Pool.run p1 (fun () -> 5))

let test_actor_names () =
  let pool = Scheduler.Pool.create ~num_domains:0 () in
  Fun.protect
    ~finally:(fun () -> Scheduler.Pool.shutdown pool)
    (fun () ->
      let sys = Streams.Actors.system ~pool () in
      let named = Streams.Actors.spawn sys ~name:"watcher" (fun () -> ()) in
      let anon = Streams.Actors.spawn sys (fun () -> ()) in
      Alcotest.(check string) "explicit name" "watcher" (Streams.Actors.name named);
      Alcotest.(check bool) "generated name" true
        (String.length (Streams.Actors.name anon) > 0);
      Alcotest.(check bool) "batch validation" true
        (try ignore (Streams.Actors.system ~pool ~batch:0 ()); false
         with Invalid_argument _ -> true))

let test_thread_engine_observer () =
  let rec_ = Snet.Trace.recorder () in
  let inc =
    Box.make ~name:"inc" ~input:[ Box.T "x" ] ~outputs:[ [ Box.T "x" ] ]
      (fun ~emit -> function
        | [ Tag x ] -> emit 1 [ Tag (x + 1) ]
        | _ -> assert false)
  in
  ignore
    (Snet.Engine_thread.run ~observer:rec_.Snet.Trace.observe (Net.box inc)
       [ Snet.record ~tags:[ ("x", 1) ] () ]);
  Alcotest.(check int) "observed on the thread engine" 1
    (List.length (rec_.Snet.Trace.entries ()))

let test_count_solutions_limit () =
  Alcotest.(check int) "limit respected" 5
    (Sudoku.Solver.count_solutions ~limit:5 (Sudoku.Board.empty 2))

let test_board_of_rows_errors () =
  Alcotest.(check bool) "out of range entry" true
    (try
       ignore
         (Sudoku.Board.of_rows
            [ [ 1; 2; 3; 9 ]; [ 3; 4; 1; 2 ]; [ 2; 1; 4; 3 ]; [ 4; 3; 2; 1 ] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "non-square" true
    (try ignore (Sudoku.Board.of_rows [ [ 1; 2 ]; [ 2; 1 ]; [ 1; 2 ] ]); false
     with Invalid_argument _ -> true)

let test_generator_accessors () =
  let g = Sacarray.With_loop.range ~step:[| 2; 3 |] [| 0; 0 |] [| 4; 9 |] in
  Alcotest.(check int) "rank" 2 (Sacarray.With_loop.generator_rank g);
  Alcotest.(check int) "size" 6 (Sacarray.With_loop.generator_size g)

let test_engine_conc_stats_accessor () =
  let pool = Scheduler.Pool.create ~num_domains:0 () in
  Fun.protect
    ~finally:(fun () -> Scheduler.Pool.shutdown pool)
    (fun () ->
      let inc =
        Box.make ~name:"inc" ~input:[ Box.T "x" ] ~outputs:[ [ Box.T "x" ] ]
          (fun ~emit -> function
            | [ Tag x ] -> emit 1 [ Tag (x + 1) ]
            | _ -> assert false)
      in
      let inst = Snet.Engine_conc.start ~pool (Net.box inc) in
      Snet.Engine_conc.feed inst (Snet.record ~tags:[ ("x", 0) ] ());
      ignore (Snet.Engine_conc.finish inst);
      Alcotest.(check int) "one invocation" 1
        (Snet.Engine_conc.stats inst).Snet.Stats.box_invocations)

let suite =
  [
    Alcotest.test_case "stats pretty-printing" `Quick test_stats_pp;
    Alcotest.test_case "net traversal" `Quick test_net_traversal;
    Alcotest.test_case "value fallback printer" `Quick test_value_to_string_fallback;
    Alcotest.test_case "record structural compare" `Quick test_record_compare_structure;
    Alcotest.test_case "channel of_list unclosed" `Quick test_channel_unclosed_of_list;
    Alcotest.test_case "default pool" `Quick test_pool_default_configuration;
    Alcotest.test_case "actor names and batch" `Quick test_actor_names;
    Alcotest.test_case "thread-engine observer" `Quick test_thread_engine_observer;
    Alcotest.test_case "count_solutions limit" `Quick test_count_solutions_limit;
    Alcotest.test_case "board construction errors" `Quick test_board_of_rows_errors;
    Alcotest.test_case "generator accessors" `Quick test_generator_accessors;
    Alcotest.test_case "engine_conc stats accessor" `Quick test_engine_conc_stats_accessor;
  ]
