(* The deterministic concurrency-testing subsystem, tested on itself:
   virtual time, seeded schedule exploration, byte-for-byte replay,
   the schedule-exploring differential oracle, and mutation sanity
   (reintroduced known-fixed bugs must be found within a bounded
   schedule budget — and must NOT fire when the fix is in place). *)

module Sv = Detcheck.Sched_virtual
module Strategy = Detcheck.Strategy
module Trace = Detcheck.Trace
module Netgen = Detcheck.Netgen
module Oracle = Detcheck.Oracle

let base_seed () = Seeded.seed () land 0xFFFF

let ok_exn = function
  | Ok v -> v
  | Error e -> raise e

(* --- virtual time ------------------------------------------------ *)

(* An hour of Clock.sleep costs nothing and advances the virtual clock
   exactly — the mechanism that debounces timeout/backoff paths in
   every other suite. *)
let test_virtual_clock () =
  let res, trace =
    Sv.run
      ~strategy:(Strategy.random ~seed:0)
      (fun sched ->
        let t0 = Scheduler.Clock.now () in
        Scheduler.Clock.sleep 3600.;
        let t1 = Scheduler.Clock.now () in
        (t0, t1, Sv.now sched))
  in
  let t0, t1, sched_now = ok_exn res in
  Alcotest.(check (float 1e-9)) "starts at zero" 0. t0;
  Alcotest.(check (float 1e-9)) "sleep advances exactly" 3600. t1;
  Alcotest.(check (float 1e-9)) "scheduler clock agrees" 3600. sched_now;
  Alcotest.(check bool) "single fiber: no recorded choices" true (trace = [])

(* Timers interleave with fibers deterministically: two sleepers wake
   in deadline order regardless of spawn order. *)
let test_timer_order () =
  let res, _ =
    Sv.run
      ~strategy:(Strategy.random ~seed:1)
      (fun _ ->
        let log = ref [] in
        let t1 =
          Sv.Platform.spawn (fun () ->
              Scheduler.Clock.sleep 5.;
              log := "late" :: !log)
        in
        let t2 =
          Sv.Platform.spawn (fun () ->
              Scheduler.Clock.sleep 2.;
              log := "early" :: !log)
        in
        Sv.Platform.join t1;
        Sv.Platform.join t2;
        List.rev !log)
  in
  Alcotest.(check (list string)) "deadline order" [ "early"; "late" ]
    (ok_exn res)

(* --- platform primitives on fibers ------------------------------- *)

let test_mutex_fibers () =
  let res, _ =
    Sv.run
      ~strategy:(Strategy.random ~seed:(base_seed ()))
      (fun _ ->
        let m = Sv.Platform.mutex_create () in
        let counter = ref 0 in
        let bump () =
          for _ = 1 to 100 do
            Sv.Platform.lock m;
            let v = !counter in
            Sv.Platform.relax ();
            (* a schedule point inside the critical section *)
            counter := v + 1;
            Sv.Platform.unlock m
          done
        in
        let ts = List.init 4 (fun _ -> Sv.Platform.spawn bump) in
        List.iter Sv.Platform.join ts;
        !counter)
  in
  Alcotest.(check int) "mutex serialises fibers" 400 (ok_exn res)

let test_channel_on_fibers () =
  let res, _ =
    Sv.run
      ~strategy:(Strategy.random ~seed:(base_seed () + 1))
      (fun _ ->
        let module Ch = Streams.Channel.Make (Sv.Platform) in
        let ch = Ch.create ~capacity:3 () in
        let producer =
          Sv.Platform.spawn (fun () ->
              for i = 1 to 20 do
                Ch.send ch i
              done;
              Ch.close ch)
        in
        let got = Ch.to_list ch in
        Sv.Platform.join producer;
        got)
  in
  Alcotest.(check (list int))
    "FIFO through a bounded channel under fiber scheduling"
    (List.init 20 (fun i -> i + 1))
    (ok_exn res)

(* The batch-flush vs Eof race, pinned under the virtual scheduler: a
   producer pushes a run of records and closes; a consumer drains with
   [recv_batch]. Whatever interleaving the strategy picks — close
   racing a partially-filled batch, close landing between two drains,
   the consumer parking just before the close — every record must come
   out exactly once, in order, before [`Closed] is observed. This is
   the channel-level shape of the cut-edge pump's "flush pending, then
   Eof" step. *)
let test_batch_flush_vs_close () =
  for seed = 0 to 19 do
    let res, _ =
      Sv.run
        ~strategy:(Strategy.random ~seed:(base_seed () + seed))
        (fun _ ->
          let module Ch = Streams.Channel.Make (Sv.Platform) in
          let ch = Ch.create ~capacity:4 () in
          let producer =
            Sv.Platform.spawn (fun () ->
                for i = 1 to 17 do
                  Ch.send ch i
                done;
                Ch.close ch)
          in
          let got = ref [] in
          let batches = ref [] in
          let rec drain () =
            match Ch.recv_batch ch ~max:8 with
            | `Closed -> ()
            | `Batch ms ->
                batches := List.length ms :: !batches;
                got := !got @ ms;
                drain ()
          in
          drain ();
          Sv.Platform.join producer;
          (!got, !batches))
    in
    let got, batches = ok_exn res in
    Alcotest.(check (list int))
      (Printf.sprintf "all records, in order, before Closed (seed %d)" seed)
      (List.init 17 (fun i -> i + 1))
      got;
    Alcotest.(check bool)
      (Printf.sprintf "batch sizes within bound (seed %d)" seed)
      true
      (List.for_all (fun n -> n >= 1 && n <= 8) batches)
  done

(* --- determinism and replay -------------------------------------- *)

let nondet_spec () = Netgen.of_seed Nondet (base_seed ())

(* A fixed spec with enough records and components that every explored
   schedule has nontrivial choice points (the generated [nondet_spec]
   can shrink to a single box on one record, whose schedule is fully
   forced). *)
let replay_spec =
  {
    Netgen.klass = Nondet;
    sync_prefix = false;
    body = Netgen.(Choice (Serial (Leaf Inc, Leaf Double), Leaf Dup));
    inputs = [ (1, 0); (2, 1); (3, 2); (4, 3); (5, 0); (6, 1); (7, 2); (8, 3) ];
  }

let test_seed_determinism () =
  let spec = nondet_spec () in
  let run () =
    Oracle.run_once ~strategy:(Strategy.random ~seed:(base_seed () + 7)) spec
  in
  let r1, t1 = run () in
  let r2, t2 = run () in
  Alcotest.(check string) "same seed, same output" (ok_exn r1) (ok_exn r2);
  Alcotest.(check string) "same seed, same trace" (Trace.to_string t1)
    (Trace.to_string t2)

let test_replay_byte_for_byte () =
  let spec = replay_spec in
  let explored, trace =
    Oracle.run_once ~strategy:(Strategy.pct ~seed:(base_seed () + 3) ()) spec
  in
  let replayed, trace' = Oracle.replay ~trace spec in
  Alcotest.(check bool) "explored a nontrivial schedule" true
    (Trace.length trace > 0);
  Alcotest.(check string) "replay reproduces the output" (ok_exn explored)
    (ok_exn replayed);
  Alcotest.(check string) "replay reproduces the trace byte-for-byte"
    (Trace.to_string trace) (Trace.to_string trace')

let test_replay_divergence () =
  let spec = replay_spec in
  let _, trace =
    Oracle.run_once ~strategy:(Strategy.random ~seed:(base_seed () + 4)) spec
  in
  (* A truncated trace no longer matches the run: replay must refuse
     loudly, never silently pick a different schedule. *)
  let truncated = List.filteri (fun i _ -> i < Trace.length trace / 2) trace in
  if truncated = trace then ()
  else
    match Oracle.replay ~trace:truncated spec with
    | Error (Strategy.Divergence _), _ -> ()
    | Ok _, _ -> Alcotest.fail "truncated trace replayed without divergence"
    | Error e, _ -> raise e

let test_trace_roundtrip () =
  let t =
    [
      { Trace.tag = "fiber"; arity = 3; choice = 1 };
      { Trace.tag = "task"; arity = 2; choice = 0 };
      { Trace.tag = "fiber"; arity = 7; choice = 6 };
    ]
  in
  (match Trace.of_string (Trace.to_string t) with
  | Ok t' -> Alcotest.(check bool) "roundtrip" true (t = t')
  | Error e -> Alcotest.fail e);
  match Trace.of_string "fiber:banana:0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed trace accepted"

(* --- schedule-exploring differential oracle ---------------------- *)

(* The acceptance bar: >= 100 explored schedules per network class,
   spread over several generated networks, every one agreeing with
   the sequential reference. *)
let test_explore klass () =
  let seed = base_seed () in
  let specs = List.init 4 (fun i -> (seed + i, Netgen.of_seed klass (seed + i))) in
  let total =
    List.fold_left
      (fun acc (net_seed, spec) ->
        match Oracle.check ~schedules:30 ~net_seed ~seed:net_seed spec with
        | Ok n -> acc + n
        | Error f -> Alcotest.failf "%s" (Oracle.pp_failure f))
      0 specs
  in
  Alcotest.(check bool)
    (Printf.sprintf "explored %d schedules (>= 100) for %s nets" total
       (Netgen.klass_to_string klass))
    true (total >= 100)

(* Supervision attributes under exploration: a network built from
   every failing leaf (error records, retry exhaustion + backoff,
   timeout overruns) still agrees with the reference on every
   schedule, and the retry backoffs run on virtual time. *)
let test_explore_supervision () =
  let spec =
    {
      Netgen.klass = Det;
      sync_prefix = false;
      body =
        Netgen.Serial
          ( Leaf Flaky_retry,
            Serial (Leaf Sluggish, Serial (Leaf Flaky_record, Leaf Inc)) );
      inputs = [ (0, 0); (3, 1); (4, 2); (5, 0); (7, 3); (15, 1) ];
    }
  in
  match Oracle.check ~schedules:20 ~seed:(base_seed () + 11) spec with
  | Ok _ -> ()
  | Error f -> Alcotest.failf "%s" (Oracle.pp_failure f)

(* --- mutation sanity --------------------------------------------- *)

(* Lost wakeup on close (the seed bug PR 2 fixed): close wakes blocked
   receivers but, under the mutation, not blocked senders. Whether a
   sender is parked at close time depends on the schedule, so this is
   a genuine exploration target: detcheck must find a deadlocking
   schedule within a bounded seed budget, and must find none with the
   fix in place. *)
let channel_close_scenario () =
  let module Ch = Streams.Channel.Make (Sv.Platform) in
  let ch = Ch.create ~capacity:1 () in
  let producer =
    Sv.Platform.spawn (fun () ->
        try
          for i = 1 to 3 do
            Ch.send ch i
          done
        with Streams.Channel.Closed -> ())
  in
  (match Ch.recv ch with `Msg _ -> () | `Closed -> ());
  (* A modeled preemption point between the consumer's last receive
     and the close — the window in which the original OS-thread bug
     bit. Fibers only switch at explicit points, so without it the
     producer could never park inside this window and the lost wakeup
     would be unreachable by construction. *)
  Sv.Platform.relax ();
  Ch.close ch;
  Sv.Platform.join producer

let count_deadlocks ~seeds scenario =
  let found = ref 0 in
  for s = 0 to seeds - 1 do
    let res, _ = Sv.run ~strategy:(Strategy.random ~seed:s) scenario in
    match res with
    | Error (Scheduler.Exec.Deadlock _) -> incr found
    | Error e -> raise e
    | Ok _ -> ()
  done;
  !found

let test_mutation_channel_close () =
  let with_flag v f =
    Streams.Channel.inject_close_no_wake := v;
    Fun.protect ~finally:(fun () -> Streams.Channel.inject_close_no_wake := false) f
  in
  let buggy =
    with_flag true (fun () ->
        count_deadlocks ~seeds:25 (fun _ -> channel_close_scenario ()))
  in
  let fixed =
    with_flag false (fun () ->
        count_deadlocks ~seeds:25 (fun _ -> channel_close_scenario ()))
  in
  Alcotest.(check bool)
    (Printf.sprintf "close-no-wake found within 25 schedules (hit %d)" buggy)
    true (buggy > 0);
  Alcotest.(check int) "fixed close never deadlocks" 0 fixed

(* The Fifo_pool seed bug: parallel_for_reduce awaiting its helpers
   with a blocking (double) Latch.await instead of helping to drain
   the queue. With one worker running a nested reduce, the helper
   chunk starves in the FIFO behind the awaiting participant. *)
let fifo_reduce_scenario () =
  let module F = Scheduler.Future.Make (Sv.Platform) in
  let module FP = Scheduler.Fifo_pool.Make (Sv.Platform) (F) in
  let pool = FP.create ~num_domains:1 () in
  let fut =
    FP.async pool (fun () ->
        FP.parallel_for_reduce pool ~chunk:1 ~lo:0 ~hi:4 ~combine:( + )
          ~init:0
          (fun i -> i))
  in
  let v = F.await fut in
  FP.shutdown pool;
  v

let test_mutation_fifo_double_await () =
  let with_flag v f =
    Scheduler.Fifo_pool.inject_double_await := v;
    Fun.protect
      ~finally:(fun () -> Scheduler.Fifo_pool.inject_double_await := false)
      f
  in
  let run_one seed =
    let res, _ =
      Sv.run ~strategy:(Strategy.random ~seed) (fun _ -> fifo_reduce_scenario ())
    in
    res
  in
  with_flag true (fun () ->
      match run_one 0 with
      | Error (Scheduler.Exec.Deadlock msg) ->
          Alcotest.(check bool) "deadlock report names blocked fibers" true
            (String.length msg > 0)
      | Ok v -> Alcotest.failf "double await did not deadlock (got %d)" v
      | Error e -> raise e);
  with_flag false (fun () ->
      for s = 0 to 9 do
        match run_one s with
        | Ok v -> Alcotest.(check int) "reduce result" 6 v
        | Error e -> raise e
      done)

(* --- deadlock reporting ------------------------------------------ *)

let test_deadlock_report () =
  let res, _ =
    Sv.run
      ~strategy:(Strategy.random ~seed:0)
      (fun _ ->
        let m1 = Sv.Platform.mutex_create () in
        let m2 = Sv.Platform.mutex_create () in
        Sv.Platform.lock m1;
        let t =
          Sv.Platform.spawn (fun () ->
              Sv.Platform.lock m2;
              Sv.Platform.lock m1 (* blocks forever: m1 held by main *))
        in
        Sv.Platform.lock m2;
        (* blocks forever: m2 held by t *)
        Sv.Platform.join t)
  in
  match res with
  | Error (Scheduler.Exec.Deadlock msg) ->
      Alcotest.(check bool) "report lists blocked fibers" true
        (String.length msg > 0
        && String.index_opt msg ':' <> None)
  | Ok () -> Alcotest.fail "lock cycle did not deadlock"
  | Error e -> raise e

(* A lone fiber yielding forever is a livelock, not a deadlock: the
   step budget must end the run. *)
let test_budget () =
  let res, _ =
    Sv.run ~budget:1000
      ~strategy:(Strategy.random ~seed:0)
      (fun _ ->
        while true do
          Sv.Platform.relax ()
        done)
  in
  match res with
  | Error (Sv.Budget_exhausted _) -> ()
  | Ok _ -> assert false
  | Error e -> raise e

let suite =
  [
    Alcotest.test_case "virtual clock advances without waiting" `Quick
      test_virtual_clock;
    Alcotest.test_case "timers fire in deadline order" `Quick test_timer_order;
    Alcotest.test_case "virtual mutex serialises fibers" `Quick
      test_mutex_fibers;
    Alcotest.test_case "batch flush vs close race (scheduled)" `Quick
      test_batch_flush_vs_close;
    Alcotest.test_case "bounded channel on virtual fibers" `Quick
      test_channel_on_fibers;
    Alcotest.test_case "same seed => same schedule and output" `Quick
      test_seed_determinism;
    Alcotest.test_case "trace replay is byte-for-byte" `Quick
      test_replay_byte_for_byte;
    Alcotest.test_case "replay detects divergence" `Quick
      test_replay_divergence;
    Alcotest.test_case "trace round-trips through text" `Quick
      test_trace_roundtrip;
    Alcotest.test_case "oracle: >= 100 schedules on det nets" `Slow
      (test_explore Netgen.Det);
    Alcotest.test_case "oracle: >= 100 schedules on nondet nets" `Slow
      (test_explore Netgen.Nondet);
    Alcotest.test_case "oracle: supervision attributes explored" `Quick
      test_explore_supervision;
    Alcotest.test_case "mutation: channel close-no-wake is found" `Quick
      test_mutation_channel_close;
    Alcotest.test_case "mutation: fifo double-await is found" `Quick
      test_mutation_fifo_double_await;
    Alcotest.test_case "deadlocks are reported with blocked fibers" `Quick
      test_deadlock_report;
    Alcotest.test_case "step budget ends livelocks" `Quick test_budget;
  ]
