(* Distribution layer: wire format round-trips and corruption
   detection, the coordinator protocol codec, partitioning, transports,
   and differential runs of the partitioned engine against the
   sequential reference. Everything here is hermetic (loopback
   transport, in-process worker threads); the TCP transport cases are
   skipped unless SNET_DIST_TCP=1 (the @dist-smoke tier sets it — real
   sockets don't belong in tier-1). *)

module Wire = Dist.Wire
module Proto = Dist.Proto
module Transport = Dist.Transport
module Engine_dist = Dist.Engine_dist
module Record = Snet.Record
module Value = Snet.Value
module Nd = Sacarray.Nd

(* Test-local keys, registered once. [Netspec.register_codecs] covers
   the sudoku board/opts keys used by the differential tests. *)
let nd_int_key : int Nd.t Value.Key.key = Value.Key.create "test.ndi"
let nd_bool_key : bool Nd.t Value.Key.key = Value.Key.create "test.ndb"

let () =
  Wire.register_nd_int nd_int_key;
  Wire.register_nd_bool nd_bool_key;
  Sudoku.Netspec.register_codecs ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Structural record equality via the canonical encoding: equal
   records render to identical frames, so byte equality of frames is
   exactly deep equality (Record.equal compares field payloads by
   physical identity, useless across a codec round-trip). *)
let frame_eq a b = String.equal (Wire.render a) (Wire.render b)

let multiset_eq outs1 outs2 =
  let key rs = List.sort compare (List.map Wire.render rs) in
  key outs1 = key outs2

(* ------------------------------------------------------------------ *)
(* Wire: fixed cases                                                   *)

let test_crc32 () =
  (* The standard check value for CRC-32/IEEE. *)
  Alcotest.(check int32) "check vector" 0xCBF43926l (Wire.crc32 "123456789")

let test_roundtrip_simple () =
  let r =
    Record.of_list
      ~fields:
        [
          ("n", Value.of_int 42);
          ("s", Value.inject Wire.string_key "hello \x00 world");
          ("x", Value.inject Wire.float_key 3.25);
          ("a", Value.inject nd_int_key (Nd.matrix [ [ 1; 2 ]; [ 3; 4 ] ]));
        ]
      ~tags:[ ("k", 3); ("done", 0); ("neg", -7) ]
  in
  match Wire.read (Wire.render r) with
  | Error e -> Alcotest.failf "read failed: %s" e
  | Ok r' ->
      Alcotest.(check bool) "frames equal" true (frame_eq r r');
      Alcotest.(check (option int)) "int field" (Some 42)
        (Option.bind (Record.field "n" r') Value.to_int);
      Alcotest.(check (option string))
        "string field"
        (Some "hello \x00 world")
        (Option.bind (Record.field "s" r') (Value.project Wire.string_key));
      Alcotest.(check (option int)) "tag" (Some (-7)) (Record.tag "neg" r');
      let a =
        Option.get
          (Option.bind (Record.field "a" r') (Value.project nd_int_key))
      in
      Alcotest.(check bool) "nd payload" true
        (Nd.equal Int.equal a (Nd.matrix [ [ 1; 2 ]; [ 3; 4 ] ]))

let test_empty_record () =
  let r = Record.of_list ~fields:[] ~tags:[] in
  match Wire.read (Wire.render r) with
  | Ok r' -> Alcotest.(check bool) "empty" true (frame_eq r r')
  | Error e -> Alcotest.failf "read failed: %s" e

let test_error_record_travels () =
  let input = Record.of_list ~fields:[] ~tags:[ ("k", 1) ] in
  let e =
    Snet.Supervise.error_record ~box:"boom" ~input (Failure "db on fire")
  in
  match Wire.read (Wire.render e) with
  | Error m -> Alcotest.failf "read failed: %s" m
  | Ok e' ->
      Alcotest.(check bool) "still an error" true (Snet.Supervise.is_error e');
      Alcotest.(check (option string))
        "origin" (Some "boom")
        (Snet.Supervise.error_origin e');
      Alcotest.(check bool) "message survives" true
        (match Snet.Supervise.error_message e' with
        | Some m -> contains m "db on fire"
        | None -> false)

let test_unencodable () =
  let rogue : unit Value.Key.key = Value.Key.create "test.unregistered" in
  let r =
    Record.of_list ~fields:[ ("f", Value.inject rogue ()) ] ~tags:[]
  in
  Alcotest.(check bool) "raises Unencodable" true
    (try
       ignore (Wire.render r);
       false
     with Wire.Unencodable _ -> true)

let test_validate_and_garbage () =
  let r = Record.of_list ~fields:[ ("n", Value.of_int 1) ] ~tags:[ ("t", 2) ] in
  let f = Wire.render r in
  (match Wire.validate f with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e);
  let bad s =
    match Wire.read s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted a bad frame (%d bytes)" (String.length s)
  in
  bad "";
  bad "SNRW";
  bad ("XXXX" ^ String.sub f 4 (String.length f - 4));
  (* version bump *)
  let b = Bytes.of_string f in
  Bytes.set b 4 '\x7f';
  bad (Bytes.to_string b);
  (* trailing bytes *)
  bad (f ^ "\x00")

(* ------------------------------------------------------------------ *)
(* Wire: properties                                                    *)

let gen_record =
  let open QCheck.Gen in
  let label = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  let nd_int =
    int_range 0 3 >>= fun rank ->
    list_repeat rank (int_range 0 3) >>= fun dims ->
    let shape = Array.of_list dims in
    let size = Array.fold_left ( * ) 1 shape in
    list_repeat size (int_range (-1000) 1000) >>= fun elems ->
    return (Value.inject nd_int_key (Nd.of_array shape (Array.of_list elems)))
  in
  let nd_bool =
    int_range 0 2 >>= fun rank ->
    list_repeat rank (int_range 0 4) >>= fun dims ->
    let shape = Array.of_list dims in
    let size = Array.fold_left ( * ) 1 shape in
    list_repeat size bool >>= fun elems ->
    return (Value.inject nd_bool_key (Nd.of_array shape (Array.of_list elems)))
  in
  let value =
    oneof
      [
        map Value.of_int int;
        map (Value.inject Wire.string_key) (string_size (int_range 0 40));
        map (Value.inject Wire.float_key) float;
        nd_int;
        nd_bool;
      ]
  in
  list_size (int_range 0 5) (pair label value) >>= fun fields ->
  list_size (int_range 0 5) (pair label int) >>= fun tags ->
  let r = Record.of_list ~fields ~tags in
  bool >>= fun stamp ->
  if stamp then
    return (Snet.Supervise.error_record ~box:"qc" ~input:r (Failure "qc"))
  else return r

let arb_record =
  QCheck.make ~print:(fun r -> Record.to_string r) gen_record

let prop_roundtrip =
  QCheck.Test.make ~name:"wire round-trip: read (render r) = r" ~count:300
    arb_record (fun r ->
      match Wire.read (Wire.render r) with
      | Error e -> QCheck.Test.fail_reportf "read failed: %s" e
      | Ok r' ->
          (* Canonical: the re-render must be byte-identical, and the
             projected payloads must match deeply. *)
          frame_eq r r'
          && List.for_all2
               (fun (l1, _) (l2, _) -> String.equal l1 l2)
               (Record.fields r) (Record.fields r')
          && Record.tags r = Record.tags r')

let prop_corruption =
  QCheck.Test.make ~name:"wire: corrupt/truncated frames rejected" ~count:300
    (QCheck.pair arb_record (QCheck.make QCheck.Gen.(pair pint pint)))
    (fun (r, (pos_seed, byte_seed)) ->
      let f = Wire.render r in
      let n = String.length f in
      (* Flip one byte to a guaranteed-different value... *)
      let pos = pos_seed mod n in
      let b = Bytes.of_string f in
      let old = Char.code (Bytes.get b pos) in
      Bytes.set b pos (Char.chr ((old + 1 + (byte_seed mod 255)) mod 256));
      let mutated = Bytes.to_string b in
      let mutated_rejected =
        String.equal mutated f
        ||
        match Wire.read mutated with Error _ -> true | Ok _ -> false
      in
      (* ...and cut the frame short anywhere. *)
      let truncated_rejected =
        match Wire.read (String.sub f 0 (pos_seed mod n)) with
        | Error _ -> true
        | Ok _ -> false
      in
      mutated_rejected && truncated_rejected)

(* ------------------------------------------------------------------ *)
(* Proto                                                               *)

let test_proto_roundtrip () =
  let r = Record.of_list ~fields:[ ("n", Value.of_int 9) ] ~tags:[ ("k", 1) ] in
  let msgs =
    [
      Proto.Hello
        {
          spec = "fig2:det";
          part = 1;
          parts = 4;
          policy = "retry:3";
          timeout = Some 1.5;
          credits = 32;
          crash_after = -1;
          crash_flush = true;
          batch = 16;
          obsv = 3;
          coord_pid = 12345;
          (* 1 + 2 + 1 partitions: must agree with [parts] above, or
             decode (correctly) rejects the Hello. *)
          plan = "0,1!2,2-3";
        };
      Proto.Hello_ack { part = 1 };
      Proto.Data r;
      Proto.Data_batch [ r; r ];
      Proto.Credit 7;
      Proto.Eof;
      Proto.Done;
      Proto.Crash "it broke";
      Proto.Shutdown;
      Proto.Metrics_report { part = 2; payload = String.make 70000 '\x42' };
      Proto.Trace_chunk { part = 0; payload = "\x00\xff trace bytes" };
    ]
  in
  List.iter
    (fun m ->
      match Proto.decode (Proto.encode m) with
      | Error e -> Alcotest.failf "%s: %s" (Proto.to_string m) e
      | Ok m' -> (
          match (m, m') with
          | Proto.Data a, Proto.Data b ->
              Alcotest.(check bool) "data round-trip" true (frame_eq a b)
          | Proto.Data_batch a, Proto.Data_batch b ->
              Alcotest.(check bool) "batch round-trip" true
                (List.length a = List.length b && List.for_all2 frame_eq a b)
          | ( Proto.Metrics_report { part = pa; payload = ya },
              Proto.Metrics_report { part = pb; payload = yb } )
          | ( Proto.Trace_chunk { part = pa; payload = ya },
              Proto.Trace_chunk { part = pb; payload = yb } ) ->
              (* Payloads are opaque (and may exceed the u16 string
                 cap): compare the bytes, not the rendering. *)
              Alcotest.(check int) "payload part" pa pb;
              Alcotest.(check bool) "payload bytes" true (String.equal ya yb)
          | _ ->
              Alcotest.(check string) "round-trip" (Proto.to_string m)
                (Proto.to_string m')))
    msgs;
  (match Proto.decode "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty message accepted");
  match Proto.decode (String.sub (Proto.encode (Proto.Crash "xyz")) 0 2) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated message accepted"

(* A Data_batch envelope must carry exactly the records that N
   individual Data frames would: same multiset after decode, and any
   truncation or byte flip of the envelope is rejected (the per-frame
   CRC plus envelope length checks leave no silently-corruptible
   region). *)
let prop_batch_envelope =
  QCheck.Test.make ~name:"proto: Data_batch = N x Data (and corruption rejected)"
    ~count:150
    (QCheck.pair
       (QCheck.list_of_size QCheck.Gen.(int_range 1 8) arb_record)
       (QCheck.make QCheck.Gen.(pair pint pint)))
    (fun (rs, (pos_seed, byte_seed)) ->
      let enc = Proto.encode (Proto.Data_batch rs) in
      let decoded =
        match Proto.decode enc with
        | Ok (Proto.Data_batch rs') -> rs'
        | Ok (Proto.Data r) -> [ r ]
        | Ok m ->
            QCheck.Test.fail_reportf "unexpected decode: %s" (Proto.to_string m)
        | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
      in
      let singles =
        List.map
          (fun r ->
            match Proto.decode (Proto.encode (Proto.Data r)) with
            | Ok (Proto.Data r') -> r'
            | _ -> QCheck.Test.fail_reportf "single Data decode failed")
          rs
      in
      let same = multiset_eq decoded singles in
      let n = String.length enc in
      (* Truncate anywhere strictly inside the envelope... *)
      let cut = pos_seed mod n in
      let truncated_rejected =
        match Proto.decode (String.sub enc 0 cut) with
        | Error _ -> true
        | Ok (Proto.Data_batch rs') -> not (multiset_eq rs' decoded)
        | Ok _ -> false
      in
      (* ...and flip one byte past the kind tag (flipping the kind
         byte may legitimately decode as another message kind). *)
      let pos = 1 + (pos_seed mod (n - 1)) in
      let b = Bytes.of_string enc in
      let old = Char.code (Bytes.get b pos) in
      Bytes.set b pos (Char.chr ((old + 1 + (byte_seed mod 255)) mod 256));
      let mutated = Bytes.to_string b in
      let mutated_rejected =
        String.equal mutated enc
        ||
        match Proto.decode mutated with
        | Error _ -> true
        | Ok (Proto.Data_batch rs') -> not (multiset_eq rs' decoded)
        | Ok _ -> false
      in
      same && truncated_rejected && mutated_rejected)

(* ------------------------------------------------------------------ *)
(* Partitioning                                                        *)

let test_partition () =
  let net = Sudoku.Networks.fig3 () in
  let total = Snet.Net.count_boxes net in
  for parts = 1 to 6 do
    let ps = Engine_dist.partition ~parts net in
    Alcotest.(check bool)
      (Printf.sprintf "parts<=%d" parts)
      true
      (List.length ps >= 1 && List.length ps <= parts);
    Alcotest.(check int)
      (Printf.sprintf "boxes preserved (%d)" parts)
      total
      (List.fold_left (fun a n -> a + Snet.Net.count_boxes n) 0 ps);
    (* Stability: re-partitioning at the achieved count is a fixpoint,
       so coordinator and workers agree on the cut. *)
    let again = Engine_dist.partition ~parts:(List.length ps) net in
    Alcotest.(check (list string))
      (Printf.sprintf "stable (%d)" parts)
      (List.map Snet.Net.to_string ps)
      (List.map Snet.Net.to_string again)
  done;
  (* Order preserved: fig3 is a serial_list, so one part rebuilds it. *)
  Alcotest.(check string) "identity"
    (Snet.Net.to_string net)
    (Snet.Net.to_string (List.hd (Engine_dist.partition ~parts:1 net)));
  Alcotest.(check bool) "parts=0 rejected" true
    (try
       ignore (Engine_dist.partition ~parts:0 net);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Transports                                                          *)

let test_loopback () =
  let a, b = Transport.loopback_pair () in
  Transport.send a "ping";
  Transport.send a "pong";
  Alcotest.(check bool) "recv 1" true (Transport.recv b = `Msg "ping");
  Alcotest.(check bool) "recv 2" true (Transport.recv b = `Msg "pong");
  Transport.send b "back";
  Alcotest.(check bool) "reverse" true (Transport.recv a = `Msg "back");
  Transport.close a;
  Alcotest.(check bool) "closed recv" true (Transport.recv b = `Closed);
  Alcotest.(check bool) "closed send" true
    (try
       Transport.send b "x";
       false
     with Transport.Closed_conn -> true)

let tcp_enabled () = Sys.getenv_opt "SNET_DIST_TCP" = Some "1"

let test_tcp () =
  if not (tcp_enabled ()) then
    Alcotest.skip ()
  else begin
    let l = Transport.Tcp.listen () in
    let port = Transport.Tcp.port l in
    let server_got = ref [] in
    let server =
      Thread.create
        (fun () ->
          let c = Transport.Tcp.accept ~timeout_s:10.0 l in
          let rec loop () =
            match Transport.Tcp.recv c with
            | `Msg m ->
                server_got := m :: !server_got;
                Transport.Tcp.send c ("echo:" ^ m);
                loop ()
            | `Closed -> Transport.Tcp.close c
          in
          loop ())
        ()
    in
    let c = Transport.Tcp.connect ~host:"127.0.0.1" ~port in
    let big = String.make 100_000 'z' in
    Transport.Tcp.send c "hello";
    Transport.Tcp.send c big;
    Alcotest.(check bool) "echo 1" true (Transport.Tcp.recv c = `Msg "echo:hello");
    Alcotest.(check bool) "echo big" true
      (Transport.Tcp.recv c = `Msg ("echo:" ^ big));
    Transport.Tcp.close c;
    Thread.join server;
    Transport.Tcp.close_listener l;
    Alcotest.(check (list string)) "server saw" [ big; "hello" ] !server_got
  end

let test_tcp_frames_records () =
  if not (tcp_enabled ()) then Alcotest.skip ()
  else begin
    let l = Transport.Tcp.listen () in
    let port = Transport.Tcp.port l in
    let board = Sudoku.Puzzles.easy in
    let r = Sudoku.Boxes.inject_board board in
    let t =
      Thread.create
        (fun () ->
          let c =
            Transport.erase
              (module Transport.Tcp)
              (Transport.Tcp.accept ~timeout_s:10.0 l)
          in
          (match Transport.recv c with
          | `Msg m -> Transport.send c m (* bounce the raw frame *)
          | `Closed -> ());
          Transport.close c)
        ()
    in
    let c =
      Transport.erase
        (module Transport.Tcp)
        (Transport.Tcp.connect ~host:"127.0.0.1" ~port)
    in
    Transport.send c (Wire.render r);
    (match Transport.recv c with
    | `Closed -> Alcotest.fail "connection dropped"
    | `Msg m -> (
        match Wire.read m with
        | Error e -> Alcotest.failf "frame corrupted in flight: %s" e
        | Ok r' -> Alcotest.(check bool) "board survives TCP" true (frame_eq r r')));
    Transport.close c;
    Thread.join t;
    Transport.Tcp.close_listener l
  end

(* ------------------------------------------------------------------ *)
(* Differential: partitioned engine vs sequential reference            *)

let solve_inputs board = [ Sudoku.Boxes.inject_board board ]

let test_dist_vs_seq_fig2 () =
  let board = Sudoku.Puzzles.easy in
  let reference =
    Snet.Engine_seq.run (Sudoku.Networks.fig2 ()) (solve_inputs board)
  in
  List.iter
    (fun workers ->
      let outs =
        Engine_dist.run ~workers (Sudoku.Networks.fig2 ()) (solve_inputs board)
      in
      Alcotest.(check bool)
        (Printf.sprintf "fig2 multiset equal (%d workers)" workers)
        true
        (multiset_eq reference outs))
    [ 1; 2; 4 ]

let test_dist_vs_seq_fig3 () =
  let board = Sudoku.Puzzles.easy in
  let net () = Sudoku.Networks.fig3 () in
  let reference = Snet.Engine_seq.run (net ()) (solve_inputs board) in
  List.iter
    (fun workers ->
      let outs = Engine_dist.run ~workers (net ()) (solve_inputs board) in
      Alcotest.(check bool)
        (Printf.sprintf "fig3 multiset equal (%d workers)" workers)
        true
        (multiset_eq reference outs))
    [ 2; 4 ]

let test_dist_multiple_inputs () =
  (* Several boards through one distributed pipeline: outputs from all
     of them interleave across the cut edges. *)
  let boards =
    [ (Sudoku.Puzzles.find "trivial").Sudoku.Puzzles.board; Sudoku.Puzzles.easy ]
  in
  let inputs = List.map Sudoku.Boxes.inject_board boards in
  let reference = Snet.Engine_seq.run (Sudoku.Networks.fig2 ()) inputs in
  let outs = Engine_dist.run ~workers:2 (Sudoku.Networks.fig2 ()) inputs in
  Alcotest.(check bool) "two boards, multiset equal" true
    (multiset_eq reference outs)

let test_dist_tiny_credits () =
  (* A credit window of 1 forces a park on every record — the engine
     must still drain completely. *)
  let board = Sudoku.Puzzles.easy in
  let stats = Snet.Stats.create () in
  let reference =
    Snet.Engine_seq.run (Sudoku.Networks.fig2 ()) (solve_inputs board)
  in
  let outs =
    Engine_dist.run ~workers:2 ~credits:1 ~stats (Sudoku.Networks.fig2 ())
      (solve_inputs board)
  in
  Alcotest.(check bool) "credits=1 multiset equal" true
    (multiset_eq reference outs)

let test_dist_batch_on_off () =
  (* Batching must be invisible to results: the same network over the
     same inputs, batched (envelopes up to 64 records) and unbatched
     (batch=1 forces plain Data frames both directions), both
     multiset-identical to the sequential reference. *)
  let board = Sudoku.Puzzles.easy in
  List.iter
    (fun (name, net) ->
      let reference = Snet.Engine_seq.run (net ()) (solve_inputs board) in
      List.iter
        (fun workers ->
          List.iter
            (fun batch ->
              let outs =
                Engine_dist.run ~workers ~batch (net ()) (solve_inputs board)
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s %dw batch=%d multiset equal" name workers
                   batch)
                true
                (multiset_eq reference outs))
            [ 1; 64 ])
        [ 2; 4 ])
    [
      ("fig2", fun () -> Sudoku.Networks.fig2 ());
      ("fig3", fun () -> Sudoku.Networks.fig3 ());
    ]

let test_dist_batch_smaller_than_window () =
  (* Batch cap below the credit window and a tiny window with a big
     cap: both degenerate configurations must still drain. *)
  let board = Sudoku.Puzzles.easy in
  let reference =
    Snet.Engine_seq.run (Sudoku.Networks.fig2 ()) (solve_inputs board)
  in
  List.iter
    (fun (credits, batch) ->
      let outs =
        Engine_dist.run ~workers:2 ~credits ~batch (Sudoku.Networks.fig2 ())
          (solve_inputs board)
      in
      Alcotest.(check bool)
        (Printf.sprintf "credits=%d batch=%d multiset equal" credits batch)
        true
        (multiset_eq reference outs))
    [ (32, 3); (2, 64); (1, 64) ]

(* ------------------------------------------------------------------ *)
(* Worker failure                                                      *)

let error_record_cfg =
  Snet.Supervise.make ~policy:Snet.Supervise.Error_record ()

let test_worker_kill_error_record () =
  let board = Sudoku.Puzzles.easy in
  let outs =
    Engine_dist.run ~workers:2 ~kill_worker:(1, 0)
      ~supervision:error_record_cfg (Sudoku.Networks.fig2 ())
      (solve_inputs board)
  in
  let errors = List.filter Snet.Supervise.is_error outs in
  Alcotest.(check bool) "stamped error records delivered" true (errors <> []);
  List.iter
    (fun e ->
      Alcotest.(check (option string))
        "origin names the dead worker" (Some "dist:worker1")
        (Snet.Supervise.error_origin e))
    errors

let test_worker_kill_fail_fast () =
  let board = Sudoku.Puzzles.easy in
  Alcotest.(check bool) "fail-fast raises" true
    (try
       ignore
         (Engine_dist.run ~workers:2 ~kill_worker:(1, 0)
            (Sudoku.Networks.fig2 ()) (solve_inputs board));
       false
     with Failure m -> contains m "dist:worker1")

let test_worker_kill_retry_recovers () =
  let board = Sudoku.Puzzles.easy in
  let reference =
    Snet.Engine_seq.run (Sudoku.Networks.fig2 ()) (solve_inputs board)
  in
  let outs =
    Engine_dist.run ~workers:2 ~kill_worker:(1, 0)
      ~supervision:(Snet.Supervise.make ~policy:(Snet.Supervise.Retry 2) ())
      (Sudoku.Networks.fig2 ()) (solve_inputs board)
  in
  Alcotest.(check bool) "respawned worker recovers the run" true
    (multiset_eq reference outs)

(* ------------------------------------------------------------------ *)
(* Cluster telemetry                                                   *)

(* Metrics aggregation under worker death, one run per supervision
   policy: whatever the policy does with the run itself, the collector
   must keep the dead partition's last report, flag it dead with a
   reason (Retry re-arms it at respawn), and the cluster snapshot must
   stay well-formed and JSON round-trippable. *)
let test_collector_survives_worker_death () =
  let board = Sudoku.Puzzles.easy in
  let run_one supervision col =
    try
      ignore
        (Engine_dist.run ~workers:2 ~kill_worker:(1, 0) ?supervision
           ~collector:col (Sudoku.Networks.fig2 ()) (solve_inputs board))
    with Failure _ -> ()
  in
  List.iter
    (fun (label, supervision, expect_alive, check_survivor) ->
      let col = Obsv.Agg.create () in
      run_one supervision col;
      let cl = Obsv.Agg.cluster col in
      Alcotest.(check int)
        (label ^ ": both partitions tracked")
        2 cl.Obsv.Agg.workers_seen;
      (match
         List.find_opt (fun p -> p.Obsv.Health.part = 1) cl.Obsv.Agg.parts
       with
      | Some p ->
          Alcotest.(check bool)
            (label ^ ": liveness after the kill")
            expect_alive p.Obsv.Health.alive;
          if not expect_alive then
            Alcotest.(check bool)
              (label ^ ": death carries a reason")
              true
              (p.Obsv.Health.reason <> "")
      | None -> Alcotest.failf "%s: killed partition missing" label);
      (match
         List.find_opt (fun p -> p.Obsv.Health.part = 0) cl.Obsv.Agg.parts
       with
      | Some p ->
          (* Under fail-fast the whole run is torn down, which may
             mark the innocent partition dead too — its liveness is
             policy noise, not a collector property. *)
          if check_survivor then
            Alcotest.(check bool)
              (label ^ ": surviving partition alive")
              true p.Obsv.Health.alive
      | None -> Alcotest.failf "%s: surviving partition missing" label);
      match Obsv.Agg.cluster_of_json (Obsv.Agg.cluster_to_json cl) with
      | Ok cl' ->
          Alcotest.(check int)
            (label ^ ": cluster json round-trips")
            (List.length cl.Obsv.Agg.parts)
            (List.length cl'.Obsv.Agg.parts)
      | Error e -> Alcotest.failf "%s: cluster json broken: %s" label e)
    [
      ("fail-fast", None, false, false);
      ("error-record", Some error_record_cfg, false, true);
      ( "retry",
        Some (Snet.Supervise.make ~policy:(Snet.Supervise.Retry 2) ()),
        (* The respawned worker re-Hellos, which re-arms liveness. *)
        true,
        true );
    ]

(* Trace-context propagation across cut edges: the tag rides the wire
   but never leaks into user-visible outputs, and the merged trace
   pairs every cross-edge flow arrow start with exactly one end. *)
let test_trace_propagation_loopback () =
  Obsv.Sink.clear ();
  Obsv.Sink.enable ();
  let col = Obsv.Agg.create () in
  let board = Sudoku.Puzzles.easy in
  let outs =
    Fun.protect
      ~finally:(fun () -> Obsv.Sink.disable ())
      (fun () ->
        Engine_dist.run ~workers:2 ~collector:col (Sudoku.Networks.fig2 ())
          (solve_inputs board))
  in
  Alcotest.(check bool) "outputs solved" true (outs <> []);
  List.iter
    (fun r ->
      Alcotest.(check (option int))
        "no trace tag on outputs" None
        (Record.tag Obsv.Probe.trace_tag r))
    outs;
  let merged =
    Obsv.Agg.merged_trace col ~local_events:(Obsv.Sink.events ())
  in
  Obsv.Sink.clear ();
  (match Obsv.Export.validate (Obsv.Export.render merged) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "merged trace invalid: %s" e);
  let starts, ends =
    List.fold_left
      (fun (s, e) -> function
        | Obsv.Export.Flow_start { id; _ } -> (id :: s, e)
        | Obsv.Export.Flow_end { id; _ } -> (s, id :: e)
        | _ -> (s, e))
      ([], []) merged
  in
  Alcotest.(check bool) "cut-edge flows present" true (starts <> []);
  Alcotest.(check (list int))
    "every flow start meets exactly one end"
    (List.sort compare starts) (List.sort compare ends)

(* ------------------------------------------------------------------ *)
(* Placement plans                                                     *)

module Plan = Dist.Plan

let test_plan_codec () =
  let samples =
    [
      [| Plan.Run { lo = 0; hi = 0 } |];
      [| Plan.Run { lo = 0; hi = 1 }; Plan.Run { lo = 2; hi = 4 } |];
      [|
        Plan.Run { lo = 0; hi = 0 };
        Plan.Shard { seg = 1; shards = 4 };
        Plan.Run { lo = 2; hi = 3 };
      |];
      [| Plan.Shard { seg = 0; shards = 2 } |];
    ]
  in
  List.iter
    (fun p ->
      (match Plan.validate p with
      | Ok () -> ()
      | Error e -> Alcotest.failf "sample plan invalid: %s" e);
      match Plan.decode (Plan.encode p) with
      | Error e -> Alcotest.failf "decode %S: %s" (Plan.encode p) e
      | Ok p' ->
          Alcotest.(check bool)
            (Printf.sprintf "%S round-trips" (Plan.encode p))
            true (p = p'))
    samples;
  Alcotest.(check string) "wire form" "0,1!4,2-3"
    (Plan.encode
       [|
         Plan.Run { lo = 0; hi = 0 };
         Plan.Shard { seg = 1; shards = 4 };
         Plan.Run { lo = 2; hi = 3 };
       |]);
  List.iter
    (fun s ->
      match Plan.decode s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error e ->
          Alcotest.(check bool)
            (Printf.sprintf "%S rejected as bad plan" s)
            true
            (String.length e >= 8 && String.sub e 0 8 = "bad plan"))
    [ ""; "x"; "1-0"; "0,2"; "1,0-1"; "0!0"; "0,1!-3"; "0,,1"; "0-1-2" ]

let test_plan_arithmetic () =
  let p =
    [|
      Plan.Run { lo = 0; hi = 1 };
      Plan.Shard { seg = 2; shards = 3 };
      Plan.Run { lo = 3; hi = 3 };
    |]
  in
  Alcotest.(check int) "parts" 5 (Plan.parts p);
  Alcotest.(check int) "nsegs" 4 (Plan.nsegs p);
  Alcotest.(check int) "base of shard stage" 1 (Plan.base p 1);
  Alcotest.(check int) "base of last stage" 4 (Plan.base p 2);
  Alcotest.(check (list int))
    "stage of each partition" [ 0; 1; 1; 1; 2 ]
    (List.init 5 (Plan.stage_of_part p));
  Alcotest.(check bool) "every shard replica runs the shard segment" true
    (List.for_all
       (fun part -> Plan.segments_of_part p part = (2, 2))
       [ 1; 2; 3 ]);
  Alcotest.(check bool) "run partition owns its range" true
    (Plan.segments_of_part p 0 = (0, 1) && Plan.segments_of_part p 4 = (3, 3));
  Alcotest.(check bool) "partition out of range" true
    (try
       ignore (Plan.stage_of_part p 5);
       false
     with Invalid_argument _ -> true);
  (* shard_of: in range, deterministic, and actually spreading. *)
  let shards = 4 in
  let hits = Array.make shards 0 in
  for v = -16 to 64 do
    let s = Plan.shard_of ~shards v in
    Alcotest.(check bool) "shard in range" true (s >= 0 && s < shards);
    Alcotest.(check int) "shard deterministic" s (Plan.shard_of ~shards v);
    hits.(s) <- hits.(s) + 1
  done;
  Alcotest.(check bool) "hash spreads over replicas" true
    (Array.for_all (fun n -> n > 0) hits);
  Alcotest.(check int) "single shard degenerates" 0 (Plan.shard_of ~shards:1 42)

(* The default plan is the legacy cut: [Plan.contiguous] over the
   per-segment box counts must reproduce exactly the partitions the
   pre-plan engine computed, for every worker count. *)
let test_plan_contiguous_matches_partition () =
  let net = Sudoku.Networks.fig3 () in
  let segs = Array.of_list (Engine_dist.segments net) in
  let weights =
    Array.to_list (Array.map (fun s -> max 1 (Snet.Net.count_boxes s)) segs)
  in
  for parts = 1 to 6 do
    let legacy = Engine_dist.partition ~parts net in
    let plan = Plan.contiguous ~parts ~weights in
    Alcotest.(check int)
      (Printf.sprintf "stage count (%d)" parts)
      (List.length legacy) (Array.length plan);
    List.iteri
      (fun i sub ->
        match plan.(i) with
        | Plan.Shard _ -> Alcotest.fail "contiguous produced a shard stage"
        | Plan.Run { lo; hi } ->
            let rebuilt =
              Snet.Net.serial_list
                (Array.to_list (Array.sub segs lo (hi - lo + 1)))
            in
            Alcotest.(check string)
              (Printf.sprintf "partition %d of %d" i parts)
              (Snet.Net.to_string sub)
              (Snet.Net.to_string rebuilt))
      legacy
  done

(* ------------------------------------------------------------------ *)
(* Netstate wire codec (migration payloads)                            *)

let sample_netstate () =
  let r = Record.of_list ~fields:[] ~tags:[ ("k", 3) ] in
  {
    Snet.Netstate.syncs =
      [
        ( "serial.0/sync",
          { Snet.Netstate.slots = [ Some r; None ]; spent = false } );
      ];
    splits = [ ("split.1", [ 0; 2; 5 ]) ];
    stars = [ ("star.2", 3) ];
  }

let test_statecodec_roundtrip () =
  let st = sample_netstate () in
  (match Dist.Statecodec.decode (Dist.Statecodec.encode st) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok st' ->
      Alcotest.(check bool) "state round-trips" true
        (Snet.Netstate.equal st st'));
  (match Dist.Statecodec.decode (Dist.Statecodec.encode Snet.Netstate.empty) with
  | Error e -> Alcotest.failf "empty decode failed: %s" e
  | Ok st' ->
      Alcotest.(check bool) "empty stays empty" true
        (Snet.Netstate.is_empty st'));
  let enc = Dist.Statecodec.encode st in
  let reject label img =
    match Dist.Statecodec.decode img with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" label
  in
  reject "bad magic" ("\x00" ^ String.sub enc 1 (String.length enc - 1));
  reject "truncated" (String.sub enc 0 (String.length enc / 2));
  reject "trailing bytes" (enc ^ "\x00");
  (* Flip every byte position in turn. Metadata flips (paths, counts,
     markers) may legitimately decode to a different well-formed state
     or be rejected — but a stored record can never be silently
     corrupted: its bytes are a complete Wire frame with its own CRC,
     so every surviving record must render back to the original
     frame. The decoder must also never raise. *)
  let original_frame =
    Wire.render (Record.of_list ~fields:[] ~tags:[ ("k", 3) ])
  in
  for pos = 0 to String.length enc - 1 do
    let b = Bytes.of_string enc in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x5a));
    match Dist.Statecodec.decode (Bytes.to_string b) with
    | Error _ -> ()
    | Ok st' ->
        List.iter
          (fun (_, cell) ->
            List.iter
              (function
                | None -> ()
                | Some r ->
                    if not (String.equal (Wire.render r) original_frame) then
                      Alcotest.failf
                        "flip at %d silently corrupted a stored record" pos)
              cell.Snet.Netstate.slots)
          st'.Snet.Netstate.syncs
  done

(* ------------------------------------------------------------------ *)
(* Hello shard-map validation                                          *)

(* A worker must reject a Hello whose shard map is malformed or
   inconsistent with the Hello's own part/parts fields at decode time,
   instead of crashing on an out-of-bounds lookup later. *)
let test_hello_rejects_bad_shard_map () =
  let hello ~part ~parts ~plan =
    Proto.encode
      (Proto.Hello
         {
           spec = "shard:shards=2";
           part;
           parts;
           policy = "";
           timeout = None;
           credits = 32;
           crash_after = -1;
           crash_flush = false;
           batch = 16;
           obsv = 0;
           coord_pid = 1;
           plan;
         })
  in
  let expect_reject label msg ~part ~parts ~plan =
    match Proto.decode (hello ~part ~parts ~plan) with
    | Ok _ -> Alcotest.failf "%s: accepted" label
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: message names the problem (%s)" label e)
          true (contains e msg)
  in
  (* Consistent map: accepted. *)
  (match Proto.decode (hello ~part:3 ~parts:4 ~plan:"0,1!2,2") with
  | Ok (Proto.Hello h) ->
      Alcotest.(check string) "plan carried" "0,1!2,2" h.Proto.plan
  | Ok _ -> Alcotest.fail "decoded as something else"
  | Error e -> Alcotest.failf "consistent Hello rejected: %s" e);
  expect_reject "plan/parts mismatch" "implies 4 partitions" ~part:0 ~parts:3
    ~plan:"0,1!2,2";
  expect_reject "partition out of range" "out of range" ~part:7 ~parts:4
    ~plan:"0,1!2,2";
  expect_reject "malformed map" "bad plan" ~part:0 ~parts:2 ~plan:"0,huh"

(* ------------------------------------------------------------------ *)
(* Differential: sharded [!!] across workers vs sequential reference   *)

let shard_inputs n =
  List.init n (fun i -> Record.of_list ~fields:[] ~tags:[ ("x", i) ])

let shard_plan shards =
  [|
    Plan.Run { lo = 0; hi = 0 };
    Plan.Shard { seg = 1; shards };
    Plan.Run { lo = 2; hi = 2 };
  |]

let test_dist_shard_vs_seq () =
  let inputs = shard_inputs 48 in
  let reference =
    Snet.Engine_seq.run (Sudoku.Networks.shard ()) inputs
  in
  List.iter
    (fun shards ->
      let plan = shard_plan shards in
      let outs =
        Engine_dist.run
          ~workers:(Plan.parts plan)
          ~plan (Sudoku.Networks.shard ()) inputs
      in
      Alcotest.(check int)
        (Printf.sprintf "every record accounted for (x%d)" shards)
        (List.length reference) (List.length outs);
      Alcotest.(check bool)
        (Printf.sprintf "shard x%d multiset equal" shards)
        true
        (multiset_eq reference outs))
    [ 1; 2; 4 ]

(* Same differential over real worker processes and TCP, gated like
   the other socket tests; needs the worker binary (the @dist-smoke
   alias points SNET_WORKER_EXE at it). *)
let test_dist_shard_tcp () =
  match Sys.getenv_opt "SNET_WORKER_EXE" with
  | None -> Alcotest.skip ()
  | Some _ when not (tcp_enabled ()) -> Alcotest.skip ()
  | Some worker_exe ->
      let inputs = shard_inputs 32 in
      let net = Sudoku.Networks.shard ~shards:2 () in
      let reference = Snet.Engine_seq.run net inputs in
      let plan = shard_plan 2 in
      let outs =
        Engine_dist.run_spawned ~worker_exe
          ~spec:(Sudoku.Netspec.spec ~shards:2 "shard")
          ~workers:(Plan.parts plan) ~plan net inputs
      in
      Alcotest.(check bool) "spawned shard multiset equal" true
        (multiset_eq reference outs)

(* Kill one shard replica under each supervision policy: the sharded
   cut must behave exactly like the contiguous one did — stamped error
   records name the dead replica, fail-fast tears the run down naming
   it, retry recovers the full output. Partition 2 is the second
   replica of the shard stage. *)
let test_dist_shard_kill_worker () =
  let inputs = shard_inputs 48 in
  let plan = shard_plan 2 in
  let reference =
    Snet.Engine_seq.run (Sudoku.Networks.shard ()) inputs
  in
  (* error-record *)
  let outs =
    Engine_dist.run
      ~workers:(Plan.parts plan)
      ~plan ~kill_worker:(2, 0) ~supervision:error_record_cfg
      (Sudoku.Networks.shard ()) inputs
  in
  let errors = List.filter Snet.Supervise.is_error outs in
  Alcotest.(check bool) "shard kill: error records delivered" true
    (errors <> []);
  List.iter
    (fun e ->
      Alcotest.(check (option string))
        "shard kill: origin names the dead replica" (Some "dist:worker2")
        (Snet.Supervise.error_origin e))
    errors;
  (* fail-fast *)
  Alcotest.(check bool) "shard kill: fail-fast raises" true
    (try
       ignore
         (Engine_dist.run
            ~workers:(Plan.parts plan)
            ~plan ~kill_worker:(2, 0)
            (Sudoku.Networks.shard ()) inputs);
       false
     with Failure m -> contains m "dist:worker2");
  (* retry *)
  let outs =
    Engine_dist.run
      ~workers:(Plan.parts plan)
      ~plan ~kill_worker:(2, 0)
      ~supervision:(Snet.Supervise.make ~policy:(Snet.Supervise.Retry 2) ())
      (Sudoku.Networks.shard ()) inputs
  in
  Alcotest.(check bool) "shard kill: retry recovers" true
    (multiset_eq reference outs)

(* ------------------------------------------------------------------ *)
(* Live migration                                                      *)

(* Move a partition mid-run: output stays multiset-identical, the
   migration reports a downtime, and the collector rows show the move
   with its placement label. Partition 0 (the route segment) is
   throttled so the stream is provably still in flight when the
   migration fires. *)
let test_migrate_mid_run () =
  let inputs = shard_inputs 64 in
  let plan = shard_plan 2 in
  let reference =
    Snet.Engine_seq.run (Sudoku.Networks.shard ()) inputs
  in
  let col = Obsv.Agg.create () in
  let result = ref (Error "migration never attempted") in
  let migrator = ref None in
  let outs =
    Engine_dist.run
      ~workers:(Plan.parts plan)
      ~plan ~collector:col ~worker_throttle:(0, 800)
      ~on_handle:(fun h ->
        migrator :=
          Some (Thread.create (fun () -> result := Engine_dist.migrate h 0) ()))
      (Sudoku.Networks.shard ()) inputs
  in
  (match !migrator with
  | Some t -> Thread.join t
  | None -> Alcotest.fail "on_handle never called");
  (match !result with
  | Ok d -> Alcotest.(check bool) "downtime measured" true (d >= 0.)
  | Error e -> Alcotest.failf "migrate failed: %s" e);
  Alcotest.(check bool) "migrated run multiset equal" true
    (multiset_eq reference outs);
  match
    List.find_opt
      (fun p -> p.Obsv.Health.part = 0)
      (Obsv.Agg.cluster col).Obsv.Agg.parts
  with
  | Some p ->
      Alcotest.(check int) "health row counts the move" 1
        p.Obsv.Health.migrations;
      Alcotest.(check bool) "health row carries a placement" true
        (p.Obsv.Health.place <> "")
  | None -> Alcotest.fail "migrated partition missing from cluster"

(* Every refusal path answers with a reason instead of raising or
   wedging the run. *)
let test_migrate_refusals () =
  let inputs = shard_inputs 16 in
  let plan = shard_plan 2 in
  let handle = ref None in
  let oor = ref (Ok 0.) and finished = ref (Ok 0.) in
  ignore
    (Engine_dist.run
       ~workers:(Plan.parts plan)
       ~plan
       ~on_handle:(fun h ->
         handle := Some h;
         oor := Engine_dist.migrate h 99)
       (Sudoku.Networks.shard ()) inputs);
  (match !handle with
  | Some h ->
      Alcotest.(check bool) "handle reports the run finished" true
        (Engine_dist.handle_finished h);
      Alcotest.(check int) "handle exposes the partition count" 4
        (Engine_dist.handle_parts h);
      Alcotest.(check bool) "handle exposes the plan" true
        (Engine_dist.handle_plan h = plan);
      finished := Engine_dist.migrate h 1
  | None -> Alcotest.fail "on_handle never called");
  (match !oor with
  | Error e ->
      Alcotest.(check bool) "out of range named" true (contains e "out of range")
  | Ok _ -> Alcotest.fail "out-of-range migration accepted");
  match !finished with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "migration accepted after the run finished"

(* A worker that dies instead of answering the freeze: the migration
   fails with a reason, crash recovery takes over, and under Retry the
   run still completes with the full output. *)
let test_migrate_freeze_death_recovers () =
  let inputs = shard_inputs 48 in
  let plan = shard_plan 2 in
  let reference =
    Snet.Engine_seq.run (Sudoku.Networks.shard ()) inputs
  in
  let result = ref (Ok 0.) in
  let migrator = ref None in
  let outs =
    Engine_dist.run
      ~workers:(Plan.parts plan)
      ~plan ~worker_throttle:(0, 800) ~kill_in_freeze:0
      ~supervision:(Snet.Supervise.make ~policy:(Snet.Supervise.Retry 2) ())
      ~on_handle:(fun h ->
        migrator :=
          Some (Thread.create (fun () -> result := Engine_dist.migrate h 0) ()))
      (Sudoku.Networks.shard ()) inputs
  in
  (match !migrator with
  | Some t -> Thread.join t
  | None -> Alcotest.fail "on_handle never called");
  (match !result with
  | Ok _ -> Alcotest.fail "freeze death reported as success"
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "freeze death named (%s)" e)
        true
        (contains e "died during freeze"));
  Alcotest.(check bool) "crash recovery completes the run" true
    (multiset_eq reference outs)

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "crc32 vector" `Quick test_crc32;
    Alcotest.test_case "wire simple round-trip" `Quick test_roundtrip_simple;
    Alcotest.test_case "wire empty record" `Quick test_empty_record;
    Alcotest.test_case "wire error record" `Quick test_error_record_travels;
    Alcotest.test_case "wire unencodable" `Quick test_unencodable;
    Alcotest.test_case "wire validate + garbage" `Quick test_validate_and_garbage;
    Seeded.to_alcotest prop_roundtrip;
    Seeded.to_alcotest prop_corruption;
    Seeded.to_alcotest prop_batch_envelope;
    Alcotest.test_case "proto round-trip" `Quick test_proto_roundtrip;
    Alcotest.test_case "partition" `Quick test_partition;
    Alcotest.test_case "loopback transport" `Quick test_loopback;
    Alcotest.test_case "tcp transport (smoke)" `Quick test_tcp;
    Alcotest.test_case "tcp frames records (smoke)" `Quick test_tcp_frames_records;
    Alcotest.test_case "dist=seq fig2 x{1,2,4}" `Quick test_dist_vs_seq_fig2;
    Alcotest.test_case "dist=seq fig3 x{2,4}" `Quick test_dist_vs_seq_fig3;
    Alcotest.test_case "dist multiple inputs" `Quick test_dist_multiple_inputs;
    Alcotest.test_case "dist credits=1" `Quick test_dist_tiny_credits;
    Alcotest.test_case "dist batch on/off = seq" `Quick test_dist_batch_on_off;
    Alcotest.test_case "dist batch vs window shapes" `Quick
      test_dist_batch_smaller_than_window;
    Alcotest.test_case "worker kill -> error records" `Quick
      test_worker_kill_error_record;
    Alcotest.test_case "worker kill -> fail fast" `Quick
      test_worker_kill_fail_fast;
    Alcotest.test_case "worker kill -> retry recovers" `Quick
      test_worker_kill_retry_recovers;
    Alcotest.test_case "collector survives worker death (all policies)" `Quick
      test_collector_survives_worker_death;
    Alcotest.test_case "trace propagation: tags stripped, flows pair up"
      `Quick test_trace_propagation_loopback;
    Alcotest.test_case "plan codec" `Quick test_plan_codec;
    Alcotest.test_case "plan arithmetic + shard hash" `Quick
      test_plan_arithmetic;
    Alcotest.test_case "plan contiguous = legacy partition" `Quick
      test_plan_contiguous_matches_partition;
    Alcotest.test_case "statecodec round-trip + corruption" `Quick
      test_statecodec_roundtrip;
    Alcotest.test_case "hello rejects bad shard map" `Quick
      test_hello_rejects_bad_shard_map;
    Alcotest.test_case "shard=seq x{1,2,4}" `Quick test_dist_shard_vs_seq;
    Alcotest.test_case "shard=seq over TCP (smoke)" `Quick test_dist_shard_tcp;
    Alcotest.test_case "shard replica kill (all policies)" `Quick
      test_dist_shard_kill_worker;
    Alcotest.test_case "migrate mid-run" `Quick test_migrate_mid_run;
    Alcotest.test_case "migrate refusals" `Quick test_migrate_refusals;
    Alcotest.test_case "migrate freeze death -> crash recovery" `Quick
      test_migrate_freeze_death_recovers;
  ]
