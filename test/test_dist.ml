(* Distribution layer: wire format round-trips and corruption
   detection, the coordinator protocol codec, partitioning, transports,
   and differential runs of the partitioned engine against the
   sequential reference. Everything here is hermetic (loopback
   transport, in-process worker threads); the TCP transport cases are
   skipped unless SNET_DIST_TCP=1 (the @dist-smoke tier sets it — real
   sockets don't belong in tier-1). *)

module Wire = Dist.Wire
module Proto = Dist.Proto
module Transport = Dist.Transport
module Engine_dist = Dist.Engine_dist
module Record = Snet.Record
module Value = Snet.Value
module Nd = Sacarray.Nd

(* Test-local keys, registered once. [Netspec.register_codecs] covers
   the sudoku board/opts keys used by the differential tests. *)
let nd_int_key : int Nd.t Value.Key.key = Value.Key.create "test.ndi"
let nd_bool_key : bool Nd.t Value.Key.key = Value.Key.create "test.ndb"

let () =
  Wire.register_nd_int nd_int_key;
  Wire.register_nd_bool nd_bool_key;
  Sudoku.Netspec.register_codecs ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Structural record equality via the canonical encoding: equal
   records render to identical frames, so byte equality of frames is
   exactly deep equality (Record.equal compares field payloads by
   physical identity, useless across a codec round-trip). *)
let frame_eq a b = String.equal (Wire.render a) (Wire.render b)

let multiset_eq outs1 outs2 =
  let key rs = List.sort compare (List.map Wire.render rs) in
  key outs1 = key outs2

(* ------------------------------------------------------------------ *)
(* Wire: fixed cases                                                   *)

let test_crc32 () =
  (* The standard check value for CRC-32/IEEE. *)
  Alcotest.(check int32) "check vector" 0xCBF43926l (Wire.crc32 "123456789")

let test_roundtrip_simple () =
  let r =
    Record.of_list
      ~fields:
        [
          ("n", Value.of_int 42);
          ("s", Value.inject Wire.string_key "hello \x00 world");
          ("x", Value.inject Wire.float_key 3.25);
          ("a", Value.inject nd_int_key (Nd.matrix [ [ 1; 2 ]; [ 3; 4 ] ]));
        ]
      ~tags:[ ("k", 3); ("done", 0); ("neg", -7) ]
  in
  match Wire.read (Wire.render r) with
  | Error e -> Alcotest.failf "read failed: %s" e
  | Ok r' ->
      Alcotest.(check bool) "frames equal" true (frame_eq r r');
      Alcotest.(check (option int)) "int field" (Some 42)
        (Option.bind (Record.field "n" r') Value.to_int);
      Alcotest.(check (option string))
        "string field"
        (Some "hello \x00 world")
        (Option.bind (Record.field "s" r') (Value.project Wire.string_key));
      Alcotest.(check (option int)) "tag" (Some (-7)) (Record.tag "neg" r');
      let a =
        Option.get
          (Option.bind (Record.field "a" r') (Value.project nd_int_key))
      in
      Alcotest.(check bool) "nd payload" true
        (Nd.equal Int.equal a (Nd.matrix [ [ 1; 2 ]; [ 3; 4 ] ]))

let test_empty_record () =
  let r = Record.of_list ~fields:[] ~tags:[] in
  match Wire.read (Wire.render r) with
  | Ok r' -> Alcotest.(check bool) "empty" true (frame_eq r r')
  | Error e -> Alcotest.failf "read failed: %s" e

let test_error_record_travels () =
  let input = Record.of_list ~fields:[] ~tags:[ ("k", 1) ] in
  let e =
    Snet.Supervise.error_record ~box:"boom" ~input (Failure "db on fire")
  in
  match Wire.read (Wire.render e) with
  | Error m -> Alcotest.failf "read failed: %s" m
  | Ok e' ->
      Alcotest.(check bool) "still an error" true (Snet.Supervise.is_error e');
      Alcotest.(check (option string))
        "origin" (Some "boom")
        (Snet.Supervise.error_origin e');
      Alcotest.(check bool) "message survives" true
        (match Snet.Supervise.error_message e' with
        | Some m -> contains m "db on fire"
        | None -> false)

let test_unencodable () =
  let rogue : unit Value.Key.key = Value.Key.create "test.unregistered" in
  let r =
    Record.of_list ~fields:[ ("f", Value.inject rogue ()) ] ~tags:[]
  in
  Alcotest.(check bool) "raises Unencodable" true
    (try
       ignore (Wire.render r);
       false
     with Wire.Unencodable _ -> true)

let test_validate_and_garbage () =
  let r = Record.of_list ~fields:[ ("n", Value.of_int 1) ] ~tags:[ ("t", 2) ] in
  let f = Wire.render r in
  (match Wire.validate f with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e);
  let bad s =
    match Wire.read s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted a bad frame (%d bytes)" (String.length s)
  in
  bad "";
  bad "SNRW";
  bad ("XXXX" ^ String.sub f 4 (String.length f - 4));
  (* version bump *)
  let b = Bytes.of_string f in
  Bytes.set b 4 '\x7f';
  bad (Bytes.to_string b);
  (* trailing bytes *)
  bad (f ^ "\x00")

(* ------------------------------------------------------------------ *)
(* Wire: properties                                                    *)

let gen_record =
  let open QCheck.Gen in
  let label = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  let nd_int =
    int_range 0 3 >>= fun rank ->
    list_repeat rank (int_range 0 3) >>= fun dims ->
    let shape = Array.of_list dims in
    let size = Array.fold_left ( * ) 1 shape in
    list_repeat size (int_range (-1000) 1000) >>= fun elems ->
    return (Value.inject nd_int_key (Nd.of_array shape (Array.of_list elems)))
  in
  let nd_bool =
    int_range 0 2 >>= fun rank ->
    list_repeat rank (int_range 0 4) >>= fun dims ->
    let shape = Array.of_list dims in
    let size = Array.fold_left ( * ) 1 shape in
    list_repeat size bool >>= fun elems ->
    return (Value.inject nd_bool_key (Nd.of_array shape (Array.of_list elems)))
  in
  let value =
    oneof
      [
        map Value.of_int int;
        map (Value.inject Wire.string_key) (string_size (int_range 0 40));
        map (Value.inject Wire.float_key) float;
        nd_int;
        nd_bool;
      ]
  in
  list_size (int_range 0 5) (pair label value) >>= fun fields ->
  list_size (int_range 0 5) (pair label int) >>= fun tags ->
  let r = Record.of_list ~fields ~tags in
  bool >>= fun stamp ->
  if stamp then
    return (Snet.Supervise.error_record ~box:"qc" ~input:r (Failure "qc"))
  else return r

let arb_record =
  QCheck.make ~print:(fun r -> Record.to_string r) gen_record

let prop_roundtrip =
  QCheck.Test.make ~name:"wire round-trip: read (render r) = r" ~count:300
    arb_record (fun r ->
      match Wire.read (Wire.render r) with
      | Error e -> QCheck.Test.fail_reportf "read failed: %s" e
      | Ok r' ->
          (* Canonical: the re-render must be byte-identical, and the
             projected payloads must match deeply. *)
          frame_eq r r'
          && List.for_all2
               (fun (l1, _) (l2, _) -> String.equal l1 l2)
               (Record.fields r) (Record.fields r')
          && Record.tags r = Record.tags r')

let prop_corruption =
  QCheck.Test.make ~name:"wire: corrupt/truncated frames rejected" ~count:300
    (QCheck.pair arb_record (QCheck.make QCheck.Gen.(pair pint pint)))
    (fun (r, (pos_seed, byte_seed)) ->
      let f = Wire.render r in
      let n = String.length f in
      (* Flip one byte to a guaranteed-different value... *)
      let pos = pos_seed mod n in
      let b = Bytes.of_string f in
      let old = Char.code (Bytes.get b pos) in
      Bytes.set b pos (Char.chr ((old + 1 + (byte_seed mod 255)) mod 256));
      let mutated = Bytes.to_string b in
      let mutated_rejected =
        String.equal mutated f
        ||
        match Wire.read mutated with Error _ -> true | Ok _ -> false
      in
      (* ...and cut the frame short anywhere. *)
      let truncated_rejected =
        match Wire.read (String.sub f 0 (pos_seed mod n)) with
        | Error _ -> true
        | Ok _ -> false
      in
      mutated_rejected && truncated_rejected)

(* ------------------------------------------------------------------ *)
(* Proto                                                               *)

let test_proto_roundtrip () =
  let r = Record.of_list ~fields:[ ("n", Value.of_int 9) ] ~tags:[ ("k", 1) ] in
  let msgs =
    [
      Proto.Hello
        {
          spec = "fig2:det";
          part = 1;
          parts = 4;
          policy = "retry:3";
          timeout = Some 1.5;
          credits = 32;
          crash_after = -1;
          crash_flush = true;
          batch = 16;
          obsv = 3;
          coord_pid = 12345;
        };
      Proto.Hello_ack { part = 1 };
      Proto.Data r;
      Proto.Data_batch [ r; r ];
      Proto.Credit 7;
      Proto.Eof;
      Proto.Done;
      Proto.Crash "it broke";
      Proto.Shutdown;
      Proto.Metrics_report { part = 2; payload = String.make 70000 '\x42' };
      Proto.Trace_chunk { part = 0; payload = "\x00\xff trace bytes" };
    ]
  in
  List.iter
    (fun m ->
      match Proto.decode (Proto.encode m) with
      | Error e -> Alcotest.failf "%s: %s" (Proto.to_string m) e
      | Ok m' -> (
          match (m, m') with
          | Proto.Data a, Proto.Data b ->
              Alcotest.(check bool) "data round-trip" true (frame_eq a b)
          | Proto.Data_batch a, Proto.Data_batch b ->
              Alcotest.(check bool) "batch round-trip" true
                (List.length a = List.length b && List.for_all2 frame_eq a b)
          | ( Proto.Metrics_report { part = pa; payload = ya },
              Proto.Metrics_report { part = pb; payload = yb } )
          | ( Proto.Trace_chunk { part = pa; payload = ya },
              Proto.Trace_chunk { part = pb; payload = yb } ) ->
              (* Payloads are opaque (and may exceed the u16 string
                 cap): compare the bytes, not the rendering. *)
              Alcotest.(check int) "payload part" pa pb;
              Alcotest.(check bool) "payload bytes" true (String.equal ya yb)
          | _ ->
              Alcotest.(check string) "round-trip" (Proto.to_string m)
                (Proto.to_string m')))
    msgs;
  (match Proto.decode "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty message accepted");
  match Proto.decode (String.sub (Proto.encode (Proto.Crash "xyz")) 0 2) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated message accepted"

(* A Data_batch envelope must carry exactly the records that N
   individual Data frames would: same multiset after decode, and any
   truncation or byte flip of the envelope is rejected (the per-frame
   CRC plus envelope length checks leave no silently-corruptible
   region). *)
let prop_batch_envelope =
  QCheck.Test.make ~name:"proto: Data_batch = N x Data (and corruption rejected)"
    ~count:150
    (QCheck.pair
       (QCheck.list_of_size QCheck.Gen.(int_range 1 8) arb_record)
       (QCheck.make QCheck.Gen.(pair pint pint)))
    (fun (rs, (pos_seed, byte_seed)) ->
      let enc = Proto.encode (Proto.Data_batch rs) in
      let decoded =
        match Proto.decode enc with
        | Ok (Proto.Data_batch rs') -> rs'
        | Ok (Proto.Data r) -> [ r ]
        | Ok m ->
            QCheck.Test.fail_reportf "unexpected decode: %s" (Proto.to_string m)
        | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
      in
      let singles =
        List.map
          (fun r ->
            match Proto.decode (Proto.encode (Proto.Data r)) with
            | Ok (Proto.Data r') -> r'
            | _ -> QCheck.Test.fail_reportf "single Data decode failed")
          rs
      in
      let same = multiset_eq decoded singles in
      let n = String.length enc in
      (* Truncate anywhere strictly inside the envelope... *)
      let cut = pos_seed mod n in
      let truncated_rejected =
        match Proto.decode (String.sub enc 0 cut) with
        | Error _ -> true
        | Ok (Proto.Data_batch rs') -> not (multiset_eq rs' decoded)
        | Ok _ -> false
      in
      (* ...and flip one byte past the kind tag (flipping the kind
         byte may legitimately decode as another message kind). *)
      let pos = 1 + (pos_seed mod (n - 1)) in
      let b = Bytes.of_string enc in
      let old = Char.code (Bytes.get b pos) in
      Bytes.set b pos (Char.chr ((old + 1 + (byte_seed mod 255)) mod 256));
      let mutated = Bytes.to_string b in
      let mutated_rejected =
        String.equal mutated enc
        ||
        match Proto.decode mutated with
        | Error _ -> true
        | Ok (Proto.Data_batch rs') -> not (multiset_eq rs' decoded)
        | Ok _ -> false
      in
      same && truncated_rejected && mutated_rejected)

(* ------------------------------------------------------------------ *)
(* Partitioning                                                        *)

let test_partition () =
  let net = Sudoku.Networks.fig3 () in
  let total = Snet.Net.count_boxes net in
  for parts = 1 to 6 do
    let ps = Engine_dist.partition ~parts net in
    Alcotest.(check bool)
      (Printf.sprintf "parts<=%d" parts)
      true
      (List.length ps >= 1 && List.length ps <= parts);
    Alcotest.(check int)
      (Printf.sprintf "boxes preserved (%d)" parts)
      total
      (List.fold_left (fun a n -> a + Snet.Net.count_boxes n) 0 ps);
    (* Stability: re-partitioning at the achieved count is a fixpoint,
       so coordinator and workers agree on the cut. *)
    let again = Engine_dist.partition ~parts:(List.length ps) net in
    Alcotest.(check (list string))
      (Printf.sprintf "stable (%d)" parts)
      (List.map Snet.Net.to_string ps)
      (List.map Snet.Net.to_string again)
  done;
  (* Order preserved: fig3 is a serial_list, so one part rebuilds it. *)
  Alcotest.(check string) "identity"
    (Snet.Net.to_string net)
    (Snet.Net.to_string (List.hd (Engine_dist.partition ~parts:1 net)));
  Alcotest.(check bool) "parts=0 rejected" true
    (try
       ignore (Engine_dist.partition ~parts:0 net);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Transports                                                          *)

let test_loopback () =
  let a, b = Transport.loopback_pair () in
  Transport.send a "ping";
  Transport.send a "pong";
  Alcotest.(check bool) "recv 1" true (Transport.recv b = `Msg "ping");
  Alcotest.(check bool) "recv 2" true (Transport.recv b = `Msg "pong");
  Transport.send b "back";
  Alcotest.(check bool) "reverse" true (Transport.recv a = `Msg "back");
  Transport.close a;
  Alcotest.(check bool) "closed recv" true (Transport.recv b = `Closed);
  Alcotest.(check bool) "closed send" true
    (try
       Transport.send b "x";
       false
     with Transport.Closed_conn -> true)

let tcp_enabled () = Sys.getenv_opt "SNET_DIST_TCP" = Some "1"

let test_tcp () =
  if not (tcp_enabled ()) then
    Alcotest.skip ()
  else begin
    let l = Transport.Tcp.listen () in
    let port = Transport.Tcp.port l in
    let server_got = ref [] in
    let server =
      Thread.create
        (fun () ->
          let c = Transport.Tcp.accept ~timeout_s:10.0 l in
          let rec loop () =
            match Transport.Tcp.recv c with
            | `Msg m ->
                server_got := m :: !server_got;
                Transport.Tcp.send c ("echo:" ^ m);
                loop ()
            | `Closed -> Transport.Tcp.close c
          in
          loop ())
        ()
    in
    let c = Transport.Tcp.connect ~host:"127.0.0.1" ~port in
    let big = String.make 100_000 'z' in
    Transport.Tcp.send c "hello";
    Transport.Tcp.send c big;
    Alcotest.(check bool) "echo 1" true (Transport.Tcp.recv c = `Msg "echo:hello");
    Alcotest.(check bool) "echo big" true
      (Transport.Tcp.recv c = `Msg ("echo:" ^ big));
    Transport.Tcp.close c;
    Thread.join server;
    Transport.Tcp.close_listener l;
    Alcotest.(check (list string)) "server saw" [ big; "hello" ] !server_got
  end

let test_tcp_frames_records () =
  if not (tcp_enabled ()) then Alcotest.skip ()
  else begin
    let l = Transport.Tcp.listen () in
    let port = Transport.Tcp.port l in
    let board = Sudoku.Puzzles.easy in
    let r = Sudoku.Boxes.inject_board board in
    let t =
      Thread.create
        (fun () ->
          let c =
            Transport.erase
              (module Transport.Tcp)
              (Transport.Tcp.accept ~timeout_s:10.0 l)
          in
          (match Transport.recv c with
          | `Msg m -> Transport.send c m (* bounce the raw frame *)
          | `Closed -> ());
          Transport.close c)
        ()
    in
    let c =
      Transport.erase
        (module Transport.Tcp)
        (Transport.Tcp.connect ~host:"127.0.0.1" ~port)
    in
    Transport.send c (Wire.render r);
    (match Transport.recv c with
    | `Closed -> Alcotest.fail "connection dropped"
    | `Msg m -> (
        match Wire.read m with
        | Error e -> Alcotest.failf "frame corrupted in flight: %s" e
        | Ok r' -> Alcotest.(check bool) "board survives TCP" true (frame_eq r r')));
    Transport.close c;
    Thread.join t;
    Transport.Tcp.close_listener l
  end

(* ------------------------------------------------------------------ *)
(* Differential: partitioned engine vs sequential reference            *)

let solve_inputs board = [ Sudoku.Boxes.inject_board board ]

let test_dist_vs_seq_fig2 () =
  let board = Sudoku.Puzzles.easy in
  let reference =
    Snet.Engine_seq.run (Sudoku.Networks.fig2 ()) (solve_inputs board)
  in
  List.iter
    (fun workers ->
      let outs =
        Engine_dist.run ~workers (Sudoku.Networks.fig2 ()) (solve_inputs board)
      in
      Alcotest.(check bool)
        (Printf.sprintf "fig2 multiset equal (%d workers)" workers)
        true
        (multiset_eq reference outs))
    [ 1; 2; 4 ]

let test_dist_vs_seq_fig3 () =
  let board = Sudoku.Puzzles.easy in
  let net () = Sudoku.Networks.fig3 () in
  let reference = Snet.Engine_seq.run (net ()) (solve_inputs board) in
  List.iter
    (fun workers ->
      let outs = Engine_dist.run ~workers (net ()) (solve_inputs board) in
      Alcotest.(check bool)
        (Printf.sprintf "fig3 multiset equal (%d workers)" workers)
        true
        (multiset_eq reference outs))
    [ 2; 4 ]

let test_dist_multiple_inputs () =
  (* Several boards through one distributed pipeline: outputs from all
     of them interleave across the cut edges. *)
  let boards =
    [ (Sudoku.Puzzles.find "trivial").Sudoku.Puzzles.board; Sudoku.Puzzles.easy ]
  in
  let inputs = List.map Sudoku.Boxes.inject_board boards in
  let reference = Snet.Engine_seq.run (Sudoku.Networks.fig2 ()) inputs in
  let outs = Engine_dist.run ~workers:2 (Sudoku.Networks.fig2 ()) inputs in
  Alcotest.(check bool) "two boards, multiset equal" true
    (multiset_eq reference outs)

let test_dist_tiny_credits () =
  (* A credit window of 1 forces a park on every record — the engine
     must still drain completely. *)
  let board = Sudoku.Puzzles.easy in
  let stats = Snet.Stats.create () in
  let reference =
    Snet.Engine_seq.run (Sudoku.Networks.fig2 ()) (solve_inputs board)
  in
  let outs =
    Engine_dist.run ~workers:2 ~credits:1 ~stats (Sudoku.Networks.fig2 ())
      (solve_inputs board)
  in
  Alcotest.(check bool) "credits=1 multiset equal" true
    (multiset_eq reference outs)

let test_dist_batch_on_off () =
  (* Batching must be invisible to results: the same network over the
     same inputs, batched (envelopes up to 64 records) and unbatched
     (batch=1 forces plain Data frames both directions), both
     multiset-identical to the sequential reference. *)
  let board = Sudoku.Puzzles.easy in
  List.iter
    (fun (name, net) ->
      let reference = Snet.Engine_seq.run (net ()) (solve_inputs board) in
      List.iter
        (fun workers ->
          List.iter
            (fun batch ->
              let outs =
                Engine_dist.run ~workers ~batch (net ()) (solve_inputs board)
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s %dw batch=%d multiset equal" name workers
                   batch)
                true
                (multiset_eq reference outs))
            [ 1; 64 ])
        [ 2; 4 ])
    [
      ("fig2", fun () -> Sudoku.Networks.fig2 ());
      ("fig3", fun () -> Sudoku.Networks.fig3 ());
    ]

let test_dist_batch_smaller_than_window () =
  (* Batch cap below the credit window and a tiny window with a big
     cap: both degenerate configurations must still drain. *)
  let board = Sudoku.Puzzles.easy in
  let reference =
    Snet.Engine_seq.run (Sudoku.Networks.fig2 ()) (solve_inputs board)
  in
  List.iter
    (fun (credits, batch) ->
      let outs =
        Engine_dist.run ~workers:2 ~credits ~batch (Sudoku.Networks.fig2 ())
          (solve_inputs board)
      in
      Alcotest.(check bool)
        (Printf.sprintf "credits=%d batch=%d multiset equal" credits batch)
        true
        (multiset_eq reference outs))
    [ (32, 3); (2, 64); (1, 64) ]

(* ------------------------------------------------------------------ *)
(* Worker failure                                                      *)

let error_record_cfg =
  Snet.Supervise.make ~policy:Snet.Supervise.Error_record ()

let test_worker_kill_error_record () =
  let board = Sudoku.Puzzles.easy in
  let outs =
    Engine_dist.run ~workers:2 ~kill_worker:(1, 0)
      ~supervision:error_record_cfg (Sudoku.Networks.fig2 ())
      (solve_inputs board)
  in
  let errors = List.filter Snet.Supervise.is_error outs in
  Alcotest.(check bool) "stamped error records delivered" true (errors <> []);
  List.iter
    (fun e ->
      Alcotest.(check (option string))
        "origin names the dead worker" (Some "dist:worker1")
        (Snet.Supervise.error_origin e))
    errors

let test_worker_kill_fail_fast () =
  let board = Sudoku.Puzzles.easy in
  Alcotest.(check bool) "fail-fast raises" true
    (try
       ignore
         (Engine_dist.run ~workers:2 ~kill_worker:(1, 0)
            (Sudoku.Networks.fig2 ()) (solve_inputs board));
       false
     with Failure m -> contains m "dist:worker1")

let test_worker_kill_retry_recovers () =
  let board = Sudoku.Puzzles.easy in
  let reference =
    Snet.Engine_seq.run (Sudoku.Networks.fig2 ()) (solve_inputs board)
  in
  let outs =
    Engine_dist.run ~workers:2 ~kill_worker:(1, 0)
      ~supervision:(Snet.Supervise.make ~policy:(Snet.Supervise.Retry 2) ())
      (Sudoku.Networks.fig2 ()) (solve_inputs board)
  in
  Alcotest.(check bool) "respawned worker recovers the run" true
    (multiset_eq reference outs)

(* ------------------------------------------------------------------ *)
(* Cluster telemetry                                                   *)

(* Metrics aggregation under worker death, one run per supervision
   policy: whatever the policy does with the run itself, the collector
   must keep the dead partition's last report, flag it dead with a
   reason (Retry re-arms it at respawn), and the cluster snapshot must
   stay well-formed and JSON round-trippable. *)
let test_collector_survives_worker_death () =
  let board = Sudoku.Puzzles.easy in
  let run_one supervision col =
    try
      ignore
        (Engine_dist.run ~workers:2 ~kill_worker:(1, 0) ?supervision
           ~collector:col (Sudoku.Networks.fig2 ()) (solve_inputs board))
    with Failure _ -> ()
  in
  List.iter
    (fun (label, supervision, expect_alive, check_survivor) ->
      let col = Obsv.Agg.create () in
      run_one supervision col;
      let cl = Obsv.Agg.cluster col in
      Alcotest.(check int)
        (label ^ ": both partitions tracked")
        2 cl.Obsv.Agg.workers_seen;
      (match
         List.find_opt (fun p -> p.Obsv.Health.part = 1) cl.Obsv.Agg.parts
       with
      | Some p ->
          Alcotest.(check bool)
            (label ^ ": liveness after the kill")
            expect_alive p.Obsv.Health.alive;
          if not expect_alive then
            Alcotest.(check bool)
              (label ^ ": death carries a reason")
              true
              (p.Obsv.Health.reason <> "")
      | None -> Alcotest.failf "%s: killed partition missing" label);
      (match
         List.find_opt (fun p -> p.Obsv.Health.part = 0) cl.Obsv.Agg.parts
       with
      | Some p ->
          (* Under fail-fast the whole run is torn down, which may
             mark the innocent partition dead too — its liveness is
             policy noise, not a collector property. *)
          if check_survivor then
            Alcotest.(check bool)
              (label ^ ": surviving partition alive")
              true p.Obsv.Health.alive
      | None -> Alcotest.failf "%s: surviving partition missing" label);
      match Obsv.Agg.cluster_of_json (Obsv.Agg.cluster_to_json cl) with
      | Ok cl' ->
          Alcotest.(check int)
            (label ^ ": cluster json round-trips")
            (List.length cl.Obsv.Agg.parts)
            (List.length cl'.Obsv.Agg.parts)
      | Error e -> Alcotest.failf "%s: cluster json broken: %s" label e)
    [
      ("fail-fast", None, false, false);
      ("error-record", Some error_record_cfg, false, true);
      ( "retry",
        Some (Snet.Supervise.make ~policy:(Snet.Supervise.Retry 2) ()),
        (* The respawned worker re-Hellos, which re-arms liveness. *)
        true,
        true );
    ]

(* Trace-context propagation across cut edges: the tag rides the wire
   but never leaks into user-visible outputs, and the merged trace
   pairs every cross-edge flow arrow start with exactly one end. *)
let test_trace_propagation_loopback () =
  Obsv.Sink.clear ();
  Obsv.Sink.enable ();
  let col = Obsv.Agg.create () in
  let board = Sudoku.Puzzles.easy in
  let outs =
    Fun.protect
      ~finally:(fun () -> Obsv.Sink.disable ())
      (fun () ->
        Engine_dist.run ~workers:2 ~collector:col (Sudoku.Networks.fig2 ())
          (solve_inputs board))
  in
  Alcotest.(check bool) "outputs solved" true (outs <> []);
  List.iter
    (fun r ->
      Alcotest.(check (option int))
        "no trace tag on outputs" None
        (Record.tag Obsv.Probe.trace_tag r))
    outs;
  let merged =
    Obsv.Agg.merged_trace col ~local_events:(Obsv.Sink.events ())
  in
  Obsv.Sink.clear ();
  (match Obsv.Export.validate (Obsv.Export.render merged) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "merged trace invalid: %s" e);
  let starts, ends =
    List.fold_left
      (fun (s, e) -> function
        | Obsv.Export.Flow_start { id; _ } -> (id :: s, e)
        | Obsv.Export.Flow_end { id; _ } -> (s, id :: e)
        | _ -> (s, e))
      ([], []) merged
  in
  Alcotest.(check bool) "cut-edge flows present" true (starts <> []);
  Alcotest.(check (list int))
    "every flow start meets exactly one end"
    (List.sort compare starts) (List.sort compare ends)

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "crc32 vector" `Quick test_crc32;
    Alcotest.test_case "wire simple round-trip" `Quick test_roundtrip_simple;
    Alcotest.test_case "wire empty record" `Quick test_empty_record;
    Alcotest.test_case "wire error record" `Quick test_error_record_travels;
    Alcotest.test_case "wire unencodable" `Quick test_unencodable;
    Alcotest.test_case "wire validate + garbage" `Quick test_validate_and_garbage;
    Seeded.to_alcotest prop_roundtrip;
    Seeded.to_alcotest prop_corruption;
    Seeded.to_alcotest prop_batch_envelope;
    Alcotest.test_case "proto round-trip" `Quick test_proto_roundtrip;
    Alcotest.test_case "partition" `Quick test_partition;
    Alcotest.test_case "loopback transport" `Quick test_loopback;
    Alcotest.test_case "tcp transport (smoke)" `Quick test_tcp;
    Alcotest.test_case "tcp frames records (smoke)" `Quick test_tcp_frames_records;
    Alcotest.test_case "dist=seq fig2 x{1,2,4}" `Quick test_dist_vs_seq_fig2;
    Alcotest.test_case "dist=seq fig3 x{2,4}" `Quick test_dist_vs_seq_fig3;
    Alcotest.test_case "dist multiple inputs" `Quick test_dist_multiple_inputs;
    Alcotest.test_case "dist credits=1" `Quick test_dist_tiny_credits;
    Alcotest.test_case "dist batch on/off = seq" `Quick test_dist_batch_on_off;
    Alcotest.test_case "dist batch vs window shapes" `Quick
      test_dist_batch_smaller_than_window;
    Alcotest.test_case "worker kill -> error records" `Quick
      test_worker_kill_error_record;
    Alcotest.test_case "worker kill -> fail fast" `Quick
      test_worker_kill_fail_fast;
    Alcotest.test_case "worker kill -> retry recovers" `Quick
      test_worker_kill_retry_recovers;
    Alcotest.test_case "collector survives worker death (all policies)" `Quick
      test_collector_survives_worker_death;
    Alcotest.test_case "trace propagation: tags stripped, flows pair up"
      `Quick test_trace_propagation_loopback;
  ]
