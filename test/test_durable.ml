(* Durable streams: the edge journal's format under fuzzed damage
   (torn tails, bit flips, replayed suffixes), snapshot atomicity, the
   engines' capture/restore cut-point contract, the detcheck
   crash-point matrix (process death armed at every durability seam,
   recovery output multiset-identical to an uninterrupted run), the
   exactly-once wrappers (serve recovery, Replay.run_dist), the
   Engine_dist sequence-watermark resend regression, and — gated on
   SNET_DIST_TCP=1 — a real snet_serve SIGKILLed mid-stream and
   resumed from its journal. *)

module Journal = Durable.Journal
module Snapshot = Durable.Snapshot
module Replay = Durable.Replay
module Server = Serve.Server
module Client = Serve.Client
module Transport = Dist.Transport
module Wire = Dist.Wire
module Engine_dist = Dist.Engine_dist
module Record = Snet.Record
module Value = Snet.Value
module Net = Snet.Net
module P = Snet.Pattern
module Sv = Detcheck.Sched_virtual
module Strategy = Detcheck.Strategy

let () = Sudoku.Netspec.register_codecs ()
let tcp_enabled () = Sys.getenv_opt "SNET_DIST_TCP" = Some "1"
let ping_record x = Record.with_tag "x" x Record.empty
let y_exn r = Record.tag_exn "y" r
let ints = Alcotest.(slist int compare)

let multiset_eq outs1 outs2 =
  let key rs = List.sort compare (List.map Wire.render rs) in
  key outs1 = key outs2

(* --- scratch directories ------------------------------------------ *)

let tmp_counter = ref 0

let rec rm_rf p =
  match Unix.lstat p with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat p e)) (Sys.readdir p);
      (try Unix.rmdir p with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove p with Sys_error _ -> ())

let with_dir f =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "snet_durable_%d_%d" (Unix.getpid ()) !tmp_counter)
  in
  rm_rf d;
  Unix.mkdir d 0o755;
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let read_image dir =
  let ic = open_in_bin (Journal.journal_path dir) in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_entries dir specs =
  let w = Journal.open_writer dir in
  let entries =
    List.map
      (fun (kind, edge, payload) ->
        let seq = Journal.append w ~kind ~edge payload in
        { Journal.seq; kind; edge; payload })
      specs
  in
  Journal.close w;
  entries

(* entries [xs] is a prefix of [ys] *)
let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
  | _ :: _, [] -> false

(* --- journal: fixed cases ----------------------------------------- *)

let test_journal_roundtrip () =
  with_dir (fun dir ->
      let before = (Obsv.Journal_stats.snapshot ()).Obsv.Journal_stats.appends in
      let specs =
        [
          (Journal.Input, "serve:s0.in#1", Wire.render (ping_record 1));
          (Journal.Delivered, "serve:s0.out", Wire.render (ping_record 2));
          (Journal.Open_session, "serve:s1", "32");
          (Journal.Close_session, "serve:s1", "");
          (Journal.Mark, "dist:run", "complete");
          (Journal.Input, "dist:w0.in", String.make 300 '\x00');
        ]
      in
      let written = write_entries dir specs in
      let entries, damage = Journal.read_dir dir in
      Alcotest.(check (option string)) "no damage" None damage;
      Alcotest.(check bool) "round trip" true (entries = written);
      Alcotest.(check bool)
        "sequence numbers monotone" true
        (List.for_all2
           (fun e i -> e.Journal.seq = i + 1)
           entries
           (List.init (List.length entries) Fun.id));
      Alcotest.(check bool)
        "append counter advanced" true
        ((Obsv.Journal_stats.snapshot ()).Obsv.Journal_stats.appends
        >= before + List.length specs);
      (* A reopened writer continues the sequence. *)
      let w = Journal.open_writer dir in
      let seq = Journal.append w ~kind:Journal.Mark ~edge:"x" "later" in
      Journal.close w;
      Alcotest.(check int) "sequence continues after reopen" 7 seq;
      let entries', _ = Journal.read_dir dir in
      Alcotest.(check int) "all entries present" 7 (List.length entries'))

let test_journal_missing_file () =
  with_dir (fun dir ->
      Alcotest.(check bool)
        "missing journal is empty, undamaged" true
        (Journal.read_dir dir = ([], None)))

let test_journal_killed_writer () =
  with_dir (fun dir ->
      let w = Journal.open_writer dir in
      ignore (Journal.append w ~kind:Journal.Input ~edge:"e" "a" : int);
      Journal.kill w;
      Alcotest.(check bool) "killed" true (Journal.killed w);
      (match Journal.append w ~kind:Journal.Input ~edge:"e" "b" with
      | exception Journal.Killed -> ()
      | _ -> Alcotest.fail "append after kill did not raise");
      let entries, damage = Journal.read_dir dir in
      Alcotest.(check (option string)) "no damage" None damage;
      Alcotest.(check int) "nothing persisted after the kill" 1
        (List.length entries))

(* A reopen over a torn tail repairs the file: the damaged bytes are
   truncated away before the first append, so entries written after
   the restart stay reachable — otherwise every post-restart
   write-ahead ack would hide behind the damage forever. *)
let test_journal_torn_tail_repair () =
  with_dir (fun dir ->
      let written =
        write_entries dir
          [ (Journal.Input, "e", "one"); (Journal.Input, "e", "two") ]
      in
      let oc =
        open_out_gen
          [ Open_append; Open_binary ]
          0o644 (Journal.journal_path dir)
      in
      output_string oc "SNJ1\x01garbage-torn";
      close_out oc;
      (let entries, damage = Journal.read_dir dir in
       Alcotest.(check bool) "tail reads as damage" true (damage <> None);
       Alcotest.(check bool) "prefix intact" true (entries = written));
      let w = Journal.open_writer dir in
      let seq = Journal.append w ~kind:Journal.Input ~edge:"e" "three" in
      Journal.close w;
      Alcotest.(check int) "sequence continues past the repair" 3 seq;
      let entries, damage = Journal.read_dir dir in
      Alcotest.(check (option string)) "tail repaired" None damage;
      Alcotest.(check (list string))
        "pre-crash prefix + post-restart appends all visible"
        [ "one"; "two"; "three" ]
        (List.map (fun e -> e.Journal.payload) entries))

(* An unreadable journal (here: the journal path is a directory) must
   read as damage, never as emptiness, and [open_writer] must refuse
   to append over history it cannot read — restarting sequence
   numbering at 1 over an existing journal would corrupt it. *)
let test_journal_unreadable () =
  with_dir (fun dir ->
      let path = Journal.journal_path dir in
      Unix.mkdir path 0o755;
      let entries, damage = Journal.read_file path in
      Alcotest.(check bool) "reported as damage" true (damage <> None);
      Alcotest.(check int) "no entries invented" 0 (List.length entries);
      match Journal.open_writer dir with
      | exception Failure _ -> ()
      | w ->
          Journal.close w;
          Alcotest.fail "open_writer over an unreadable journal succeeded")

(* --- journal: fuzzed damage --------------------------------------- *)

let gen_kind =
  QCheck.Gen.oneofl
    [
      Journal.Input;
      Journal.Delivered;
      Journal.Open_session;
      Journal.Close_session;
      Journal.Mark;
    ]

let gen_entries =
  QCheck.Gen.(
    list_size (int_range 1 12)
      (triple gen_kind
         (string_size ~gen:(char_range 'a' 'z') (int_range 0 20))
         (string_size (int_range 0 60))))

let pp_specs specs =
  String.concat ";"
    (List.map
       (fun (k, e, p) ->
         Printf.sprintf "%s %s %dB" (Journal.kind_to_string k) e
           (String.length p))
       specs)

(* Truncation anywhere — including mid-header and mid-payload (the
   torn last frame) — costs at most the final partial entry: the
   reader returns a prefix of what was written and never raises. *)
let prop_torn_tail =
  QCheck.Test.make ~name:"journal: truncated/torn tail -> valid prefix"
    ~count:150
    (QCheck.pair
       (QCheck.make ~print:pp_specs gen_entries)
       (QCheck.make QCheck.Gen.(int_bound 1000)))
    (fun (specs, cut_scale) ->
      with_dir (fun dir ->
          let written = write_entries dir specs in
          let img = read_image dir in
          let cut = String.length img * cut_scale / 1000 in
          let entries, damage = Journal.parse (String.sub img 0 cut) in
          if not (is_prefix entries written) then
            QCheck.Test.fail_reportf "parsed entries are not a prefix";
          if cut = String.length img then
            entries = written && damage = None
          else if cut > 0 && entries = written then
            QCheck.Test.fail_reportf
              "truncated image yielded every entry (cut %d of %d)" cut
              (String.length img)
          else true))

(* A single flipped bit can never invent an entry: CRC-32 catches it,
   and the scan stops at the damaged entry, keeping the prefix. *)
let prop_bit_flip =
  QCheck.Test.make ~name:"journal: bit flip -> prefix, never a bad entry"
    ~count:150
    (QCheck.triple
       (QCheck.make ~print:pp_specs gen_entries)
       (QCheck.make QCheck.Gen.(int_bound 100_000))
       (QCheck.make QCheck.Gen.(int_bound 7)))
    (fun (specs, pos_scale, bit) ->
      with_dir (fun dir ->
          let written = write_entries dir specs in
          let img = read_image dir in
          let pos = pos_scale mod String.length img in
          let b = Bytes.of_string img in
          Bytes.set b pos
            (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
          let entries, damage = Journal.parse (Bytes.to_string b) in
          if not (is_prefix entries written) then
            QCheck.Test.fail_reportf
              "flip at %d bit %d: parsed entries not a prefix of originals"
              pos bit;
          (* The flipped entry itself must not survive: some entry is
             lost, and the scan reports why. *)
          List.length entries < List.length written && damage <> None))

(* A replayed suffix (duplicate sequence numbers) parses cleanly —
   the format does not require monotone sequences — but [dedupe]
   delivers each sequence number exactly once, first occurrence
   winning. *)
let prop_duplicate_seqs =
  QCheck.Test.make ~name:"journal: replayed suffix never double-delivers"
    ~count:100
    (QCheck.make ~print:pp_specs gen_entries)
    (fun specs ->
      with_dir (fun dir ->
          let written = write_entries dir specs in
          let img = read_image dir in
          let entries, damage = Journal.parse (img ^ img) in
          damage = None
          && List.length entries = 2 * List.length written
          && Journal.dedupe entries = written))

(* --- snapshots ---------------------------------------------------- *)

let sample_state () =
  {
    Snet.Netstate.syncs =
      [
        ( "serial.0/sync",
          {
            Snet.Netstate.slots = [ Some (ping_record 3); None ];
            spent = false;
          } );
      ];
    splits = [ ("split.1", [ 0; 2; 5 ]) ];
    stars = [ ("star.2", 3) ];
  }

let sample_snapshot () =
  {
    Snapshot.spec = "fig2";
    watermark = 42;
    state = sample_state ();
    sessions = [ (0, 16); (3, 4) ];
    queued =
      [ (0, [ Wire.render (ping_record 7); Wire.render (ping_record 8) ]) ];
  }

let test_snapshot_roundtrip () =
  with_dir (fun dir ->
      Alcotest.(check bool) "absent -> None" true (Snapshot.load ~dir = None);
      let t = sample_snapshot () in
      Snapshot.save ~dir t;
      (match Snapshot.load ~dir with
      | None -> Alcotest.fail "saved snapshot did not load"
      | Some t' ->
          Alcotest.(check string) "spec" t.Snapshot.spec t'.Snapshot.spec;
          Alcotest.(check int) "watermark" t.Snapshot.watermark
            t'.Snapshot.watermark;
          Alcotest.(check bool) "net state" true
            (Snet.Netstate.equal t.Snapshot.state t'.Snapshot.state);
          Alcotest.(check bool) "sessions" true
            (t.Snapshot.sessions = t'.Snapshot.sessions);
          Alcotest.(check bool) "queued frames" true
            (t.Snapshot.queued = t'.Snapshot.queued));
      (* Corrupt the file: load must degrade to None, never raise. *)
      let path = Snapshot.path dir in
      let img =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let b = Bytes.of_string img in
      Bytes.set b
        (Bytes.length b / 2)
        (Char.chr (Char.code (Bytes.get b (Bytes.length b / 2)) lxor 0x40));
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      Alcotest.(check bool) "corrupt -> None" true (Snapshot.load ~dir = None))

let test_snapshot_crash_seams () =
  (* Death at the pre seam: the file is untouched. Death at the post
     seam: the rename already happened, the snapshot survives. *)
  with_dir (fun dir ->
      let w = Journal.open_writer dir in
      Journal.arm_crash ~seam:"snapshot.pre" ~crossing:1;
      Fun.protect ~finally:Journal.disarm_crash (fun () ->
          match Snapshot.save ~journal:w ~dir (sample_snapshot ()) with
          | exception Journal.Killed -> ()
          | () -> Alcotest.fail "pre-seam kill not observed");
      Alcotest.(check bool) "nothing persisted" true (Snapshot.load ~dir = None));
  with_dir (fun dir ->
      let w = Journal.open_writer dir in
      Journal.arm_crash ~seam:"snapshot.post" ~crossing:1;
      Fun.protect ~finally:Journal.disarm_crash (fun () ->
          match Snapshot.save ~journal:w ~dir (sample_snapshot ()) with
          | exception Journal.Killed -> ()
          | () -> Alcotest.fail "post-seam kill not observed");
      Alcotest.(check bool) "snapshot survived the crash" true
        (Snapshot.load ~dir <> None))

(* --- engine capture/restore: the cut-point contract ---------------- *)

let record ~f ~t =
  Record.of_list ~fields:(List.map (fun (n, v) -> (n, Value.of_int v)) f)
    ~tags:t

let ab_cell () =
  Net.sync
    [ P.make ~fields:[ "a" ] ~tags:[] (); P.make ~fields:[ "b" ] ~tags:[] () ]

(* A stateful net (sync cells inside a split replicator) and an input
   stream leaving half-filled cells at most cut points. *)
let statey_net () = Net.split (ab_cell ()) "k"

let statey_inputs =
  [
    record ~f:[ ("a", 1) ] ~t:[ ("k", 0) ];
    record ~f:[ ("a", 2) ] ~t:[ ("k", 1) ];
    record ~f:[ ("b", 10) ] ~t:[ ("k", 0) ];
    record ~f:[ ("a", 3) ] ~t:[ ("k", 2) ];
    record ~f:[ ("b", 20) ] ~t:[ ("k", 1) ];
    record ~f:[ ("a", 4) ] ~t:[ ("k", 0) ];
    record ~f:[ ("b", 30) ] ~t:[ ("k", 2) ];
    record ~f:[ ("b", 40) ] ~t:[ ("k", 0) ];
  ]

let rec take k = function
  | [] -> []
  | x :: xs -> if k = 0 then [] else x :: take (k - 1) xs

let rec drop k = function
  | [] -> []
  | xs when k = 0 -> xs
  | _ :: xs -> drop (k - 1) xs

let test_run_state_cut_points () =
  let full = Snet.Engine_seq.run (statey_net ()) statey_inputs in
  for k = 0 to List.length statey_inputs do
    let prefix, st =
      Snet.Engine_seq.run_state (statey_net ()) (take k statey_inputs)
    in
    let suffix =
      Snet.Engine_seq.run ~restore:st (statey_net ()) (drop k statey_inputs)
    in
    Alcotest.(check (list string))
      (Printf.sprintf "cut at %d: prefix @ suffix = uninterrupted run" k)
      (List.map Wire.render full)
      (List.map Wire.render (prefix @ suffix))
  done

let test_conc_capture_restore () =
  let pool = Scheduler.Pool.create ~num_domains:2 () in
  Fun.protect
    ~finally:(fun () -> Scheduler.Pool.shutdown pool)
    (fun () ->
      let reference = Snet.Engine_seq.run (statey_net ()) statey_inputs in
      List.iter
        (fun k ->
          let i1 = Snet.Engine_conc.start ~pool (statey_net ()) in
          List.iter (Snet.Engine_conc.feed i1) (take k statey_inputs);
          let outs1 = Snet.Engine_conc.finish i1 in
          let st = Snet.Engine_conc.capture i1 in
          let i2 = Snet.Engine_conc.start ~pool ~restore:st (statey_net ()) in
          List.iter (Snet.Engine_conc.feed i2) (drop k statey_inputs);
          let outs2 = Snet.Engine_conc.finish i2 in
          Alcotest.(check bool)
            (Printf.sprintf
               "capture at %d: restored instance completes the stream" k)
            true
            (multiset_eq reference (outs1 @ outs2)))
        [ 0; 3; 5; 8 ])

(* --- the detcheck crash-point matrix ------------------------------ *)

(* Process death armed at one durability seam crossing, under the
   virtual scheduler: incarnation 1 (a journal-backed serve instance)
   submits a stream of idempotent requests, polling responses as they
   arrive, until the armed crossing kills every live journal writer —
   from that point the incarnation is a dead process walking, and
   nothing it does is persisted. Incarnation 2 recovers from the
   journal, the client re-attaches and retries every request with its
   original request number, and the run completes. The invariant, for
   every seam, crossing and schedule: the byte-deduped union of
   responses the client saw across both incarnations is
   multiset-identical to an uninterrupted run — nothing lost, nothing
   delivered twice (modulo the redelivery duplicates the dedupe
   removes). *)

let crash_cfg =
  { Server.max_sessions = 4; credits = 16; batch = 4; idle_timeout = 0. }

let ok_or_fail what = function
  | Ok s -> s
  | Error _ -> Alcotest.fail ("unexpected rejection: " ^ what)

let crash_matrix_scenario ~dir ~seam ~crossing ~seed =
  let n = 8 in
  let inputs = List.init n (fun i -> i + 1) in
  Journal.arm_crash ~seam ~crossing;
  let res, _trace =
    Sv.run ~strategy:(Strategy.random ~seed) (fun sched ->
        let exec = Sv.exec sched in
        let dur =
          { Server.dir; fsync_every = 0; snapshot_every = 3; spec = "ping" }
        in
        (* Incarnation 1: run until the armed crossing kills it. *)
        let srv1 =
          Server.create ~exec ~cfg:crash_cfg ~durability:dur
            (Sudoku.Networks.ping ())
        in
        let recv1 = ref [] in
        let sid = ref None in
        let died = ref false in
        (try
           let s = ok_or_fail "open" (Server.open_session srv1) in
           sid := Some (Server.session_id s);
           List.iteri
             (fun i x ->
               (match Server.submit ~req:i srv1 s (ping_record x) with
               | `Ok -> ()
               | `Closed | `Draining -> Alcotest.fail "rejected mid-stream");
               ignore (Server.take_grants srv1 s : int);
               Scheduler.Clock.sleep 0.001;
               recv1 :=
                 !recv1 @ List.map Wire.render (Server.poll srv1 s ~max:16))
             inputs
         with Journal.Killed -> died := true);
        (* The incarnation is dead; its journal is frozen. Quiesce its
           engine fibers so they cannot interfere with the run — none
           of this is persisted, exactly like a real dead process. *)
        Journal.disarm_crash ();
        (try Server.drain srv1 with _ -> ());
        (* Incarnation 2: recover, re-attach, retry everything. *)
        let srv2 =
          Server.create ~exec ~cfg:crash_cfg ~durability:dur
            (Sudoku.Networks.ping ())
        in
        let s2 =
          match !sid with
          | Some id -> (
              match Server.resume_session srv2 id with
              | Ok s -> s
              | Error `Unknown ->
                  (* The crash predated the journaled open: the session
                     never durably existed, so the client starts over. *)
                  ok_or_fail "reopen" (Server.open_session srv2))
          | None -> ok_or_fail "reopen" (Server.open_session srv2)
        in
        List.iteri
          (fun i x ->
            match Server.submit ~req:i srv2 s2 (ping_record x) with
            | `Ok -> ()
            | `Closed | `Draining -> Alcotest.fail "retry rejected")
          inputs;
        Server.drain srv2;
        let recv2 = List.map Wire.render (Server.poll srv2 s2 ~max:1000) in
        (Server.recovery srv2, !died, !recv1, recv2))
  in
  match res with
  | Error e ->
      Journal.disarm_crash ();
      raise e
  | Ok (recovery, died, recv1, recv2) ->
      let label =
        Printf.sprintf
          "seam=%s crossing=%d seed=%d (replay: DETCHECK_SEED=%d dune exec \
           test/main.exe -- test durable)"
          seam crossing seed seed
      in
      (* Byte-dedupe: redelivery after an unjournaled send is the
         documented at-least-once window; the client drops exact
         duplicates. Inputs are distinct, so responses are too. *)
      let seen = Hashtbl.create 32 in
      let union =
        List.filter
          (fun f ->
            if Hashtbl.mem seen f then false
            else begin
              Hashtbl.add seen f ();
              true
            end)
          (recv1 @ recv2)
      in
      let ys =
        List.map
          (fun f ->
            match Wire.read f with
            | Ok r -> y_exn r
            | Error e -> Alcotest.failf "%s: bad frame: %s" label e)
          union
      in
      Alcotest.check ints
        (label ^ ": deduped union = uninterrupted run")
        (List.init 8 (fun i -> i + 2))
        ys;
      (* The second incarnation must have actually recovered whenever
         anything was journaled before the crash. *)
      if recv1 <> [] then
        Alcotest.(check bool)
          (label ^ ": recovery stats present")
          true (recovery <> None);
      died

let test_crash_matrix () =
  let base = Seeded.seed () land 0xFFFF in
  let points =
    [
      ("append", [ 1; 3; 5; 7 ]);
      ("append.post", [ 1; 3; 5; 7 ]);
      ("snapshot.pre", [ 1; 2 ]);
      ("snapshot.post", [ 1; 2 ]);
      ("ack", [ 1; 2; 4; 6 ]);
    ]
  in
  let schedules = ref 0 in
  let crashed = ref 0 in
  Fun.protect ~finally:Journal.disarm_crash (fun () ->
      for round = 0 to 6 do
        List.iter
          (fun (seam, crossings) ->
            List.iter
              (fun crossing ->
                incr schedules;
                with_dir (fun dir ->
                    if
                      crash_matrix_scenario ~dir ~seam ~crossing
                        ~seed:(base + (31 * round) + !schedules)
                    then incr crashed))
              crossings)
          points
      done);
  Alcotest.(check bool)
    (Printf.sprintf "explored %d crash-point schedules (>= 100)" !schedules)
    true (!schedules >= 100);
  (* The arming must actually bite — a mislabeled seam would turn
     every scenario into a vacuous plain restart. *)
  Alcotest.(check bool)
    (Printf.sprintf "armed crashes fired (%d of %d schedules)" !crashed
       !schedules)
    true (2 * !crashed >= !schedules)

(* --- durable serve: embedded restart ------------------------------ *)

let with_pool f =
  let pool = Scheduler.Pool.create ~num_domains:2 () in
  Fun.protect ~finally:(fun () -> Scheduler.Pool.shutdown pool) (fun () -> f pool)

let await ?(timeout = 10.) msg f =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail ("timeout waiting for " ^ msg)
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

(* Submit a stream, receive part of it, die abruptly (every journal
   writer killed at once), restart on the same directory: the resumed
   session must yield exactly the missing responses. *)
let test_embedded_restart () =
  with_dir (fun dir ->
      with_pool (fun pool ->
          let dur =
            { Server.dir; fsync_every = 0; snapshot_every = 0; spec = "ping" }
          in
          let srv =
            Server.create ~pool ~durability:dur (Sudoku.Networks.ping ())
          in
          Alcotest.(check bool)
            "fresh directory is not a recovery" true
            (Server.recovery srv = None);
          let s = ok_or_fail "open" (Server.open_session srv) in
          List.iteri
            (fun i x ->
              match Server.submit ~req:i srv s (ping_record x) with
              | `Ok -> ()
              | _ -> Alcotest.fail "submit rejected")
            (List.init 10 (fun i -> i + 1));
          (* Receive (and thereby journal) part of the stream. *)
          let got1 = ref [] in
          await "four responses" (fun () ->
              got1 := !got1 @ Server.poll srv s ~max:4;
              List.length !got1 >= 4);
          (* Process death: every live writer killed at once. *)
          List.iter Journal.kill (Journal.live_writers ());
          (try Server.drain srv with _ -> ());
          let srv2 =
            Server.create ~pool ~durability:dur (Sudoku.Networks.ping ())
          in
          (match Server.recovery srv2 with
          | None -> Alcotest.fail "no recovery stats after restart"
          | Some r ->
              Alcotest.(check int) "session restored" 1
                r.Server.restored_sessions;
              Alcotest.(check (option string)) "journal intact" None
                r.Server.journal_damage);
          let s2 =
            match Server.resume_session srv2 (Server.session_id s) with
            | Ok s2 -> s2
            | Error `Unknown -> Alcotest.fail "restored session unknown"
          in
          (* Client retry: same request numbers, so nothing re-feeds. *)
          List.iteri
            (fun i x ->
              match Server.submit ~req:i srv2 s2 (ping_record x) with
              | `Ok -> ()
              | _ -> Alcotest.fail "retry rejected")
            (List.init 10 (fun i -> i + 1));
          Server.drain srv2;
          let got2 = Server.poll srv2 s2 ~max:1000 in
          let seen = Hashtbl.create 16 in
          let union =
            List.filter
              (fun r ->
                let f = Wire.render r in
                if Hashtbl.mem seen f then false
                else begin
                  Hashtbl.add seen f ();
                  true
                end)
              (!got1 @ got2)
          in
          Alcotest.check ints "deduped union = uninterrupted run"
            (List.init 10 (fun i -> i + 2))
            (List.map y_exn union)))

let test_req_idempotency () =
  with_dir (fun dir ->
      with_pool (fun pool ->
          let dur =
            { Server.dir; fsync_every = 0; snapshot_every = 0; spec = "ping" }
          in
          let srv =
            Server.create ~pool ~durability:dur (Sudoku.Networks.ping ())
          in
          let s = ok_or_fail "open" (Server.open_session srv) in
          Alcotest.(check bool) "first" true
            (Server.submit ~req:7 srv s (ping_record 1) = `Ok);
          Alcotest.(check bool) "duplicate req acked, not re-fed" true
            (Server.submit ~req:7 srv s (ping_record 1) = `Ok);
          Alcotest.(check bool) "stale req acked, not re-fed" true
            (Server.submit ~req:3 srv s (ping_record 99) = `Ok);
          Server.drain srv;
          let rs = Server.poll srv s ~max:100 in
          Alcotest.check ints "exactly one response" [ 2 ] (List.map y_exn rs)))

(* A recycled session id must not inherit the closed incarnation's
   idempotency floor across a restart: recovery scopes the journal's
   last-req scan to the id's current incarnation (reset at each
   Open/Close_session), so a fresh client's low request numbers are
   real submissions, not "duplicates" to swallow. *)
let test_id_reuse_fresh_reqs () =
  with_dir (fun dir ->
      with_pool (fun pool ->
          let dur =
            { Server.dir; fsync_every = 0; snapshot_every = 0; spec = "ping" }
          in
          let srv =
            Server.create ~pool ~durability:dur (Sudoku.Networks.ping ())
          in
          (* First incarnation of the id: high request numbers, fully
             delivered, then closed. *)
          let s = ok_or_fail "open" (Server.open_session srv) in
          let id = Server.session_id s in
          List.iteri
            (fun i x ->
              match Server.submit ~req:(i + 40) srv s (ping_record x) with
              | `Ok -> ()
              | _ -> Alcotest.fail "submit rejected")
            [ 1; 2; 3 ];
          let got = ref [] in
          await "three responses" (fun () ->
              got := !got @ Server.poll srv s ~max:8;
              List.length !got >= 3);
          Server.close_session srv s;
          (* Second incarnation reuses the id; the process dies before
             it submits anything. *)
          let s' = ok_or_fail "reopen" (Server.open_session srv) in
          Alcotest.(check int) "id recycled" id (Server.session_id s');
          List.iter Journal.kill (Journal.live_writers ());
          (try Server.drain srv with _ -> ());
          let srv2 =
            Server.create ~pool ~durability:dur (Sudoku.Networks.ping ())
          in
          let s2 =
            match Server.resume_session srv2 id with
            | Ok s2 -> s2
            | Error `Unknown -> Alcotest.fail "restored session unknown"
          in
          (* req 0 is below the OLD incarnation's floor (40..42): it
             must be journaled and fed, not acked as a duplicate. *)
          (match Server.submit ~req:0 srv2 s2 (ping_record 10) with
          | `Ok -> ()
          | _ -> Alcotest.fail "fresh req rejected");
          Server.drain srv2;
          let rs = Server.poll srv2 s2 ~max:100 in
          Alcotest.check ints "fresh req actually fed" [ 11 ]
            (List.map y_exn rs)))

let test_snapshot_bounds_replay () =
  with_dir (fun dir ->
      with_pool (fun pool ->
          let dur =
            { Server.dir; fsync_every = 0; snapshot_every = 2; spec = "ping" }
          in
          let srv =
            Server.create ~pool ~durability:dur (Sudoku.Networks.ping ())
          in
          let s = ok_or_fail "open" (Server.open_session srv) in
          List.iteri
            (fun i x ->
              match Server.submit ~req:i srv s (ping_record x) with
              | `Ok -> ()
              | _ -> Alcotest.fail "submit rejected")
            (List.init 8 (fun i -> i + 1));
          let got = ref [] in
          await "all responses" (fun () ->
              got := !got @ Server.poll srv s ~max:16;
              List.length !got >= 8);
          Alcotest.(check bool) "a snapshot was persisted" true
            (Snapshot.load ~dir <> None);
          List.iter Journal.kill (Journal.live_writers ());
          (try Server.drain srv with _ -> ());
          let srv2 =
            Server.create ~pool ~durability:dur (Sudoku.Networks.ping ())
          in
          (match Server.recovery srv2 with
          | None -> Alcotest.fail "no recovery stats"
          | Some r ->
              Alcotest.(check bool) "recovered from a snapshot" true
                r.Server.from_snapshot;
              Alcotest.(check bool)
                (Printf.sprintf "replay bounded by the snapshot (%d < 8)"
                   r.Server.replayed)
                true (r.Server.replayed < 8));
          Server.drain srv2))

(* --- Replay.run_dist: exactly-once across incarnations ------------- *)

let solve_inputs board = [ Sudoku.Boxes.inject_board board ]

let test_replay_dist_complete () =
  with_dir (fun dir ->
      let board = Sudoku.Puzzles.easy in
      let reference =
        Snet.Engine_seq.run (Sudoku.Networks.fig2 ()) (solve_inputs board)
      in
      let outs =
        Replay.run_dist ~dir (fun ~tap ->
            Engine_dist.run ~workers:2 ~tap (Sudoku.Networks.fig2 ())
              (solve_inputs board))
      in
      Alcotest.(check bool) "run output multiset-equal to reference" true
        (multiset_eq reference outs);
      let entries, damage = Journal.read_dir dir in
      Alcotest.(check (option string)) "journal undamaged" None damage;
      Alcotest.(check bool) "completion marked" true
        (Replay.is_complete entries);
      Alcotest.(check bool)
        "journaled Delivered stream = output multiset" true
        (List.sort compare (Replay.delivered_frames entries)
        = List.sort compare (List.map Wire.render reference)))

let test_replay_dist_crash_resume () =
  with_dir (fun dir ->
      let board = Sudoku.Puzzles.easy in
      let reference =
        Snet.Engine_seq.run (Sudoku.Networks.fig2 ()) (solve_inputs board)
      in
      (* Incarnation 1: the journal writer dies at the second append;
         the run itself winds down, persisting nothing further.
         [~flush_every:1] pins entry-by-entry persistence so the test
         can assert exactly which entries survived the kill. *)
      Journal.arm_crash ~seam:"append" ~crossing:2;
      Fun.protect ~finally:Journal.disarm_crash (fun () ->
          ignore
            (Replay.run_dist ~dir ~flush_every:1 (fun ~tap ->
                 Engine_dist.run ~workers:2 ~tap (Sudoku.Networks.fig2 ())
                   (solve_inputs board))
              : Record.t list));
      let entries1, _ = Journal.read_dir dir in
      Alcotest.(check bool) "crashed run is not marked complete" false
        (Replay.is_complete entries1);
      (* Appends are serialized, so the crash at the second one left
         exactly the first entry on disk. *)
      Alcotest.(check int) "the crash cut the journal short" 1
        (List.length entries1);
      (* Incarnation 2: same directory; the dedupe budget swallows the
         outputs the first incarnation already journaled. *)
      let outs =
        Replay.run_dist ~dir (fun ~tap ->
            Engine_dist.run ~workers:2 ~tap (Sudoku.Networks.fig2 ())
              (solve_inputs board))
      in
      Alcotest.(check bool) "second incarnation recomputes everything" true
        (multiset_eq reference outs);
      let entries, damage = Journal.read_dir dir in
      Alcotest.(check (option string)) "journal undamaged" None damage;
      Alcotest.(check bool) "completion marked" true
        (Replay.is_complete entries);
      Alcotest.(check bool)
        "across both incarnations: every output journaled exactly once" true
        (List.sort compare (Replay.delivered_frames entries)
        = List.sort compare (List.map Wire.render reference)))

(* --- Engine_dist: the watermark resend regression ------------------ *)

(* The bug this pins down: under [Retry], the coordinator used to
   resend every uncredited in-flight record to the respawned worker.
   A worker that died after flushing an envelope's outputs but before
   its credit was observed ([crash_flush]) then recomputed those
   outputs — duplicates in the global output. The per-worker sequence
   watermark (tag [dist_seq], carried through by flow inheritance)
   drops the already-processed prefix of the resend. *)
let test_watermark_no_duplicate_resend () =
  let board = Sudoku.Puzzles.easy in
  let reference =
    Snet.Engine_seq.run (Sudoku.Networks.fig2 ()) (solve_inputs board)
  in
  List.iter
    (fun after ->
      let outs =
        Engine_dist.run ~workers:2 ~kill_worker:(1, after) ~crash_flush:true
          ~supervision:(Snet.Supervise.make ~policy:(Snet.Supervise.Retry 2) ())
          (Sudoku.Networks.fig2 ())
          (solve_inputs board)
      in
      Alcotest.(check bool)
        (Printf.sprintf
           "crash-flush after %d records: no duplicates, nothing lost" after)
        true
        (multiset_eq reference outs))
    [ 1; 3 ]

let test_watermark_stripped_from_output () =
  let board = Sudoku.Puzzles.easy in
  let outs =
    Engine_dist.run ~workers:2 (Sudoku.Networks.fig2 ()) (solve_inputs board)
  in
  Alcotest.(check bool) "dist_seq never leaks into the output" true
    (List.for_all (fun r -> Record.tag "dist_seq" r = None) outs)

(* --- snet_serve: SIGKILL, restart, resume (gated) ------------------ *)

let find_serve_exe () =
  match Sys.getenv_opt "SNET_SERVE_EXE" with
  | Some p -> Some p
  | None ->
      let dir = Filename.dirname Sys.executable_name in
      List.find_opt Sys.file_exists
        (List.map (Filename.concat dir)
           [ Filename.concat ".." (Filename.concat "bin" "snet_serve.exe") ])

(* Spawn snet_serve with stdout on a pipe and parse the banner's
   ephemeral TCP port. *)
let spawn_serve exe args =
  let out_r, out_w = Unix.pipe () in
  let pid =
    Unix.create_process exe
      (Array.of_list (exe :: args))
      Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let ic = Unix.in_channel_of_descr out_r in
  let deadline = Unix.gettimeofday () +. 15. in
  let rec find_port () =
    if Unix.gettimeofday () > deadline then
      Alcotest.fail "snet_serve banner not seen within 15s"
    else
      match input_line ic with
      | exception End_of_file -> Alcotest.fail "snet_serve exited prematurely"
      | line -> (
          try Scanf.sscanf line "snet_serve: listening tcp=%d" Fun.id
          with Scanf.Scan_failure _ | Failure _ | End_of_file -> find_port ())
  in
  let port = find_port () in
  (* Keep the pipe drained so the daemon can never block on stdout. *)
  ignore
    (Thread.create
       (fun () -> try while true do ignore (input_line ic) done with _ -> ())
       ()
      : Thread.t);
  (pid, port)

let test_sigkill_resume () =
  if not (tcp_enabled ()) then Alcotest.skip ()
  else
    match find_serve_exe () with
    | None -> Alcotest.fail "snet_serve.exe not found; set SNET_SERVE_EXE"
    | Some exe ->
        with_dir (fun dir ->
            let args =
              [ "--spec"; "ping"; "--journal"; dir; "--snapshot-every"; "4";
                "--port"; "0" ]
            in
            let pid, port = spawn_serve exe args in
            let killed = ref false in
            let sid, recv1 =
              Fun.protect
                ~finally:(fun () ->
                  if not !killed then begin
                    (try Unix.kill pid Sys.sigkill
                     with Unix.Unix_error _ -> ());
                    ignore (Unix.waitpid [] pid)
                  end)
                (fun () ->
                  let conn =
                    Transport.erase
                      (module Transport.Tcp)
                      (Transport.Tcp.connect ~host:"127.0.0.1" ~port)
                  in
                  let c = Result.get_ok (Client.connect ~credits:32 conn) in
                  for i = 1 to 12 do
                    match Client.submit c (ping_record i) with
                    | `Ok -> ()
                    | _ -> Alcotest.fail "submit failed"
                  done;
                  (* Receive part of the stream, SIGKILL mid-delivery,
                     then drain what the dead server had already
                     written to the socket. *)
                  let recv1 = ref [] in
                  let rec pull k =
                    if k > 0 then
                      match Client.recv c with
                      | `Record r ->
                          recv1 := Wire.render r :: !recv1;
                          pull (k - 1)
                      | `Done | `Crashed _ -> ()
                  in
                  pull 4;
                  Unix.kill pid Sys.sigkill;
                  killed := true;
                  ignore (Unix.waitpid [] pid);
                  (try pull max_int with _ -> ());
                  (Client.session c, !recv1))
            in
            (* What the journal accepted is what the restarted server
               owes: exactly one response per journaled input. *)
            let entries, _ = Journal.read_dir dir in
            let accepted =
              List.filter_map
                (fun e ->
                  if e.Journal.kind = Journal.Input then
                    match Wire.read e.Journal.payload with
                    | Ok r -> Record.tag "x" r
                    | Error _ -> None
                  else None)
                (Journal.dedupe entries)
            in
            Alcotest.(check bool) "some inputs were journaled" true
              (accepted <> []);
            let expected =
              List.sort compare (List.map (fun x -> x + 1) accepted)
            in
            let pid2, port2 = spawn_serve exe args in
            Fun.protect
              ~finally:(fun () ->
                (try Unix.kill pid2 Sys.sigterm with Unix.Unix_error _ -> ());
                ignore (Unix.waitpid [] pid2))
              (fun () ->
                let conn2 =
                  Transport.erase
                    (module Transport.Tcp)
                    (Transport.Tcp.connect ~host:"127.0.0.1" ~port:port2)
                in
                let c2 =
                  match Client.connect ~credits:32 ~resume:sid conn2 with
                  | Ok c2 -> c2
                  | Error e -> Alcotest.fail ("resume rejected: " ^ e)
                in
                Alcotest.(check int) "same session id" sid (Client.session c2);
                (* Read until the deduped union covers every journaled
                   input — redelivered duplicates (sent by the dead
                   server but never journaled) are dropped by byte
                   equality. *)
                let seen = Hashtbl.create 32 in
                List.iter (fun f -> Hashtbl.replace seen f ()) recv1;
                let union = ref (Hashtbl.fold (fun f () a -> f :: a) seen []) in
                let deadline = Unix.gettimeofday () +. 20. in
                let rec collect () =
                  if
                    List.length !union < List.length expected
                    && Unix.gettimeofday () < deadline
                  then
                    match Client.recv c2 with
                    | `Record r ->
                        let f = Wire.render r in
                        if not (Hashtbl.mem seen f) then begin
                          Hashtbl.add seen f ();
                          union := f :: !union
                        end;
                        collect ()
                    | `Done -> ()
                    | `Crashed e -> Alcotest.fail ("resumed session: " ^ e)
                in
                collect ();
                let ys =
                  List.map
                    (fun f ->
                      match Wire.read f with
                      | Ok r -> y_exn r
                      | Error e -> Alcotest.fail ("bad frame: " ^ e))
                    !union
                in
                Alcotest.check ints
                  "deduped union = one response per journaled input" expected
                  ys;
                Client.close c2))

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "journal round-trip, reopen continues" `Quick
      test_journal_roundtrip;
    Alcotest.test_case "missing journal is empty" `Quick
      test_journal_missing_file;
    Alcotest.test_case "killed writer persists nothing further" `Quick
      test_journal_killed_writer;
    Alcotest.test_case "torn tail repaired on reopen" `Quick
      test_journal_torn_tail_repair;
    Alcotest.test_case "unreadable journal is damage, not emptiness" `Quick
      test_journal_unreadable;
    Seeded.to_alcotest prop_torn_tail;
    Seeded.to_alcotest prop_bit_flip;
    Seeded.to_alcotest prop_duplicate_seqs;
    Alcotest.test_case "snapshot round-trip + corruption" `Quick
      test_snapshot_roundtrip;
    Alcotest.test_case "snapshot crash seams (pre/post)" `Quick
      test_snapshot_crash_seams;
    Alcotest.test_case "run_state: every cut point resumes exactly" `Quick
      test_run_state_cut_points;
    Alcotest.test_case "conc capture/restore at quiescence" `Quick
      test_conc_capture_restore;
    Alcotest.test_case "crash-point matrix (detcheck, >= 100 schedules)" `Slow
      test_crash_matrix;
    Alcotest.test_case "embedded durable restart" `Quick test_embedded_restart;
    Alcotest.test_case "request idempotency" `Quick test_req_idempotency;
    Alcotest.test_case "recycled id resets idempotency floor" `Quick
      test_id_reuse_fresh_reqs;
    Alcotest.test_case "snapshot bounds recovery replay" `Quick
      test_snapshot_bounds_replay;
    Alcotest.test_case "replay_dist: complete run journaled once" `Quick
      test_replay_dist_complete;
    Alcotest.test_case "replay_dist: crash + resume = exactly once" `Quick
      test_replay_dist_crash_resume;
    Alcotest.test_case "watermark: crash-flush resend deduped" `Quick
      test_watermark_no_duplicate_resend;
    Alcotest.test_case "watermark: seq tag stripped from output" `Quick
      test_watermark_stripped_from_output;
    Alcotest.test_case "snet_serve SIGKILL + journal resume (tcp)" `Quick
      test_sigkill_resume;
  ]
