(* The elastic distribution layer: the cost-model planner that turns
   placement hints into Dist.Plan stages, the health-driven balancer,
   and a crash-point matrix for live migration — 100+ schedules
   varying the shard width, the migrated partition, the migration
   timing and mid-freeze worker death, each checked multiset-identical
   against the sequential reference. Everything is hermetic (loopback
   transport, in-process worker threads). *)

module Plan = Dist.Plan
module Engine_dist = Dist.Engine_dist
module Eplan = Elastic.Plan
module Balancer = Elastic.Balancer
module Record = Snet.Record
module Net = Snet.Net

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let multiset_eq outs1 outs2 =
  let key rs = List.sort compare (List.map Dist.Wire.render rs) in
  key outs1 = key outs2

(* A tag-passthrough box: enough structure for the planner, which only
   reads the spine shape and the hints. *)
let pbox name =
  Net.box
    (Snet.Box.make ~name ~input:[ Snet.Box.T "x" ]
       ~outputs:[ [ Snet.Box.T "x" ] ]
       (fun ~emit vs -> emit 1 vs))

let plan_of net ~workers =
  match Eplan.of_net ~workers net with
  | Ok p -> p
  | Error e -> Alcotest.failf "planner failed: %s" e

let plan_err net ~workers needle =
  match Eplan.of_net ~workers net with
  | Ok p -> Alcotest.failf "planner accepted (%s), wanted %S" (Plan.encode p) needle
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error names the problem: %s" e)
        true (contains e needle)

(* ------------------------------------------------------------------ *)
(* Planner                                                             *)

let test_has_hints () =
  Alcotest.(check bool) "no hints on the bare net" false
    (Eplan.has_hints (Sudoku.Networks.shard ()));
  Alcotest.(check bool) "@shards detected" true
    (Eplan.has_hints (Sudoku.Networks.shard ~shards:2 ()));
  Alcotest.(check bool) "@weight detected" true
    (Eplan.has_hints
       (Net.serial (pbox "a") (Net.place ~weight:3 (pbox "b"))))

let test_plan_shard_net () =
  let net = Sudoku.Networks.shard ~shards:3 () in
  (* Exact budget: route | 3 replicas | merge. *)
  let p = plan_of net ~workers:5 in
  Alcotest.(check string) "exact fit" "0,1!3,2" (Plan.encode p);
  Alcotest.(check int) "five partitions" 5 (Plan.parts p);
  (* Surplus budget is capped at the net's placeable slots, like the
     legacy contiguous cut. *)
  let p = plan_of net ~workers:8 in
  Alcotest.(check string) "surplus capped" "0,1!3,2" (Plan.encode p);
  (* Too little budget names the culprit. *)
  plan_err net ~workers:4 "at least 5 partitions";
  (* The human rendering used by --stats. *)
  let d = Eplan.describe p net in
  Alcotest.(check bool) "describe shows the plan line" true
    (contains d "plan: seg 0 | seg 1 sharded x3 | seg 2");
  Alcotest.(check bool) "describe lists shard slots" true
    (contains d "seg 1 shard 0/3" && contains d "seg 1 shard 2/3")

let test_plan_pins () =
  let abc ?place_b ?place_c () =
    let wrap p n = match p with None -> n | Some w -> Net.place ~place:w n in
    Net.serial_list
      [ pbox "a"; wrap place_b (pbox "b"); wrap place_c (pbox "c") ]
  in
  let p = plan_of (abc ~place_b:1 ()) ~workers:3 in
  Alcotest.(check string) "pin honored, one segment per partition" "0,1,2"
    (Plan.encode p);
  (* A pin the preceding segments cannot fill. *)
  plan_err (abc ~place_b:2 ()) ~workers:4 "leaves a gap";
  (* Pins must be strictly increasing: the second pin lands on a
     partition the first already occupied. *)
  plan_err (abc ~place_b:1 ~place_c:1 ()) ~workers:4 "is not after";
  (* The first segment always starts at partition 0. *)
  plan_err
    (Net.serial (Net.place ~place:1 (pbox "a")) (pbox "b"))
    ~workers:3 "starts at partition 0"

let test_plan_weights () =
  let net ?weight_a () =
    let a =
      match weight_a with
      | None -> pbox "a"
      | Some w -> Net.place ~weight:w (pbox "a")
    in
    Net.serial_list [ a; pbox "b"; pbox "c"; pbox "d" ]
  in
  (* Unweighted, two partitions: the box-count-balanced cut. *)
  Alcotest.(check string) "even cut" "0-1,2-3"
    (Plan.encode (plan_of (net ()) ~workers:2));
  (* A heavy first segment pulls the cut forward. *)
  Alcotest.(check string) "weight shifts the cut" "0,1-3"
    (Plan.encode (plan_of (net ~weight_a:5 ()) ~workers:2))

let test_plan_errors () =
  plan_err
    (Net.serial (Net.place ~shards:2 (pbox "a")) (pbox "b"))
    ~workers:4 "only applies to a parallel replication";
  plan_err
    (Net.serial (Net.place ~weight:0 (pbox "a")) (pbox "b"))
    ~workers:2 "@weight 0 must be >= 1";
  plan_err (Sudoku.Networks.shard ~shards:2 ()) ~workers:0 "must be positive"

(* ------------------------------------------------------------------ *)
(* Balancer                                                            *)

let shard_inputs n =
  List.init n (fun i -> Record.of_list ~fields:[] ~tags:[ ("x", i) ])

(* End-to-end rebalance: partition 0 (the route segment, which every
   record crosses) is throttled, so its coordinator-side queue grows;
   the balancer must notice within a few health reports, migrate it
   onto a fresh (unthrottled) worker, and the output must stay
   multiset-identical to the sequential reference. *)
let test_balancer_rebalances_skewed_run () =
  let inputs = shard_inputs 400 in
  let net () = Sudoku.Networks.shard ~shards:2 () in
  let reference = Snet.Engine_seq.run (net ()) inputs in
  let plan = plan_of (net ()) ~workers:4 in
  let col = Obsv.Agg.create () in
  let policy =
    {
      Balancer.default_policy with
      Balancer.tick = 0.05;
      queue_hi = 4;
      sustain = 2;
      cooldown = 0.5;
      max_migrations = 2;
    }
  in
  let moves = ref [] in
  let moves_mu = Mutex.create () in
  let bal = ref None in
  let outs =
    Fun.protect
      ~finally:(fun () ->
        match !bal with Some b -> Balancer.stop b | None -> ())
      (fun () ->
        Engine_dist.run ~workers:4 ~plan ~collector:col
          ~worker_throttle:(0, 4000)
          ~on_handle:(fun h ->
            bal :=
              Some
                (Balancer.start ~policy
                   ~on_migrate:(fun ~part r ->
                     Mutex.lock moves_mu;
                     moves := (part, r) :: !moves;
                     Mutex.unlock moves_mu)
                   ~collector:col ~handle:h ()))
          (net ()) inputs)
  in
  let b = match !bal with Some b -> b | None -> Alcotest.fail "no handle" in
  Alcotest.(check bool) "at least one migration fired" true
    (Balancer.migrations b >= 1);
  Alcotest.(check bool) "the hot partition was the one moved" true
    (List.exists
       (fun (part, r) -> part = 0 && Result.is_ok r)
       !moves);
  Alcotest.(check bool) "rebalanced output multiset equal" true
    (multiset_eq reference outs);
  match
    List.find_opt
      (fun p -> p.Obsv.Health.part = 0)
      (Obsv.Agg.cluster col).Obsv.Agg.parts
  with
  | Some p ->
      Alcotest.(check bool) "health row counts the move" true
        (p.Obsv.Health.migrations >= 1)
  | None -> Alcotest.fail "partition 0 missing from cluster"

(* The balancer never touches a healthy run: same net, no skew, a
   policy that would trigger on any congestion. *)
let test_balancer_leaves_healthy_run_alone () =
  let inputs = shard_inputs 64 in
  let net () = Sudoku.Networks.shard ~shards:2 () in
  let reference = Snet.Engine_seq.run (net ()) inputs in
  let plan = plan_of (net ()) ~workers:4 in
  let col = Obsv.Agg.create () in
  let bal = ref None in
  let outs =
    Fun.protect
      ~finally:(fun () ->
        match !bal with Some b -> Balancer.stop b | None -> ())
      (fun () ->
        Engine_dist.run ~workers:4 ~plan ~collector:col
          ~on_handle:(fun h ->
            bal := Some (Balancer.start ~collector:col ~handle:h ()))
          (net ()) inputs)
  in
  (match !bal with
  | Some b -> Alcotest.(check int) "no migrations" 0 (Balancer.migrations b)
  | None -> Alcotest.fail "no handle");
  Alcotest.(check bool) "output untouched" true (multiset_eq reference outs)

(* ------------------------------------------------------------------ *)
(* Migration crash-point matrix                                        *)

(* 108 schedules: shard width x migrated partition (route, a shard
   replica, merge) x migration delay (racing the in-flight stream and
   the Eof drain) x mode (single move, double move of the same
   partition, worker death mid-freeze). Every schedule must end
   multiset-identical to the sequential reference — no record lost or
   duplicated — whatever the migration outcome (a refusal because the
   run already drained is a legitimate outcome; a wrong multiset is
   not). Failures print one replay line per schedule. *)
type mig_mode = Once | Twice | Kill

let mode_name = function Once -> "once" | Twice -> "twice" | Kill -> "kill"

let run_schedule ~reference ~net ~plan ~target ~delay ~mode inputs =
  let migr = ref None in
  let outs =
    Engine_dist.run
      ~workers:(Plan.parts plan)
      ~plan
      ~worker_throttle:(0, 250)
      ?kill_in_freeze:(if mode = Kill then Some target else None)
      ~supervision:(Snet.Supervise.make ~policy:(Snet.Supervise.Retry 2) ())
      ~on_handle:(fun h ->
        migr :=
          Some
            (Thread.create
               (fun () ->
                 if delay > 0. then Thread.delay delay;
                 ignore (Engine_dist.migrate h target);
                 if mode = Twice then ignore (Engine_dist.migrate h target))
               ()))
      (net ()) inputs
  in
  (match !migr with Some t -> Thread.join t | None -> ());
  multiset_eq reference outs

let test_migration_schedule_matrix () =
  let inputs = shard_inputs 24 in
  let schedules = ref 0 and failures = ref [] in
  List.iter
    (fun shards ->
      let net () = Sudoku.Networks.shard ~shards () in
      let reference = Snet.Engine_seq.run (net ()) inputs in
      let plan = plan_of (net ()) ~workers:(shards + 2) in
      let parts = Plan.parts plan in
      List.iter
        (fun target ->
          List.iter
            (fun delay ->
              List.iter
                (fun mode ->
                  incr schedules;
                  if
                    not
                      (run_schedule ~reference ~net ~plan ~target ~delay ~mode
                         inputs)
                  then begin
                    let line =
                      Printf.sprintf
                        "replay: shards=%d target=%d delay_ms=%g mode=%s"
                        shards target (delay *. 1000.) (mode_name mode)
                    in
                    Printf.printf "%s\n%!" line;
                    failures := line :: !failures
                  end)
                [ Once; Twice; Kill ])
            [ 0.; 0.001; 0.003; 0.006; 0.012; 0.025 ])
        [ 0; 1; parts - 1 ])
    [ 2; 3 ];
  Alcotest.(check bool) "matrix covers 100+ schedules" true (!schedules >= 100);
  if !failures <> [] then
    Alcotest.failf "%d/%d schedules diverged:\n%s" (List.length !failures)
      !schedules
      (String.concat "\n" (List.rev !failures))

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "planner: hint detection" `Quick test_has_hints;
    Alcotest.test_case "planner: sharded net" `Quick test_plan_shard_net;
    Alcotest.test_case "planner: pins" `Quick test_plan_pins;
    Alcotest.test_case "planner: weights" `Quick test_plan_weights;
    Alcotest.test_case "planner: errors" `Quick test_plan_errors;
    Alcotest.test_case "balancer rebalances a skewed run" `Quick
      test_balancer_rebalances_skewed_run;
    Alcotest.test_case "balancer leaves a healthy run alone" `Quick
      test_balancer_leaves_healthy_run_alone;
    Alcotest.test_case "migration crash-point matrix (108 schedules)" `Quick
      test_migration_schedule_matrix;
  ]
