(* Both engines: reference semantics sequentially, equivalence
   concurrently. *)

module Net = Snet.Net
module Box = Snet.Box
module Filter = Snet.Filter
module P = Snet.Pattern
module Record = Snet.Record
module Value = Snet.Value
module Seq_e = Snet.Engine_seq
module Conc_e = Snet.Engine_conc

let record ~f ~t =
  Record.of_list ~fields:(List.map (fun (n, v) -> (n, Value.of_int v)) f) ~tags:t

let tags_of name records = List.filter_map (Record.tag name) records

let with_pool n f =
  let pool = Scheduler.Pool.create ~num_domains:n () in
  Fun.protect ~finally:(fun () -> Scheduler.Pool.shutdown pool) (fun () ->
      f pool)

(* box inc ((<x>) -> (<x>)) *)
let inc =
  Box.make ~name:"inc" ~input:[ T "x" ] ~outputs:[ [ T "x" ] ]
    (fun ~emit -> function
      | [ Tag x ] -> emit 1 [ Tag (x + 1) ]
      | _ -> assert false)

(* box dup ((<x>) -> (<x>)): emits x and x+100. *)
let dup =
  Box.make ~name:"dup" ~input:[ T "x" ] ~outputs:[ [ T "x" ] ]
    (fun ~emit -> function
      | [ Tag x ] ->
          emit 1 [ Tag x ];
          emit 1 [ Tag (x + 100) ]
      | _ -> assert false)

(* box drop_odd ((<x>) -> (<x>)): odd inputs vanish. *)
let drop_odd =
  Box.make ~name:"dropOdd" ~input:[ T "x" ] ~outputs:[ [ T "x" ] ]
    (fun ~emit -> function
      | [ Tag x ] -> if x mod 2 = 0 then emit 1 [ Tag x ]
      | _ -> assert false)

let xs_in values = List.map (fun x -> record ~f:[] ~t:[ ("x", x) ]) values

let test_seq_pipeline () =
  let net = Net.serial (Net.box inc) (Net.box inc) in
  Alcotest.(check (list int)) "x+2" [ 3; 12 ]
    (tags_of "x" (Seq_e.run net (xs_in [ 1; 10 ])))

let test_seq_multi_emission_dfs () =
  (* dup .. dup: depth-first expansion of each input record. *)
  let net = Net.serial (Net.box dup) (Net.box dup) in
  Alcotest.(check (list int)) "DFS order" [ 0; 100; 100; 200 ]
    (tags_of "x" (Seq_e.run net (xs_in [ 0 ])))

let test_seq_dropping () =
  let net = Net.box drop_odd in
  Alcotest.(check (list int)) "odds vanish" [ 2; 4 ]
    (tags_of "x" (Seq_e.run net (xs_in [ 1; 2; 3; 4 ])))

(* Choice routing: records with <neg> go left, others right; the left
   branch is more specific for records carrying both labels. *)
let test_seq_choice_best_match () =
  let negate =
    Box.make ~name:"negate" ~input:[ T "x"; T "neg" ] ~outputs:[ [ T "x" ] ]
      (fun ~emit -> function
        | [ Tag x; Tag _ ] -> emit 1 [ Tag (-x) ]
        | _ -> assert false)
  in
  let net = Net.choice (Net.box negate) (Net.box inc) in
  let out =
    Seq_e.run net
      [
        record ~f:[] ~t:[ ("x", 5) ];
        record ~f:[] ~t:[ ("x", 5); ("neg", 1) ];
      ]
  in
  Alcotest.(check (list int)) "routing" [ 6; -5 ] (tags_of "x" out)

let test_seq_choice_no_match () =
  let net = Net.choice (Net.box inc) (Net.box drop_odd) in
  Alcotest.(check bool) "route error" true
    (try ignore (Seq_e.run net [ record ~f:[ ("y", 0) ] ~t:[] ]); false
     with Snet.Typecheck.Type_error _ | Seq_e.Route_error _ -> true)

(* Star: count down to zero, then exit with <done>. *)
let countdown =
  Box.make ~name:"countdown" ~input:[ T "x" ]
    ~outputs:[ [ T "x" ]; [ T "x"; T "done" ] ]
    (fun ~emit -> function
      | [ Tag x ] ->
          if x <= 0 then emit 2 [ Tag 0; Tag 1 ] else emit 1 [ Tag (x - 1) ]
      | _ -> assert false)

let done_pattern = P.make ~fields:[] ~tags:[ "done" ] ()

let test_seq_star_unfolding () =
  let stats = Snet.Stats.create () in
  let net = Net.star (Net.box countdown) done_pattern in
  let out = Seq_e.run ~stats net (xs_in [ 5 ]) in
  Alcotest.(check (list int)) "one result" [ 1 ] (tags_of "done" out);
  let s = Snet.Stats.snapshot stats in
  (* 5 -> 4 -> ... -> 0 -> done: six replicas deep. *)
  Alcotest.(check int) "six stages" 6 s.Snet.Stats.max_star_depth;
  (* A second record reuses the same replicas. *)
  let stats2 = Snet.Stats.create () in
  ignore (Seq_e.run ~stats:stats2 net (xs_in [ 5; 3 ]));
  Alcotest.(check int) "stage count unchanged by shallower record" 6
    (Snet.Stats.snapshot stats2).Snet.Stats.max_star_depth

let test_seq_star_immediate_exit () =
  let net = Net.star (Net.box countdown) done_pattern in
  let out = Seq_e.run net [ record ~f:[] ~t:[ ("x", 9); ("done", 7) ] ] in
  (* Tapped before the first replica: the record leaves untouched. *)
  Alcotest.(check (list int)) "immediate exit" [ 9 ] (tags_of "x" out)

let test_seq_split_replicas () =
  let stats = Snet.Stats.create () in
  let net = Net.split (Net.box inc) "k" in
  let inputs =
    List.map
      (fun (x, k) -> record ~f:[] ~t:[ ("x", x); ("k", k) ])
      [ (1, 0); (2, 1); (3, 0); (4, 2) ]
  in
  let out = Seq_e.run ~stats net inputs in
  Alcotest.(check (list int)) "all processed" [ 2; 3; 4; 5 ] (tags_of "x" out);
  Alcotest.(check int) "three replicas (k=0,1,2)" 3
    (Snet.Stats.snapshot stats).Snet.Stats.split_replicas;
  Alcotest.(check bool) "missing tag is a route error" true
    (try ignore (Seq_e.run net (xs_in [ 1 ])); false
     with Snet.Typecheck.Type_error _ -> true)

let test_seq_observer () =
  let edges = ref [] in
  let observer ~edge _r = edges := edge :: !edges in
  let net = Net.observe "probe" (Net.box inc) in
  ignore (Seq_e.run ~observer net (xs_in [ 1 ]));
  Alcotest.(check bool) "probe edge seen" true
    (List.exists (fun e -> String.length e >= 6 && String.sub e 0 6 = "/probe") !edges);
  Alcotest.(check bool) "box edge seen" true
    (List.exists (fun e -> Filename.basename e = "box:inc") !edges)

(* ---- concurrent engine ---- *)

let test_conc_pipeline_order () =
  with_pool 2 (fun pool ->
      let net = Net.serial (Net.box inc) (Net.box dup) in
      let out = Conc_e.run ~pool net (xs_in [ 1; 2; 3 ]) in
      (* A pure pipeline preserves order even without det combinators. *)
      Alcotest.(check (list int)) "pipeline FIFO" [ 2; 102; 3; 103; 4; 104 ]
        (tags_of "x" out))

let test_conc_matches_seq_det () =
  with_pool 2 (fun pool ->
      (* Deterministic combinators: outputs must match the sequential
         engine exactly, including order. *)
      let net =
        Net.serial
          (Net.split ~det:true (Net.serial (Net.box dup) (Net.box drop_odd)) "k")
          (Net.box inc)
      in
      let inputs =
        List.concat_map
          (fun k ->
            List.map (fun x -> record ~f:[] ~t:[ ("x", x); ("k", k) ]) [ 2; 5 ])
          [ 0; 1; 2 ]
      in
      let expected = tags_of "x" (Seq_e.run net inputs) in
      for _round = 1 to 5 do
        let got = tags_of "x" (Conc_e.run ~pool net inputs) in
        Alcotest.(check (list int)) "det split = reference order" expected got
      done)

let test_conc_det_choice_order () =
  with_pool 2 (fun pool ->
      let negate =
        Box.make ~name:"negate" ~input:[ T "x"; T "neg" ] ~outputs:[ [ T "x" ] ]
          (fun ~emit -> function
            | [ Tag x; Tag _ ] -> emit 1 [ Tag (-x) ]
            | _ -> assert false)
      in
      let net = Net.choice ~det:true (Net.box negate) (Net.box dup) in
      let inputs =
        List.concat_map
          (fun x ->
            [ record ~f:[] ~t:[ ("x", x) ]; record ~f:[] ~t:[ ("x", x); ("neg", 1) ] ])
          [ 1; 2; 3; 4; 5 ]
      in
      let expected = tags_of "x" (Seq_e.run net inputs) in
      for _round = 1 to 5 do
        Alcotest.(check (list int)) "det choice = reference order" expected
          (tags_of "x" (Conc_e.run ~pool net inputs))
      done)

let test_conc_det_star_order () =
  with_pool 2 (fun pool ->
      let net = Net.star ~det:true (Net.box countdown) done_pattern in
      let inputs = xs_in [ 5; 0; 3; 7; 1 ] in
      let expected = tags_of "x" (Seq_e.run net inputs) in
      for _round = 1 to 5 do
        Alcotest.(check (list int)) "det star groups by input order" expected
          (tags_of "x" (Conc_e.run ~pool net inputs))
      done)

let test_conc_nondet_multiset () =
  with_pool 3 (fun pool ->
      let net = Net.split (Net.serial (Net.box dup) (Net.box inc)) "k" in
      let inputs =
        List.init 20 (fun i -> record ~f:[] ~t:[ ("x", i); ("k", i mod 4) ])
      in
      let expected = List.sort compare (tags_of "x" (Seq_e.run net inputs)) in
      let got = List.sort compare (tags_of "x" (Conc_e.run ~pool net inputs)) in
      Alcotest.(check (list int)) "same multiset" expected got)

let test_conc_star_unfolding_stats () =
  with_pool 2 (fun pool ->
      let stats = Snet.Stats.create () in
      let net = Net.star (Net.box countdown) done_pattern in
      ignore (Conc_e.run ~pool ~stats net (xs_in [ 5 ]));
      let s = Snet.Stats.snapshot stats in
      Alcotest.(check int) "six stages" 6 s.Snet.Stats.max_star_depth;
      (* Scheduler observability: the run's actor activations execute
         as pool tasks, and the delta is attributed to this run. *)
      Alcotest.(check bool) "pool tasks attributed to the run" true
        (s.Snet.Stats.sched_tasks > 0);
      Alcotest.(check bool) "scheduler counters non-negative" true
        (s.Snet.Stats.sched_steals >= 0
        && s.Snet.Stats.sched_parks >= 0
        && s.Snet.Stats.sched_splits >= 0))

exception Boom

let test_conc_box_failure () =
  with_pool 2 (fun pool ->
      let bomb =
        Box.make ~name:"bomb" ~input:[ T "x" ] ~outputs:[ [ T "x" ] ]
          (fun ~emit -> function
            | [ Tag x ] -> if x = 3 then raise Boom else emit 1 [ Tag x ]
            | _ -> assert false)
      in
      Alcotest.(check bool) "failure surfaces at finish" true
        (try ignore (Conc_e.run ~pool (Net.box bomb) (xs_in [ 1; 2; 3 ])); false
         with Boom -> true))

let test_conc_feed_finish_cycles () =
  with_pool 2 (fun pool ->
      let inst = Conc_e.start ~pool (Net.box inc) in
      Conc_e.feed inst (record ~f:[] ~t:[ ("x", 1) ]);
      let first = Conc_e.finish inst in
      Alcotest.(check (list int)) "first batch" [ 2 ] (tags_of "x" first);
      Conc_e.feed inst (record ~f:[] ~t:[ ("x", 10) ]);
      let second = Conc_e.finish inst in
      Alcotest.(check (list int)) "outputs accumulate" [ 2; 11 ]
        (tags_of "x" second))

let test_conc_admission_check () =
  with_pool 2 (fun pool ->
      let inst = Conc_e.start ~pool (Net.box inc) in
      Alcotest.(check bool) "bad record rejected at feed" true
        (try Conc_e.feed inst (record ~f:[ ("y", 0) ] ~t:[]); false
         with Snet.Typecheck.Type_error _ -> true))

let test_conc_zero_worker_pool () =
  with_pool 0 (fun pool ->
      let net = Net.serial (Net.box dup) (Net.box inc) in
      Alcotest.(check (list int)) "runs on the caller" [ 1; 101 ]
        (tags_of "x" (Conc_e.run ~pool net (xs_in [ 0 ]))))

(* Randomised differential test: pipelines of pure components behave
   identically on both engines. *)
let prop_engines_agree =
  QCheck.Test.make ~name:"conc engine = seq engine on deterministic nets"
    ~count:25
    (QCheck.make QCheck.Gen.(list_size (int_range 1 30) (int_range 0 50)))
    (fun values ->
      let net =
        Net.serial (Net.box dup)
          (Net.serial (Net.box drop_odd)
             (Net.star ~det:true (Net.box countdown) done_pattern))
      in
      let inputs = xs_in values in
      let expected = tags_of "x" (Seq_e.run net inputs) in
      let pool = Scheduler.Pool.create ~num_domains:2 () in
      Fun.protect
        ~finally:(fun () -> Scheduler.Pool.shutdown pool)
        (fun () ->
          let got = tags_of "x" (Conc_e.run ~pool net inputs) in
          got = expected))

let suite =
  [
    Alcotest.test_case "seq: pipeline" `Quick test_seq_pipeline;
    Alcotest.test_case "seq: DFS emission order" `Quick test_seq_multi_emission_dfs;
    Alcotest.test_case "seq: dropping boxes" `Quick test_seq_dropping;
    Alcotest.test_case "seq: best-match choice" `Quick test_seq_choice_best_match;
    Alcotest.test_case "seq: unroutable record" `Quick test_seq_choice_no_match;
    Alcotest.test_case "seq: star unfolding" `Quick test_seq_star_unfolding;
    Alcotest.test_case "seq: star immediate exit" `Quick test_seq_star_immediate_exit;
    Alcotest.test_case "seq: split replicas" `Quick test_seq_split_replicas;
    Alcotest.test_case "seq: observer" `Quick test_seq_observer;
    Alcotest.test_case "conc: pipeline order" `Quick test_conc_pipeline_order;
    Alcotest.test_case "conc: det split matches reference" `Quick test_conc_matches_seq_det;
    Alcotest.test_case "conc: det choice matches reference" `Quick test_conc_det_choice_order;
    Alcotest.test_case "conc: det star matches reference" `Quick test_conc_det_star_order;
    Alcotest.test_case "conc: nondet multiset" `Quick test_conc_nondet_multiset;
    Alcotest.test_case "conc: star stats" `Quick test_conc_star_unfolding_stats;
    Alcotest.test_case "conc: box failure" `Quick test_conc_box_failure;
    Alcotest.test_case "conc: feed/finish cycles" `Quick test_conc_feed_finish_cycles;
    Alcotest.test_case "conc: admission check" `Quick test_conc_admission_check;
    Alcotest.test_case "conc: zero-worker pool" `Quick test_conc_zero_worker_pool;
    Seeded.to_alcotest prop_engines_agree;
  ]
