(* Supervision across all three engines: error records, retry,
   timeouts, and the streams-layer failure/backpressure behaviour the
   supervision layer leans on. *)

module Net = Snet.Net
module Box = Snet.Box
module P = Snet.Pattern
module Record = Snet.Record
module Value = Snet.Value
module Sup = Snet.Supervise
module Seq_e = Snet.Engine_seq
module Conc_e = Snet.Engine_conc
module Thread_e = Snet.Engine_thread
module Channel = Streams.Channel
module Actors = Streams.Actors

let record ~f ~t =
  Record.of_list ~fields:(List.map (fun (n, v) -> (n, Value.of_int v)) f) ~tags:t

let xs_in values = List.map (fun x -> record ~f:[] ~t:[ ("x", x) ]) values
let tags_of name records = List.filter_map (Record.tag name) records

let with_pool n f =
  let pool = Scheduler.Pool.create ~num_domains:n () in
  Fun.protect ~finally:(fun () -> Scheduler.Pool.shutdown pool) (fun () ->
      f pool)

(* box flaky ((<x>) -> (<x>)): raises on every multiple of 10. *)
let flaky =
  Box.make ~name:"flaky" ~input:[ T "x" ] ~outputs:[ [ T "x" ] ]
    (fun ~emit -> function
      | [ Tag x ] ->
          if x mod 10 = 0 then failwith "injected fault"
          else emit 1 [ Tag (x * 3) ]
      | _ -> assert false)

let shift =
  Box.make ~name:"shift" ~input:[ T "x" ] ~outputs:[ [ T "x" ] ]
    (fun ~emit -> function
      | [ Tag x ] -> emit 1 [ Tag (x + 1) ]
      | _ -> assert false)

let flaky_net () = Net.serial (Net.box flaky) (Net.box shift)
let record_cfg = Sup.make ~policy:Sup.Error_record ()

(* Canonical multiset view: error-record fields render through their
   keys, so equal records print equally whichever engine built them. *)
let multiset records = List.sort compare (List.map Record.to_string records)

(* The acceptance scenario: a 1-in-10 failing box under [Error_record]
   yields the same multiset of success + error records on all three
   engines, and nothing hangs. *)
let test_error_record_all_engines () =
  let inputs = xs_in (List.init 30 (fun i -> i)) in
  let seq = Seq_e.run ~supervision:record_cfg (flaky_net ()) inputs in
  let conc =
    with_pool 2 (fun pool ->
        Conc_e.run ~pool ~supervision:record_cfg (flaky_net ()) inputs)
  in
  let thr = Thread_e.run ~supervision:record_cfg (flaky_net ()) inputs in
  List.iter
    (fun (engine, outs) ->
      let errors = List.filter Sup.is_error outs in
      Alcotest.(check int) (engine ^ ": all records accounted") 30
        (List.length outs);
      Alcotest.(check int) (engine ^ ": three failures") 3
        (List.length errors);
      List.iter
        (fun e ->
          Alcotest.(check (option string)) (engine ^ ": origin box")
            (Some "flaky") (Sup.error_origin e);
          Alcotest.(check bool) (engine ^ ": message kept") true
            (match Sup.error_message e with
            | Some m -> Snet.Trace.contains ~needle:"injected fault" m
            | None -> false))
        errors)
    [ ("seq", seq); ("conc", conc); ("thread", thr) ];
  Alcotest.(check (list string)) "seq = conc as multisets" (multiset seq)
    (multiset conc);
  Alcotest.(check (list string)) "seq = thread as multisets" (multiset seq)
    (multiset thr)

(* Error records flow-inherit the failing input: the <x> tag survives
   and the shift box downstream never sees the record. *)
let test_error_record_flow_inheritance () =
  let out = Seq_e.run ~supervision:record_cfg (flaky_net ()) (xs_in [ 10 ]) in
  match out with
  | [ e ] ->
      Alcotest.(check bool) "tagged <error>" true (Sup.is_error e);
      Alcotest.(check (option int)) "input tag inherited, not shifted"
        (Some 10) (Record.tag "x" e)
  | _ -> Alcotest.fail "expected exactly one error record"

let test_fail_fast_raises_everywhere () =
  let expect_failure engine run =
    Alcotest.(check bool) (engine ^ ": Failure propagates") true
      (try
         ignore (run (flaky_net ()) (xs_in [ 1; 10; 2 ]));
         false
       with Failure _ -> true)
  in
  expect_failure "seq" (fun net ins -> Seq_e.run net ins);
  with_pool 2 (fun pool ->
      expect_failure "conc" (fun net ins -> Conc_e.run ~pool net ins));
  expect_failure "thread" (fun net ins -> Thread_e.run net ins)

(* Retry: a box that fails twice per record then succeeds recovers
   under [Retry 3] with no error records; the stats show the retries. *)
let test_retry_recovers () =
  let attempts = Hashtbl.create 8 in
  let eventually =
    Box.make ~name:"eventually" ~input:[ T "x" ] ~outputs:[ [ T "x" ] ]
      (fun ~emit -> function
        | [ Tag x ] ->
            let seen =
              Option.value ~default:0 (Hashtbl.find_opt attempts x)
            in
            Hashtbl.replace attempts x (seen + 1);
            if seen < 2 then failwith "transient" else emit 1 [ Tag x ]
        | _ -> assert false)
  in
  let stats = Snet.Stats.create () in
  let out =
    Seq_e.run ~stats
      ~supervision:(Sup.make ~policy:(Sup.Retry 3) ())
      (Net.box eventually) (xs_in [ 1; 2 ])
  in
  Alcotest.(check (list int)) "both recover" [ 1; 2 ] (tags_of "x" out);
  let s = Snet.Stats.snapshot stats in
  Alcotest.(check int) "two retries per record" 4 s.Snet.Stats.box_retries;
  Alcotest.(check int) "no exhausted failures" 0 s.Snet.Stats.box_errors

let test_retry_exhausted_emits_error () =
  let stats = Snet.Stats.create () in
  let out =
    Seq_e.run ~stats
      ~supervision:(Sup.make ~policy:(Sup.Retry 1) ())
      (flaky_net ()) (xs_in [ 10 ])
  in
  Alcotest.(check int) "error record after exhaustion" 1
    (List.length (List.filter Sup.is_error out));
  let s = Snet.Stats.snapshot stats in
  Alcotest.(check int) "one retry burned" 1 s.Snet.Stats.box_retries;
  Alcotest.(check int) "one terminal failure" 1 s.Snet.Stats.box_errors

(* Post-hoc timeout: a slow box trips its budget; under [Error_record]
   the timeout becomes an error record, under the default it raises. *)
let test_timeout () =
  let slow =
    Box.make ~name:"slow" ~input:[ T "x" ] ~outputs:[ [ T "x" ] ]
      (fun ~emit -> function
        | [ Tag x ] ->
            Thread.delay 0.02;
            emit 1 [ Tag x ]
        | _ -> assert false)
  in
  Alcotest.(check bool) "fail-fast: Box_timeout raised" true
    (try
       ignore
         (Seq_e.run
            ~supervision:(Sup.make ~timeout:0.001 ())
            (Net.box slow) (xs_in [ 1 ]));
       false
     with Sup.Box_timeout _ -> true);
  let stats = Snet.Stats.create () in
  let out =
    Seq_e.run ~stats
      ~supervision:(Sup.make ~policy:Sup.Error_record ~timeout:0.001 ())
      (Net.box slow) (xs_in [ 1 ])
  in
  (match List.filter Sup.is_error out with
  | [ e ] ->
      Alcotest.(check bool) "timeout named in message" true
        (match Sup.error_message e with
        | Some m -> Snet.Trace.contains ~needle:"Box_timeout" m
        | None -> false)
  | _ -> Alcotest.fail "expected one timeout error record");
  Alcotest.(check bool) "timeout counted" true
    ((Snet.Stats.snapshot stats).Snet.Stats.box_timeouts >= 1)

(* Error records bypass combinators: a failure inside a split replica
   or a star body surfaces at the network output (with the replica's
   routing tag intact) instead of wedging the region. *)
let test_error_bypass_split_and_star () =
  let split_net = Net.split (Net.box flaky) "x" in
  let out =
    with_pool 2 (fun pool ->
        Conc_e.run ~pool ~supervision:record_cfg split_net
          (xs_in [ 10; 11; 20 ]))
  in
  let errors = List.filter Sup.is_error out in
  Alcotest.(check int) "both failing replicas report" 2 (List.length errors);
  Alcotest.(check (list int)) "routing tags preserved" [ 10; 20 ]
    (List.sort compare (tags_of "x" errors));
  (* countdown-style star: the body fails at 5, the error exits at the
     next tap instead of unfolding forever. *)
  let decr_flaky =
    Box.make ~name:"decrFlaky" ~input:[ T "x" ]
      ~outputs:[ [ T "x" ]; [ T "x"; T "done" ] ]
      (fun ~emit -> function
        | [ Tag x ] ->
            if x = 5 then failwith "injected fault"
            else if x <= 0 then emit 2 [ Tag 0; Tag 1 ]
            else emit 1 [ Tag (x - 1) ]
        | _ -> assert false)
  in
  let star_net =
    Net.star (Net.box decr_flaky) (P.make ~fields:[] ~tags:[ "done" ] ())
  in
  let out = Seq_e.run ~supervision:record_cfg star_net (xs_in [ 8; 3 ]) in
  Alcotest.(check int) "failing input becomes one error" 1
    (List.length (List.filter Sup.is_error out));
  Alcotest.(check (list int)) "healthy input still terminates" [ 1 ]
    (tags_of "done" out)

(* A handler that raises mid-batch must not take the rest of the batch
   with it: remaining messages drain, the failure is re-raised at
   await_quiescence. *)
let test_actor_failure_keeps_draining () =
  with_pool 2 (fun pool ->
      let sys = Actors.system ~pool ~batch:64 () in
      let handled = Atomic.make 0 in
      let a =
        Actors.spawn sys ~name:"bombed" (fun m ->
            if m = 5 then failwith "handler bomb"
            else Atomic.incr handled)
      in
      List.iter (Actors.send a) (List.init 10 (fun i -> i));
      Alcotest.(check bool) "await re-raises" true
        (try
           Actors.await_quiescence sys;
           false
         with Failure _ -> true);
      Alcotest.(check int) "other nine messages handled" 9
        (Atomic.get handled);
      Alcotest.(check bool) "failure recorded" true
        (Actors.failure sys <> None))

(* Closing a channel must wake both a sender blocked on a full buffer
   (raising [Closed]) and a receiver blocked on an empty one. *)
let test_close_wakes_blocked_send_and_recv () =
  let full = Channel.create ~capacity:1 () in
  Channel.send full 0;
  let sender_result = ref `Pending in
  let sender =
    Thread.create
      (fun () ->
        try
          Channel.send full 1;
          sender_result := `Sent
        with Channel.Closed -> sender_result := `Raised)
      ()
  in
  Thread.delay 0.05;
  Channel.close full;
  Thread.join sender;
  Alcotest.(check bool) "blocked sender raised Closed" true
    (!sender_result = `Raised);
  Alcotest.(check bool) "buffered element survives" true
    (Channel.recv full = `Msg 0);
  let empty = Channel.create ~capacity:1 () in
  let recv_result = ref `Pending in
  let receiver =
    Thread.create
      (fun () ->
        recv_result :=
          match Channel.recv empty with
          | `Closed -> `Saw_close
          | `Msg _ -> `Saw_msg)
      ()
  in
  Thread.delay 0.05;
  Channel.close empty;
  Thread.join receiver;
  Alcotest.(check bool) "blocked receiver drained to Closed" true
    (!recv_result = `Saw_close)

(* Property: however many messages a producer pushes at a slow actor,
   the bounded mailbox never holds more than its bound — backpressure
   parks the producer instead of letting the queue grow. *)
let prop_mailbox_never_exceeds_bound =
  QCheck.Test.make ~name:"bounded mailbox respects its bound" ~count:25
    (QCheck.make
       QCheck.Gen.(pair (int_range 1 8) (int_range 1 120))
       ~print:(fun (m, n) -> Printf.sprintf "mailbox=%d msgs=%d" m n))
    (fun (mailbox, n) ->
      with_pool 2 (fun pool ->
          let sys = Actors.system ~pool ~batch:4 ~mailbox () in
          let max_seen = ref 0 in
          let self = ref None in
          let a =
            Actors.spawn sys ~name:"slow" (fun _ ->
                (match !self with
                | Some a -> max_seen := max !max_seen (Actors.mailbox_length a)
                | None -> ());
                Thread.delay 0.0002)
          in
          self := Some a;
          for i = 1 to n do
            Actors.send a i
          done;
          Actors.await_quiescence sys;
          !max_seen <= mailbox))

let suite =
  [
    Alcotest.test_case "error-record: identical multisets on 3 engines" `Quick
      test_error_record_all_engines;
    Alcotest.test_case "error records flow-inherit the input" `Quick
      test_error_record_flow_inheritance;
    Alcotest.test_case "fail-fast raises on 3 engines" `Quick
      test_fail_fast_raises_everywhere;
    Alcotest.test_case "retry recovers from transient failures" `Quick
      test_retry_recovers;
    Alcotest.test_case "retry exhaustion yields an error record" `Quick
      test_retry_exhausted_emits_error;
    Alcotest.test_case "per-box timeout" `Quick test_timeout;
    Alcotest.test_case "errors bypass split and star" `Quick
      test_error_bypass_split_and_star;
    Alcotest.test_case "actor failure keeps the batch draining" `Quick
      test_actor_failure_keeps_draining;
    Alcotest.test_case "close wakes blocked send and recv" `Quick
      test_close_wakes_blocked_send_and_recv;
    Seeded.to_alcotest prop_mailbox_never_exceeds_bound;
  ]
