(* Obsv.Jsonx edge cases. This codec backs every BENCH_*.json
   artifact, the snet_top snapshot files and the serve HTTP gateway,
   so it gets its own fuzz: escape handling, deep nesting, duplicate
   keys, and a QCheck render/parse round-trip over arbitrary
   documents. *)

module J = Obsv.Jsonx

let parse_ok s =
  match J.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

(* --- string escapes ------------------------------------------------ *)

let test_escaped_strings () =
  (* Every escape form JSON defines, incl. \u with hex digits of both
     cases, and a raw control byte the renderer must re-escape. *)
  let cases =
    [
      ({|"\n\t\r\b\f"|}, "\n\t\r\b\012");
      ({|"\\\"\/"|}, {|\"/|});
      ({|"Az"|}, "Az");
      ({|"é"|}, "\xc3\xa9");
      (* é as UTF-8 *)
      ({|"€"|}, "\xe2\x82\xac");
      (* € as three-byte UTF-8 *)
      ({|"\u0041"|}, "A");
      ({|"\u00e9"|}, "\xc3\xa9");
      ({|"\u20ac"|}, "\xe2\x82\xac");
      ({|"mixed A and plain"|}, "mixed A and plain");
    ]
  in
  List.iter
    (fun (doc, want) ->
      match parse_ok doc with
      | J.Str got -> Alcotest.(check string) doc want got
      | _ -> Alcotest.failf "%s did not parse to a string" doc)
    cases;
  (* Render must escape what it writes: control chars, quote,
     backslash — and the result must parse back to the same value. *)
  let nasty = "quote\" backslash\\ newline\n nul\x00 tab\t" in
  let doc = J.render (J.Str nasty) in
  (match J.parse doc with
  | Ok (J.Str got) -> Alcotest.(check string) "nasty round-trip" nasty got
  | Ok _ -> Alcotest.fail "nasty rendered to a non-string"
  | Error e -> Alcotest.failf "nasty render does not parse: %s" e);
  (* Malformed escapes are rejected, not silently dropped. *)
  List.iter
    (fun bad ->
      match J.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed %s" bad)
    [ {|"\q"|}; {|"\u12"|}; {|"\u12g4"|}; "\"unterminated" ]

(* --- deep nesting -------------------------------------------------- *)

let test_deep_nesting () =
  let depth = 500 in
  let doc =
    String.concat "" (List.init depth (fun _ -> "["))
    ^ "1"
    ^ String.concat "" (List.init depth (fun _ -> "]"))
  in
  let v = parse_ok doc in
  let rec unwrap n = function
    | J.List [ inner ] -> unwrap (n + 1) inner
    | J.Num f when f = 1.0 -> n
    | _ -> Alcotest.fail "unexpected shape while unwrapping"
  in
  Alcotest.(check int) "500 levels survive" depth (unwrap 0 v);
  (* And the same document survives our own renderer. *)
  Alcotest.(check bool)
    "deep render reparses" true
    (match J.parse (J.render v) with Ok v' -> v' = v | Error _ -> false);
  (* Deep objects too. *)
  let odoc =
    String.concat "" (List.init depth (fun _ -> {|{"k":|}))
    ^ "null"
    ^ String.concat "" (List.init depth (fun _ -> "}"))
  in
  let rec ounwrap n = function
    | J.Obj [ ("k", inner) ] -> ounwrap (n + 1) inner
    | J.Null -> n
    | _ -> Alcotest.fail "unexpected object shape"
  in
  Alcotest.(check int) "500 object levels" depth (ounwrap 0 (parse_ok odoc))

(* --- duplicate keys ------------------------------------------------ *)

let test_duplicate_keys () =
  match parse_ok {|{"a":1,"b":2,"a":3}|} with
  | J.Obj fields ->
      (* The parser preserves duplicates in order; [member] answers
         with the first binding, the way most JSON consumers do. *)
      Alcotest.(check int) "all bindings kept" 3 (List.length fields);
      Alcotest.(check (list string))
        "order preserved" [ "a"; "b"; "a" ] (List.map fst fields);
      (match J.member "a" (J.Obj fields) with
      | Some (J.Num f) -> Alcotest.(check int) "member = first" 1
            (int_of_float f)
      | _ -> Alcotest.fail "member \"a\" missing")
  | _ -> Alcotest.fail "not an object"

(* --- QCheck render/parse round-trip -------------------------------- *)

(* Arbitrary documents: finite floats only (JSON has no NaN/inf — the
   renderer degrades NaN to null by design, so it is excluded rather
   than asserted on) and printable-plus-control strings to exercise
   the escaper. *)
let gen_doc =
  let open QCheck.Gen in
  let gen_float =
    oneof
      [
        map float_of_int (int_range (-1_000_000) 1_000_000);
        map (fun f -> if Float.is_finite f then f else 0.5) float;
        return 0.25;
        return (-1.5e-7);
      ]
  in
  let gen_string =
    string_size ~gen:(map Char.chr (int_range 0 127)) (int_range 0 12)
  in
  let base =
    oneof
      [
        return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun f -> J.Num f) gen_float;
        map (fun s -> J.Str s) gen_string;
      ]
  in
  let doc =
    fix
      (fun self depth ->
        if depth = 0 then base
        else
          frequency
            [
              (2, base);
              ( 1,
                map (fun l -> J.List l) (list_size (int_range 0 4)
                  (self (depth - 1))) );
              ( 1,
                map
                  (fun kvs -> J.Obj kvs)
                  (list_size (int_range 0 4)
                     (pair gen_string (self (depth - 1)))) );
            ])
      3
  in
  doc

let prop_roundtrip =
  QCheck.Test.make ~name:"jsonx: parse (render v) = v" ~count:500
    (QCheck.make gen_doc) (fun v ->
      match J.parse (J.render v) with
      | Ok v' -> v' = v
      | Error _ -> false)

let prop_roundtrip_indent =
  QCheck.Test.make ~name:"jsonx: indented render parses to v" ~count:200
    (QCheck.make gen_doc) (fun v ->
      match J.parse (J.render ~indent:true v) with
      | Ok v' -> v' = v
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "string escapes in and out" `Quick test_escaped_strings;
    Alcotest.test_case "500-deep arrays and objects" `Quick test_deep_nesting;
    Alcotest.test_case "duplicate keys preserved, member takes first" `Quick
      test_duplicate_keys;
    Seeded.to_alcotest prop_roundtrip;
    Seeded.to_alcotest prop_roundtrip_indent;
  ]
