(* The S-Net surface language: lexer, parser, elaboration. *)

module L = Snet_lang.Lexer
module T = Snet_lang.Token
module Parser = Snet_lang.Parser
module Ast = Snet_lang.Ast
module E = Snet_lang.Elaborate
module P = Snet.Pattern

let tokens src = List.map fst (L.tokenize src)

let token_t = Alcotest.testable (fun fmt t -> Format.fprintf fmt "%s" (T.to_string t)) ( = )

let test_lexer_basics () =
  Alcotest.(check (list token_t)) "symbols"
    [ T.LPAREN; T.RPAREN; T.DOTDOT; T.BARBAR; T.BAR; T.STARSTAR; T.STAR;
      T.BANGBANG; T.BANG; T.ARROW; T.EOF ]
    (tokens "( ) .. || | ** * !! ! ->");
  Alcotest.(check (list token_t)) "words and numbers"
    [ T.KW_NET; T.KW_BOX; T.KW_CONNECT; T.IDENT "foo"; T.INT 42; T.EOF ]
    (tokens "net box connect foo 42")

let test_lexer_tags_vs_comparisons () =
  (* The paper's guard '<level> > 40' must lex tag-then-GT. *)
  Alcotest.(check (list token_t)) "tag then comparison"
    [ T.TAG "level"; T.GT; T.INT 40; T.EOF ]
    (tokens "<level> > 40");
  Alcotest.(check (list token_t)) "bare < is comparison"
    [ T.INT 1; T.LT; T.INT 2; T.EOF ]
    (tokens "1 < 2");
  Alcotest.(check (list token_t)) "<= is LE"
    [ T.TAG "k"; T.LE; T.INT 3; T.EOF ]
    (tokens "<k> <= 3");
  Alcotest.(check (list token_t)) "< ident without > stays comparison"
    [ T.INT 1; T.LT; T.IDENT "x"; T.EOF ]
    (tokens "1 < x")

let test_lexer_comments () =
  Alcotest.(check (list token_t)) "comments skipped"
    [ T.IDENT "a"; T.IDENT "b"; T.EOF ]
    (tokens "a // to end of line\nb /* block\n comment */");
  Alcotest.(check bool) "unterminated block" true
    (try ignore (tokens "/* oops"); false with L.Lex_error _ -> true);
  Alcotest.(check bool) "stray char" true
    (try ignore (tokens "§"); false with L.Lex_error _ -> true)

let test_lexer_positions () =
  match L.tokenize "a\n  b" with
  | [ (T.IDENT "a", p1); (T.IDENT "b", p2); (T.EOF, _) ] ->
      Alcotest.(check int) "line 1" 1 p1.L.line;
      Alcotest.(check int) "line 2" 2 p2.L.line;
      Alcotest.(check int) "column 3" 3 p2.L.column
  | _ -> Alcotest.fail "unexpected token stream"

let roundtrip src = Ast.expr_to_string (Parser.parse_expr_string src)

let test_parser_precedence () =
  (* Postfix binds tighter than .., which binds tighter than ||. *)
  Alcotest.(check string) "serial vs parallel"
    "((a .. b) || c)" (roundtrip "a .. b || c");
  Alcotest.(check string) "postfix star"
    "((a ** {<done>}) .. b)" (roundtrip "a ** {<done>} .. b");
  Alcotest.(check string) "split then star"
    "((a !! <k>) ** {<done>})" (roundtrip "(a !! <k>) ** {<done>}");
  Alcotest.(check string) "left assoc serial"
    "((a .. b) .. c)" (roundtrip "a .. b .. c");
  Alcotest.(check string) "det choice"
    "(a | b)" (roundtrip "a | b")

let test_parser_guarded_star () =
  Alcotest.(check string) "guarded exit pattern"
    "(a * ({<level>} | <level> > 40))"
    (roundtrip "a * ({<level>} | <level> > 40)")

let test_parser_filter () =
  Alcotest.(check string) "paper's filter"
    "[{a,b,<c>} -> {a, z=a, <t>}; {b, a=b, <c>=(<c>+1)}]"
    (roundtrip "[{a,b,<c>} -> {a, z=a, <t>}; {b, a=b, <c>=<c>+1}]");
  Alcotest.(check string) "throttle"
    "[{<k>} -> {<k>=(<k>%4)}]" (roundtrip "[{<k>} -> {<k>=<k>%4}]");
  Alcotest.(check string) "deletion filter"
    "[{<junk>} -> ]" (roundtrip "[{<junk>} ->]")

let test_parser_errors () =
  let bad src =
    try ignore (Parser.parse_expr_string src); false
    with Parser.Parse_error _ -> true
  in
  Alcotest.(check bool) "dangling serial" true (bad "a ..");
  Alcotest.(check bool) "star without pattern" true (bad "a ** b");
  Alcotest.(check bool) "split without tag" true (bad "a !! b");
  Alcotest.(check bool) "unbalanced paren" true (bad "(a .. b");
  Alcotest.(check bool) "filter missing arrow" true (bad "[{a} {b}]")

let test_parser_net_def () =
  let nd =
    Parser.parse_string
      {|
      net outer {
        box f ((a) -> (b) | (b, <t>));
        net inner {
          box g ((b) -> (c));
        } connect g .. g;
      } connect f .. inner;
    |}
  in
  Alcotest.(check string) "name" "outer" nd.Ast.net_name;
  Alcotest.(check int) "two declarations" 2 (List.length nd.Ast.decls);
  (match nd.Ast.decls with
  | [ Ast.DBox b; Ast.DNet inner ] ->
      Alcotest.(check string) "box name" "f" b.Ast.box_name;
      Alcotest.(check int) "two output variants" 2 (List.length b.Ast.box_outputs);
      Alcotest.(check string) "inner net" "inner" inner.Ast.net_name
  | _ -> Alcotest.fail "unexpected declarations");
  Alcotest.(check string) "body" "(f .. inner)" (Ast.expr_to_string nd.Ast.body)

let test_parse_print_roundtrip () =
  let src =
    {|
    net sudoku {
      box computeOpts ((board) -> (board, opts));
      box solveOneLevelK ((board, opts) -> (board, opts, <k>) | (board, <done>));
    } connect computeOpts .. [{} -> {<k>=1}] .. ((solveOneLevelK !! <k>) ** {<done>});
    |}
  in
  let once = Parser.parse_string src in
  let again = Parser.parse_string (Ast.net_to_string once) in
  Alcotest.(check string) "print/parse fixpoint"
    (Ast.net_to_string once) (Ast.net_to_string again)

(* Placement annotations: postfix binding, merging, duplicates, and
   the elaborated Net.Place hints plus their typechecker validation. *)
let test_parser_annotations () =
  Alcotest.(check string) "shards binds to the replication"
    "(((a !! <t>) @shards 4) .. b)"
    (roundtrip "a !! <t> @shards 4 .. b");
  Alcotest.(check string) "annotations merge into one wrapper"
    "(a @place worker=2 @weight 3)"
    (roundtrip "a @place worker=2 @weight 3");
  Alcotest.(check string) "annotation survives print/parse"
    (roundtrip "(a !! <t>) @shards 2")
    (roundtrip (roundtrip "(a !! <t>) @shards 2"));
  let bad src =
    try
      ignore (Parser.parse_expr_string src);
      false
    with Parser.Parse_error _ -> true
  in
  Alcotest.(check bool) "duplicate annotation rejected" true
    (bad "a @shards 2 @shards 3");
  Alcotest.(check bool) "place needs worker=" true (bad "a @place 3");
  Alcotest.(check bool) "unknown annotation rejected" true (bad "a @colour 1");
  Alcotest.(check bool) "annotation needs an integer" true (bad "a @weight x")

let test_annotations_elaborate_and_typecheck () =
  let nd =
    Parser.parse_string
      {|
      net n {
        box f ((<x>) -> (<x>));
      } connect (f !! <x>) @shards 3 @weight 2;
    |}
  in
  let net = E.elaborate_with_stubs nd in
  let hints = Snet.Net.hints_of net in
  Alcotest.(check (option int)) "shards hint carried" (Some 3)
    hints.Snet.Net.shards;
  Alcotest.(check (option int)) "weight hint carried" (Some 2)
    hints.Snet.Net.weight;
  Alcotest.(check (option int)) "no place hint" None hints.Snet.Net.place;
  (* Hints are extra-functional: the typed signature is the body's. *)
  Alcotest.(check string) "typed through the wrapper" "{<x>} -> {<x>}"
    (Snet.Rectype.signature_to_string (Snet.Typecheck.infer net));
  let tc_error net needle =
    try
      ignore (Snet.Typecheck.infer net);
      Alcotest.failf "typecheck accepted (wanted %S)" needle
    with Snet.Typecheck.Type_error m ->
      Alcotest.(check bool)
        (Printf.sprintf "error names the problem: %s" m)
        true
        (let nh = String.length m and nn = String.length needle in
         let rec go i =
           i + nn <= nh && (String.sub m i nn = needle || go (i + 1))
         in
         go 0)
  in
  let f =
    Snet.Box.make ~name:"f" ~input:[ Snet.Box.T "x" ]
      ~outputs:[ [ Snet.Box.T "x" ] ]
      (fun ~emit:_ _ -> ())
  in
  tc_error
    (Snet.Net.place ~shards:2 (Snet.Net.box f))
    "only applies to a parallel replication";
  tc_error
    (Snet.Net.place ~shards:2 (Snet.Net.split ~det:true (Snet.Net.box f) "x"))
    "deterministic split";
  tc_error
    (Snet.Net.place ~weight:0 (Snet.Net.box f))
    "@weight 0 must be >= 1";
  tc_error
    (Snet.Net.place ~place:(-1) (Snet.Net.box f))
    "is negative"

let id_box name ~input ~outputs =
  Snet.Box.make ~name ~input ~outputs (fun ~emit:_ _ -> ())

let test_elaborate () =
  let nd =
    Parser.parse_string
      {|
      net n {
        box f ((a) -> (b));
        box g ((b) -> (c));
      } connect f .. g;
    |}
  in
  let registry =
    [
      ("f", id_box "f" ~input:[ Snet.Box.F "a" ] ~outputs:[ [ Snet.Box.F "b" ] ]);
      ("g", id_box "g" ~input:[ Snet.Box.F "b" ] ~outputs:[ [ Snet.Box.F "c" ] ]);
    ]
  in
  let net = E.elaborate registry nd in
  Alcotest.(check string) "elaborated" "(f .. g)" (Snet.Net.to_string net);
  Alcotest.(check string) "typed" "{a} -> {c}"
    (Snet.Rectype.signature_to_string (Snet.Typecheck.infer net))

let test_elaborate_errors () =
  let nd =
    Parser.parse_string
      {| net n { box f ((a) -> (b)); } connect f; |}
  in
  Alcotest.(check bool) "missing registration" true
    (try ignore (E.elaborate [] nd); false with E.Elab_error _ -> true);
  let wrong =
    [ ("f", id_box "f" ~input:[ Snet.Box.F "z" ] ~outputs:[ [ Snet.Box.F "b" ] ]) ]
  in
  Alcotest.(check bool) "signature mismatch" true
    (try ignore (E.elaborate wrong nd); false with E.Elab_error _ -> true);
  let undeclared =
    Parser.parse_string {| net n { box f ((a) -> (b)); } connect ghost; |}
  in
  let ok_reg =
    [ ("f", id_box "f" ~input:[ Snet.Box.F "a" ] ~outputs:[ [ Snet.Box.F "b" ] ]) ]
  in
  Alcotest.(check bool) "undeclared reference" true
    (try ignore (E.elaborate ok_reg undeclared); false with E.Elab_error _ -> true)

let test_elaborate_stubs () =
  let nd =
    Parser.parse_string
      {|
      net fig1 {
        box computeOpts ((board) -> (board, opts));
        box solveOneLevel ((board, opts) -> (board, opts) | (board, <done>));
      } connect computeOpts .. (solveOneLevel ** {<done>});
    |}
  in
  let net = E.elaborate_with_stubs nd in
  Alcotest.(check string) "fig1 signature from stubs"
    "{board} -> {board,<done>}"
    (Snet.Rectype.signature_to_string (Snet.Typecheck.infer net))

let test_pattern_helpers () =
  let p =
    E.pattern
      { Ast.pat_fields = [ "a" ]; pat_tags = [ "k" ];
        pat_guard = Some (P.Cmp (P.Gt, P.Tag "k", P.Const 0)) }
  in
  Alcotest.(check string) "pattern" "{a,<k>} | <k> > 0" (P.to_string p);
  let pat = Parser.parse_pattern_string "{board,<k>}" in
  Alcotest.(check (list string)) "fields" [ "board" ] pat.Ast.pat_fields;
  Alcotest.(check (list string)) "tags" [ "k" ] pat.Ast.pat_tags

(* An end-to-end DSL-to-execution test with real behaviour. *)
let test_dsl_execution () =
  let double =
    Snet.Box.make ~name:"double" ~input:[ T "x" ] ~outputs:[ [ T "x" ] ]
      (fun ~emit -> function
        | [ Tag x ] -> emit 1 [ Tag (2 * x) ]
        | _ -> assert false)
  in
  let nd =
    Parser.parse_string
      {| net n { box double ((<x>) -> (<x>)); }
         connect double .. double .. [{<x>} -> {<x>=<x>+1}]; |}
  in
  let net = E.elaborate [ ("double", double) ] nd in
  let out =
    Snet.Engine_seq.run net
      [ Snet.Record.of_list ~fields:[] ~tags:[ ("x", 5) ] ]
  in
  Alcotest.(check (list int)) "4x+1" [ 21 ]
    (List.filter_map (Snet.Record.tag "x") out)

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer: tags vs comparisons" `Quick test_lexer_tags_vs_comparisons;
    Alcotest.test_case "lexer: comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer: positions" `Quick test_lexer_positions;
    Alcotest.test_case "parser: precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser: guarded star" `Quick test_parser_guarded_star;
    Alcotest.test_case "parser: filters" `Quick test_parser_filter;
    Alcotest.test_case "parser: errors" `Quick test_parser_errors;
    Alcotest.test_case "parser: net definitions" `Quick test_parser_net_def;
    Alcotest.test_case "print/parse roundtrip" `Quick test_parse_print_roundtrip;
    Alcotest.test_case "parser: placement annotations" `Quick
      test_parser_annotations;
    Alcotest.test_case "annotations: elaborate + typecheck" `Quick
      test_annotations_elaborate_and_typecheck;
    Alcotest.test_case "elaborate" `Quick test_elaborate;
    Alcotest.test_case "elaborate errors" `Quick test_elaborate_errors;
    Alcotest.test_case "elaborate with stubs" `Quick test_elaborate_stubs;
    Alcotest.test_case "pattern helpers" `Quick test_pattern_helpers;
    Alcotest.test_case "DSL to execution" `Quick test_dsl_execution;
  ]
