(* N-dimensional arrays. *)

module Nd = Sacarray.Nd

let int_nd = Alcotest.testable (Nd.pp Format.pp_print_int) (Nd.equal Int.equal)
let check_nd = Alcotest.check int_nd
let check_int = Alcotest.(check int)

let test_create () =
  let a = Nd.create [| 2; 3 |] 7 in
  check_int "size" 6 (Nd.size a);
  check_int "dim" 2 (Nd.dim a);
  check_int "element" 7 (Nd.get a [| 1; 2 |])

let test_init () =
  let a = Nd.init [| 2; 3 |] (fun iv -> (10 * iv.(0)) + iv.(1)) in
  check_int "0,0" 0 (Nd.get a [| 0; 0 |]);
  check_int "1,2" 12 (Nd.get a [| 1; 2 |])

let test_scalar () =
  let s = Nd.scalar 42 in
  check_int "dim" 0 (Nd.dim s);
  check_int "size" 1 (Nd.size s);
  check_int "value" 42 (Nd.get_scalar s);
  Alcotest.check_raises "get_scalar on vector"
    (Invalid_argument "Nd.get_scalar: array of shape [2]") (fun () ->
      ignore (Nd.get_scalar (Nd.vector [ 1; 2 ])))

let test_of_array () =
  let a = Nd.of_array [| 2; 2 |] [| 1; 2; 3; 4 |] in
  check_int "1,0" 3 (Nd.get a [| 1; 0 |]);
  let bad () = ignore (Nd.of_array [| 2; 2 |] [| 1 |]) in
  Alcotest.(check bool) "length mismatch" true
    (try bad (); false with Invalid_argument _ -> true)

let test_vector_matrix () =
  check_nd "vector" (Nd.of_array [| 3 |] [| 1; 2; 3 |]) (Nd.vector [ 1; 2; 3 ]);
  check_nd "matrix"
    (Nd.of_array [| 2; 2 |] [| 1; 2; 3; 4 |])
    (Nd.matrix [ [ 1; 2 ]; [ 3; 4 ] ]);
  Alcotest.(check bool) "ragged" true
    (try ignore (Nd.matrix [ [ 1 ]; [ 2; 3 ] ]); false
     with Invalid_argument _ -> true)

let test_sel () =
  (* SaC prefix selection: shorter index vectors yield subarrays. *)
  let a = Nd.init [| 2; 3 |] (fun iv -> (10 * iv.(0)) + iv.(1)) in
  let row1 = Nd.sel a [| 1 |] in
  check_nd "row" (Nd.vector [ 10; 11; 12 ]) row1;
  let cell = Nd.sel a [| 1; 2 |] in
  check_int "full selection is rank 0" 0 (Nd.dim cell);
  check_int "cell value" 12 (Nd.get_scalar cell);
  let whole = Nd.sel a [||] in
  check_nd "empty index is identity" a whole

let test_set () =
  let a = Nd.vector [ 1; 2; 3 ] in
  let b = Nd.set a [| 1 |] 9 in
  check_nd "updated" (Nd.vector [ 1; 9; 3 ]) b;
  check_nd "original untouched" (Nd.vector [ 1; 2; 3 ]) a

let test_map_fold () =
  let a = Nd.vector [ 1; 2; 3 ] in
  check_nd "map" (Nd.vector [ 2; 4; 6 ]) (Nd.map (fun x -> 2 * x) a);
  check_nd "map2" (Nd.vector [ 11; 22; 33 ]) (Nd.map2 ( + ) a (Nd.vector [ 10; 20; 30 ]));
  check_int "fold" 6 (Nd.fold ( + ) 0 a);
  check_nd "mapi"
    (Nd.vector [ 1; 3; 5 ])
    (Nd.mapi (fun iv v -> v + iv.(0)) a);
  Alcotest.(check bool) "map2 shape mismatch" true
    (try ignore (Nd.map2 ( + ) a (Nd.vector [ 1 ])); false
     with Invalid_argument _ -> true)

let test_reshape () =
  let a = Nd.vector [ 1; 2; 3; 4; 5; 6 ] in
  let m = Nd.reshape [| 2; 3 |] a in
  check_int "reshaped" 6 (Nd.get m [| 1; 2 |]);
  Alcotest.(check bool) "size mismatch" true
    (try ignore (Nd.reshape [| 4 |] a); false
     with Invalid_argument _ -> true)

let test_pp () =
  Alcotest.(check string) "vector" "[1,2,3]" (Nd.to_string string_of_int (Nd.vector [ 1; 2; 3 ]));
  Alcotest.(check string) "matrix" "[[1,2],[3,4]]"
    (Nd.to_string string_of_int (Nd.matrix [ [ 1; 2 ]; [ 3; 4 ] ]));
  Alcotest.(check string) "scalar" "7" (Nd.to_string string_of_int (Nd.scalar 7))

let test_iteri () =
  let acc = ref [] in
  Nd.iteri (fun iv v -> acc := (Array.to_list iv, v) :: !acc) (Nd.matrix [ [ 1; 2 ]; [ 3; 4 ] ]);
  Alcotest.(check int) "count" 4 (List.length !acc);
  Alcotest.(check bool) "last is 1,1 -> 4" true (List.hd !acc = ([ 1; 1 ], 4))

let prop_init_get =
  QCheck.Test.make ~name:"init then get recovers the function" ~count:100
    (QCheck.make QCheck.Gen.(pair (int_range 1 5) (int_range 1 5)))
    (fun (r, c) ->
      let a = Nd.init [| r; c |] (fun iv -> (100 * iv.(0)) + iv.(1)) in
      let ok = ref true in
      for i = 0 to r - 1 do
        for j = 0 to c - 1 do
          if Nd.get a [| i; j |] <> (100 * i) + j then ok := false
        done
      done;
      !ok)

let prop_to_flat_roundtrip =
  QCheck.Test.make ~name:"of_array . to_flat_array = id" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 1 20) small_int))
    (fun xs ->
      let a = Nd.vector xs in
      Nd.equal Int.equal a (Nd.of_array (Nd.shape a) (Nd.to_flat_array a)))

let suite =
  [
    Alcotest.test_case "create" `Quick test_create;
    Alcotest.test_case "init" `Quick test_init;
    Alcotest.test_case "scalar" `Quick test_scalar;
    Alcotest.test_case "of_array" `Quick test_of_array;
    Alcotest.test_case "vector/matrix" `Quick test_vector_matrix;
    Alcotest.test_case "sel" `Quick test_sel;
    Alcotest.test_case "set" `Quick test_set;
    Alcotest.test_case "map/fold" `Quick test_map_fold;
    Alcotest.test_case "reshape" `Quick test_reshape;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    Alcotest.test_case "iteri" `Quick test_iteri;
    Seeded.to_alcotest prop_init_get;
    Seeded.to_alcotest prop_to_flat_roundtrip;
  ]
