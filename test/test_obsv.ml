(* The observability layer: event sink ring buffers, probe semantics,
   derived metrics, Chrome-trace export round-trips, and the
   interaction with virtual time under detcheck. Also the relaxed
   Stats snapshot semantics documented in stats.mli. *)

module Sink = Obsv.Sink
module Probe = Obsv.Probe
module Metrics = Obsv.Metrics
module Export = Obsv.Export

(* The sink and metrics are process-global; every test switches them
   off and drains them on the way out so suites stay independent. *)
let with_sink ?capacity f =
  Sink.enable ?capacity ();
  Fun.protect
    ~finally:(fun () ->
      Sink.disable ();
      Sink.clear ())
    f

let with_metrics f =
  Metrics.enable ();
  Fun.protect ~finally:(fun () -> Metrics.disable ()) f

(* --- sink basics -------------------------------------------------- *)

let test_sink_basics () =
  let evs =
    with_sink (fun () ->
        let t0 = Probe.span_start () in
        Probe.span_end ~cat:"box" ~name:"solve" t0;
        Probe.instant ~cat:"pool" ~name:"steal" ~value:3 ();
        Probe.counter ~cat:"star" ~name:"depth" ~value:7;
        Probe.edge_send ~name:"/e" ~depth:2;
        Probe.edge_stall ~name:"/e";
        Sink.events ())
  in
  Alcotest.(check int) "five probes, six events" 6 (List.length evs);
  let kinds = List.map (fun e -> e.Sink.kind) evs in
  Alcotest.(check bool)
    "kind sequence" true
    (kinds
    = [ Sink.Begin; Sink.End; Sink.Instant; Sink.Counter; Sink.Counter;
        Sink.Instant ]);
  let seqs = List.map (fun e -> e.Sink.seq) evs in
  Alcotest.(check bool)
    "seq strictly increasing" true
    (List.for_all2 ( < ) (List.filteri (fun i _ -> i < 5) seqs) (List.tl seqs));
  (match evs with
  | b :: e :: _ ->
      Alcotest.(check string) "span cat" "box" b.Sink.cat;
      Alcotest.(check string) "span name" "solve" b.Sink.name;
      Alcotest.(check bool) "end not before begin" true (e.Sink.ts >= b.Sink.ts);
      Alcotest.(check int) "same track" b.Sink.track e.Sink.track
  | _ -> Alcotest.fail "missing span events");
  let stall = List.nth evs 5 in
  Alcotest.(check string) "stall name suffix" "/e!stall" stall.Sink.name;
  Alcotest.(check int) "nothing dropped" 0 (Sink.dropped ())

let test_ring_drop_oldest () =
  let evs, dropped =
    with_sink ~capacity:8 (fun () ->
        for i = 0 to 19 do
          Probe.instant ~cat:"t" ~name:(Printf.sprintf "i%d" i) ()
        done;
        (Sink.events (), Sink.dropped ()))
  in
  Alcotest.(check int) "ring keeps capacity" 8 (List.length evs);
  Alcotest.(check int) "drop count" 12 dropped;
  Alcotest.(check (list string))
    "newest events survive"
    (List.init 8 (fun i -> Printf.sprintf "i%d" (12 + i)))
    (List.map (fun e -> e.Sink.name) evs)

let test_disabled_probes () =
  Sink.disable ();
  Metrics.disable ();
  Sink.clear ();
  Alcotest.(check bool)
    "span_start is the disabled sentinel" true
    (Probe.span_start () = Probe.disabled);
  Probe.span_end ~cat:"box" ~name:"x" (Probe.span_start ());
  Probe.instant ~cat:"pool" ~name:"park" ();
  Probe.edge_send ~name:"/e" ~depth:1;
  Alcotest.(check int) "no events recorded" 0 (List.length (Sink.events ()))

(* A sink enabled mid-span must not record an unmatched End: the
   start was the disabled sentinel, so span_end stays a no-op. *)
let test_toggle_mid_span () =
  Sink.disable ();
  Sink.clear ();
  let t0 = Probe.span_start () in
  let evs =
    with_sink (fun () ->
        Probe.span_end ~cat:"box" ~name:"late" t0;
        Sink.events ())
  in
  Alcotest.(check int) "no dangling End" 0 (List.length evs)

(* --- span pairing property ---------------------------------------- *)

(* Probe.span_end emits Begin then End back-to-back from one thread,
   so per track every Begin must be immediately followed by its
   matching End — even with another thread interleaving into the same
   domain ring. *)
let prop_span_pairing =
  QCheck.Test.make ~name:"every Begin has a matching adjacent End per track"
    ~count:30
    (QCheck.make QCheck.Gen.(list_size (int_range 0 80) (int_range 0 3)))
    (fun ops ->
      let evs =
        with_sink (fun () ->
            let do_ops () =
              List.iter
                (fun op ->
                  match op with
                  | 0 ->
                      let t0 = Probe.span_start () in
                      Probe.span_end ~cat:"box" ~name:"a" t0
                  | 1 ->
                      let t0 = Probe.span_start () in
                      Probe.span_end ~cat:"filter" ~name:"f" t0
                  | 2 -> Probe.instant ~cat:"pool" ~name:"park" ()
                  | _ -> Probe.edge_send ~name:"/e" ~depth:1)
                ops
            in
            let t = Thread.create do_ops () in
            do_ops ();
            Thread.join t;
            Sink.events ())
      in
      let tracks =
        List.sort_uniq compare (List.map (fun e -> e.Sink.track) evs)
      in
      List.for_all
        (fun tr ->
          let tevs = List.filter (fun e -> e.Sink.track = tr) evs in
          let rec ok = function
            | [] -> true
            | e :: rest -> (
                match e.Sink.kind with
                | Sink.Begin -> (
                    match rest with
                    | e2 :: rest' ->
                        e2.Sink.kind = Sink.End
                        && e2.Sink.cat = e.Sink.cat
                        && e2.Sink.name = e.Sink.name
                        && e2.Sink.ts >= e.Sink.ts
                        && ok rest'
                    | [] -> false)
                | Sink.End -> false
                | _ -> ok rest)
          in
          ok tevs)
        tracks)

(* --- Chrome export ------------------------------------------------ *)

let sample_events () =
  with_sink (fun () ->
      let t0 = Probe.span_start () in
      Probe.span_end ~cat:"box" ~name:"/L/box:computeOpts" t0;
      Probe.edge_send ~name:"/L" ~depth:1;
      Probe.edge_recv ~name:"/L" ~depth:0;
      Probe.edge_stall ~name:"/L";
      Probe.counter ~cat:"star" ~name:"star-depth" ~value:3;
      let t1 = Probe.span_start () in
      Probe.span_end ~cat:"filter" ~name:"/R/[f]" t1;
      Sink.events ())

let test_chrome_roundtrip () =
  let evs = sample_events () in
  let items = Export.of_events evs in
  let has p = List.exists p items in
  Alcotest.(check bool) "has a Complete span" true
    (has (function Export.Complete _ -> true | _ -> false));
  Alcotest.(check bool) "has a Counter" true
    (has (function Export.Counter _ -> true | _ -> false));
  Alcotest.(check bool) "has an Instant" true
    (has (function Export.Instant _ -> true | _ -> false));
  Alcotest.(check bool) "has track Meta" true
    (has (function Export.Meta _ -> true | _ -> false));
  let doc = Export.render items in
  (match Export.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate rejected our own render: %s" e);
  match Export.read doc with
  | Ok items' ->
      Alcotest.(check int) "read returns every item" (List.length items)
        (List.length items')
  | Error e -> Alcotest.failf "read failed: %s" e

let test_chrome_file_roundtrip () =
  let evs = sample_events () in
  let path = Filename.temp_file "obsv" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Export.write_chrome ~path evs;
      let ic = open_in path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Export.validate s with
      | Ok () -> ()
      | Error e -> Alcotest.failf "written file does not validate: %s" e)

let test_jsonl () =
  let evs = sample_events () in
  let path = Filename.temp_file "obsv" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Export.write_jsonl ~path evs;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      Alcotest.(check int) "one line per event" (List.length evs)
        (List.length !lines);
      List.iter
        (fun line ->
          match Obsv.Jsonx.parse line with
          | Ok (Obsv.Jsonx.Obj fields) ->
              Alcotest.(check bool) "line has seq/kind/name" true
                (List.mem_assoc "seq" fields
                && List.mem_assoc "kind" fields
                && List.mem_assoc "name" fields)
          | Ok _ -> Alcotest.fail "JSONL line is not an object"
          | Error e -> Alcotest.failf "JSONL line does not parse: %s" e)
        !lines)

(* --- virtual time: byte-stable export under detcheck -------------- *)

(* Under the virtual scheduler every timestamp comes from the virtual
   clock and every interleaving from the seeded strategy, so tracing
   the same seed twice must export byte-identical Chrome JSON. *)
let detcheck_spec =
  {
    Detcheck.Netgen.klass = Nondet;
    sync_prefix = false;
    body =
      Detcheck.Netgen.(Choice (Serial (Leaf Inc, Leaf Double), Leaf Dup));
    inputs = [ (1, 0); (2, 1); (3, 2); (4, 3); (5, 0); (6, 1) ];
  }

let traced_virtual_run seed =
  Sink.enable ();
  let res, _ =
    Detcheck.Oracle.run_once
      ~strategy:(Detcheck.Strategy.random ~seed)
      detcheck_spec
  in
  Sink.disable ();
  let evs = Sink.events () in
  Sink.clear ();
  (match res with Ok _ -> () | Error e -> raise e);
  (evs, Export.render (Export.of_events evs))

let test_virtual_time_byte_stable () =
  let evs1, doc1 = traced_virtual_run 11 in
  let _, doc2 = traced_virtual_run 11 in
  Alcotest.(check bool) "virtual run produced events" true (evs1 <> []);
  Alcotest.(check bool)
    "virtual timestamps recorded (rebased trace validates)" true
    (Export.validate doc1 = Ok ());
  Alcotest.(check string) "same seed, byte-identical export" doc1 doc2

(* --- metrics ------------------------------------------------------ *)

let test_metrics_histogram () =
  with_metrics (fun () ->
      for i = 1 to 100 do
        Metrics.record_span ~cat:"box" ~name:"b" ~dt:(float_of_int i *. 1e-5)
      done;
      let snap = Metrics.snapshot () in
      match snap.Metrics.spans with
      | [ ("box", "b", h) ] ->
          Alcotest.(check int) "count" 100 h.Metrics.count;
          Alcotest.(check bool) "total close to sum" true
            (Float.abs (h.Metrics.total -. 5050. *. 1e-5) < 1e-6);
          (* Log-linear buckets: percentiles are bucket upper bounds,
             within the documented 12.5% relative error. *)
          let close q v = Float.abs (q -. v) /. v < 0.15 in
          Alcotest.(check bool) "p50 near 50e-5" true (close h.Metrics.p50 50e-5);
          Alcotest.(check bool) "p95 near 95e-5" true (close h.Metrics.p95 95e-5);
          Alcotest.(check bool) "ordering" true
            (h.Metrics.p50 <= h.Metrics.p95
            && h.Metrics.p95 <= h.Metrics.p99
            && h.Metrics.p99 <= h.Metrics.max_s +. 1e-12);
          Alcotest.(check bool) "max exact" true
            (Float.abs (h.Metrics.max_s -. 100e-5) < 1e-9)
      | l -> Alcotest.failf "unexpected span list (%d entries)" (List.length l))

let test_metrics_edges_and_json () =
  with_metrics (fun () ->
      Metrics.record_edge_send ~name:"/e" ~depth:3;
      Metrics.record_edge_send ~name:"/e" ~depth:7;
      Metrics.record_edge_recv ~name:"/e" ~depth:6;
      Metrics.record_edge_stall ~name:"/e";
      Metrics.record_star_depth ~depth:4;
      Metrics.record_star_depth ~depth:2;
      Metrics.record_span ~cat:"box" ~name:"b" ~dt:1e-4;
      let snap = Metrics.snapshot () in
      (match snap.Metrics.edges with
      | [ ("/e", e) ] ->
          Alcotest.(check int) "sends" 2 e.Metrics.sends;
          Alcotest.(check int) "recvs" 1 e.Metrics.recvs;
          Alcotest.(check int) "stalls" 1 e.Metrics.stalls;
          Alcotest.(check int) "hwm" 7 e.Metrics.hwm
      | l -> Alcotest.failf "unexpected edge list (%d entries)" (List.length l));
      Alcotest.(check int) "star hwm" 4 snap.Metrics.star_depth_hwm;
      Alcotest.(check int) "star stages" 2 snap.Metrics.star_stages;
      (* JSON round-trip: second-generation serialisation is stable. *)
      let j = Metrics.to_json snap in
      match Metrics.of_json j with
      | Ok snap' -> Alcotest.(check string) "to_json . of_json stable" j
            (Metrics.to_json snap')
      | Error e -> Alcotest.failf "of_json failed: %s" e)

(* Probes feed metrics without the event sink: span_end must land in
   the histogram even when no events are being retained. *)
let test_metrics_without_sink () =
  with_metrics (fun () ->
      let t0 = Probe.span_start () in
      Probe.span_end ~cat:"box" ~name:"only-metrics" t0;
      Alcotest.(check int) "no events retained" 0
        (List.length (Sink.events ()));
      let snap = Metrics.snapshot () in
      Alcotest.(check bool) "histogram populated" true
        (List.exists
           (fun (_, n, h) -> n = "only-metrics" && h.Metrics.count = 1)
           snap.Metrics.spans))

(* --- Jsonx -------------------------------------------------------- *)

let test_jsonx () =
  (match Obsv.Jsonx.parse {|{"a":[1,2.5,"x\n"],"b":true,"c":null}|} with
  | Ok j ->
      Alcotest.(check int) "nested int" 1
        Obsv.Jsonx.(
          match member "a" j with
          | Some l -> (
              match to_list l with
              | Some (x :: _) -> Option.value ~default:(-1) (to_int x)
              | _ -> -1)
          | None -> -1)
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Obsv.Jsonx.parse "{" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated object accepted");
  match Obsv.Jsonx.parse "1 trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted"

(* --- Stats: relaxed snapshot semantics (documented in stats.mli) --- *)

(* Concurrent increments from several domains while a reader snapshots:
   each field must be monotone across successive snapshots, and the
   post-quiescence snapshot must hold the exact totals — the two
   guarantees stats.mli commits to. *)
let prop_stats_relaxed =
  QCheck.Test.make
    ~name:"stats: monotone snapshots, exact totals after quiescence" ~count:5
    (QCheck.make QCheck.Gen.(pair (int_range 1 4) (int_range 100 500)))
    (fun (ndomains, per) ->
      let st = Snet.Stats.create () in
      let done_count = Atomic.make 0 in
      let workers =
        List.init ndomains (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to per do
                  Snet.Stats.record_emission st 1;
                  Snet.Stats.record_backpressure st 1
                done;
                Atomic.incr done_count))
      in
      let monotone = ref true in
      let prev = ref (Snet.Stats.snapshot st) in
      while Atomic.get done_count < ndomains do
        let s = Snet.Stats.snapshot st in
        if
          s.Snet.Stats.records_emitted < !prev.Snet.Stats.records_emitted
          || s.Snet.Stats.backpressure_stalls
             < !prev.Snet.Stats.backpressure_stalls
        then monotone := false;
        prev := s;
        Domain.cpu_relax ()
      done;
      List.iter Domain.join workers;
      let final = Snet.Stats.snapshot st in
      !monotone
      && final.Snet.Stats.records_emitted = ndomains * per
      && final.Snet.Stats.backpressure_stalls = ndomains * per)

(* --- cluster aggregation (Agg / Health / Prom) --------------------- *)

(* Two distinct raw snapshots built by really recording, then merged:
   counts vector-add, maxima take the max, and the identity holds. *)
let test_agg_merge_vector_add () =
  let raw_a =
    with_metrics (fun () ->
        Probe.span_end ~cat:"box" ~name:"m" (Sink.now () -. 1e-6);
        Probe.span_end ~cat:"box" ~name:"m" (Sink.now () -. 1e-6);
        Probe.edge_send ~name:"/e" ~depth:4;
        Metrics.raw_snapshot ())
  in
  let raw_b =
    with_metrics (fun () ->
        Probe.span_end ~cat:"box" ~name:"m" (Sink.now () -. 2e-3);
        Probe.edge_send ~name:"/e" ~depth:9;
        Probe.edge_stall ~name:"/e";
        Metrics.raw_snapshot ())
  in
  let merged = Metrics.merge_raw raw_a raw_b in
  let span key raw = List.assoc key raw.Metrics.raw_spans in
  let key = "box\000m" in
  let count r =
    Array.fold_left ( + ) 0 (span key r).Metrics.r_buckets
  in
  Alcotest.(check int) "span counts add" (count raw_a + count raw_b)
    (count merged);
  Alcotest.(check int) "total_ns adds"
    ((span key raw_a).Metrics.r_total_ns + (span key raw_b).Metrics.r_total_ns)
    (span key merged).Metrics.r_total_ns;
  Alcotest.(check int) "max_ns is max"
    (max (span key raw_a).Metrics.r_max_ns (span key raw_b).Metrics.r_max_ns)
    (span key merged).Metrics.r_max_ns;
  let edge r = List.assoc "/e" r.Metrics.raw_edges in
  Alcotest.(check int) "edge sends add" 2 (edge merged).Metrics.r_sends;
  Alcotest.(check int) "edge stalls add" 1 (edge merged).Metrics.r_stalls;
  Alcotest.(check int) "edge hwm is max" 9 (edge merged).Metrics.r_hwm;
  Alcotest.(check bool) "empty_raw is left identity" true
    (Metrics.merge_raw Metrics.empty_raw raw_a = raw_a);
  Alcotest.(check bool) "empty_raw is right identity" true
    (Metrics.merge_raw raw_a Metrics.empty_raw = raw_a);
  Alcotest.(check bool) "merge commutes" true
    (Metrics.merge_raw raw_a raw_b = Metrics.merge_raw raw_b raw_a)

(* Report and chunk codecs: byte round-trip of a populated report
   (exercising the sparse bucket-array encoding) and of a slim one. *)
let test_agg_report_codec () =
  let report =
    with_metrics (fun () ->
        for _ = 1 to 100 do
          Probe.span_end ~cat:"box" ~name:"rt" (Sink.now () -. 1e-5)
        done;
        Probe.edge_send ~name:"/cut" ~depth:7;
        Obsv.Agg.self_report ~part:3 ~hello_ts:123.456 ())
  in
  Alcotest.(check bool) "report carries metrics" true
    (report.Obsv.Agg.metrics.Metrics.raw_spans <> []);
  (match Obsv.Agg.decode_report (Obsv.Agg.encode_report report) with
  | Ok r -> Alcotest.(check bool) "report round-trips" true (r = report)
  | Error e -> Alcotest.failf "report decode failed: %s" e);
  let slim = Obsv.Agg.self_report ~slim:true ~part:1 ~hello_ts:1. () in
  Alcotest.(check bool) "slim report ships empty metrics" true
    (slim.Obsv.Agg.metrics = Metrics.empty_raw);
  (match Obsv.Agg.decode_report (Obsv.Agg.encode_report slim) with
  | Ok r -> Alcotest.(check bool) "slim round-trips" true (r = slim)
  | Error e -> Alcotest.failf "slim decode failed: %s" e);
  match Obsv.Agg.decode_report "garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage decoded as a report"

let test_agg_chunk_codec () =
  let chunk =
    with_sink (fun () ->
        let t0 = Probe.span_start () in
        Probe.span_end ~cat:"box" ~name:"c" t0;
        Probe.instant ~cat:"pool" ~name:"steal" ~value:2 ();
        Obsv.Agg.self_chunk ~part:2 ~hello_ts:9.75 ())
  in
  Alcotest.(check int) "chunk carries the events" 3
    (List.length chunk.Obsv.Agg.c_events);
  match Obsv.Agg.decode_chunk (Obsv.Agg.encode_chunk chunk) with
  | Ok c -> Alcotest.(check bool) "chunk round-trips" true (c = chunk)
  | Error e -> Alcotest.failf "chunk decode failed: %s" e

(* Health registry: derivation, upsert and JSON. *)
let test_health_registry () =
  Obsv.Health.clear ();
  let p0 =
    Obsv.Health.make ~queue_depth:5 ~window:32 ~credits_free:12 ~sends:200
      ~stalls:10 ~batch_p50:3 ~batch_p95:17 ~journal_lag:4 ~part:0 ()
  in
  Alcotest.(check bool) "stall rate derived" true
    (abs_float (p0.Obsv.Health.stall_rate -. 0.05) < 1e-9);
  let p1 =
    Obsv.Health.make ~alive:false ~reason:"connection lost" ~part:1 ()
  in
  Obsv.Health.set [ p1; p0 ];
  (match Obsv.Health.get () with
  | [ a; b ] ->
      Alcotest.(check int) "sorted by part" 0 a.Obsv.Health.part;
      Alcotest.(check bool) "dead row kept" false b.Obsv.Health.alive;
      Alcotest.(check string) "reason kept" "connection lost"
        b.Obsv.Health.reason
  | l -> Alcotest.failf "expected 2 rows, got %d" (List.length l));
  Obsv.Health.update { p0 with Obsv.Health.queue_depth = 9 };
  (match Obsv.Health.get () with
  | a :: _ -> Alcotest.(check int) "upsert replaces" 9 a.Obsv.Health.queue_depth
  | [] -> Alcotest.fail "registry emptied by upsert");
  List.iter
    (fun p ->
      match Obsv.Health.of_json (Obsv.Health.to_json p) with
      | Some p' -> Alcotest.(check bool) "health json round-trips" true (p' = p)
      | None -> Alcotest.fail "health row did not parse back")
    (Obsv.Health.get ());
  Obsv.Health.clear ();
  Alcotest.(check int) "clear empties" 0 (List.length (Obsv.Health.get ()))

(* Prometheus exposition: structurally valid lines, the partition
   series present, and label values escaped. *)
let test_prom_render () =
  let snap =
    with_metrics (fun () ->
        Probe.span_end ~cat:"box" ~name:{|odd"name\with|} (Sink.now () -. 1e-5);
        Probe.edge_send ~name:"/cut:0" ~depth:3;
        Metrics.snapshot ())
  in
  let parts =
    [
      Obsv.Health.make ~queue_depth:2 ~window:32 ~credits_free:30 ~sends:10
        ~journal_lag:1 ~part:0 ();
      Obsv.Health.make ~alive:false ~reason:"killed" ~part:1 ();
    ]
  in
  let text = Obsv.Prom.render ~parts snap in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then begin
        (* name{labels} value  |  name value *)
        let sp =
          match String.rindex_opt line ' ' with
          | Some i -> i
          | None -> Alcotest.failf "no value separator: %s" line
        in
        let value = String.sub line (sp + 1) (String.length line - sp - 1) in
        if float_of_string_opt value = None then
          Alcotest.failf "unparseable value in: %s" line
      end)
    lines;
  let has needle =
    let nh = String.length text and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub text i nn = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "exposition has %s" needle) true
        (has needle))
    [
      "snet_span_latency_seconds";
      "snet_partition_queue_depth{part=\"0\"}";
      "snet_partition_up{part=\"1\"} 0";
      "snet_partition_journal_lag{part=\"0\"}";
      (* Escaped quote and backslash inside a label value. *)
      {|odd\"name\\with|};
    ]

(* Collector: hello/report/death bookkeeping feeding cluster and its
   JSON round-trip. Reports from this very process are same-pid and
   must be skipped during metric merging but count for liveness. *)
let test_agg_collector_cluster () =
  let col = Obsv.Agg.create () in
  Obsv.Agg.note_hello col ~part:0;
  Obsv.Agg.note_hello col ~part:1;
  let rep =
    with_metrics (fun () ->
        Probe.span_end ~cat:"box" ~name:"col" (Sink.now () -. 1e-5);
        Obsv.Agg.self_report ~part:0 ~hello_ts:(Sink.now ()) ())
  in
  Obsv.Agg.note_report col rep;
  (* A "remote" report: same bytes, different pid, fresh metrics. *)
  let remote = { rep with Obsv.Agg.part = 1; pid = rep.Obsv.Agg.pid + 1 } in
  Obsv.Agg.note_report col remote;
  Obsv.Agg.note_gauges col ~part:1 ~queue:5 ~credits:27 ~window:32;
  Obsv.Agg.note_death col ~part:1 ~reason:"test kill";
  let cl = Obsv.Agg.cluster col in
  Alcotest.(check int) "both workers seen" 2 cl.Obsv.Agg.workers_seen;
  (match
     List.find_opt (fun p -> p.Obsv.Health.part = 1) cl.Obsv.Agg.parts
   with
  | Some p ->
      Alcotest.(check bool) "dead part flagged" false p.Obsv.Health.alive;
      Alcotest.(check string) "death reason kept" "test kill"
        p.Obsv.Health.reason;
      Alcotest.(check int) "gauges folded in" 5 p.Obsv.Health.queue_depth
  | None -> Alcotest.fail "part 1 missing from cluster");
  let j = Obsv.Agg.cluster_to_json cl in
  Alcotest.(check bool) "sniffs as cluster json" true
    (Obsv.Agg.is_cluster_json j);
  Alcotest.(check bool) "plain text does not sniff" false
    (Obsv.Agg.is_cluster_json "{\"spans\":[]}");
  match Obsv.Agg.cluster_of_json j with
  | Ok cl' ->
      Alcotest.(check int) "json keeps workers_seen" cl.Obsv.Agg.workers_seen
        cl'.Obsv.Agg.workers_seen;
      Alcotest.(check int) "json keeps part rows"
        (List.length cl.Obsv.Agg.parts)
        (List.length cl'.Obsv.Agg.parts)
  | Error e -> Alcotest.failf "cluster json round-trip failed: %s" e

(* stall_rate must always be finite: the explicit override clamps
   non-finite values (a 0/0 interval delta), zero sends derive 0, and
   a collector fed two reports with identical edge totals (a
   zero-interval delta) still produces 0 — nan/inf must never reach
   the cluster JSON or the Prometheus text. *)
let test_stall_rate_always_finite () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  let rate p = p.Obsv.Health.stall_rate in
  Alcotest.(check (float 0.)) "nan override clamped" 0.
    (rate (Obsv.Health.make ~stall_rate:(0. /. 0.) ~part:0 ()));
  Alcotest.(check (float 0.)) "inf override clamped" 0.
    (rate (Obsv.Health.make ~stall_rate:infinity ~part:0 ()));
  Alcotest.(check (float 0.)) "no sends derives 0" 0.
    (rate (Obsv.Health.make ~sends:0 ~stalls:7 ~part:0 ()));
  Alcotest.(check (float 1e-9)) "finite override kept" 0.25
    (rate (Obsv.Health.make ~stall_rate:0.25 ~part:0 ()));
  let col = Obsv.Agg.create () in
  Obsv.Agg.note_hello col ~part:0;
  let rep =
    with_metrics (fun () ->
        Probe.edge_send ~name:"/cut:0" ~depth:2;
        Probe.edge_stall ~name:"/cut:0";
        Obsv.Agg.self_report ~part:0 ~hello_ts:(Sink.now ()) ())
  in
  Obsv.Agg.note_report col rep;
  (* Same totals again: the interval delta is 0 sends / 0 stalls. *)
  Obsv.Agg.note_report col rep;
  let cl = Obsv.Agg.cluster col in
  List.iter
    (fun p ->
      Alcotest.(check bool) "interval rate finite" true
        (Float.is_finite (rate p));
      Alcotest.(check (float 0.)) "zero-interval delta is 0" 0. (rate p))
    cl.Obsv.Agg.parts;
  let j = Obsv.Agg.cluster_to_json cl in
  Alcotest.(check bool) "no nan in cluster json" false
    (contains j "nan" || contains j "inf");
  let text = Obsv.Prom.render ~parts:cl.Obsv.Agg.parts cl.Obsv.Agg.merged in
  Alcotest.(check bool) "no nan in prometheus text" false
    (contains text "nan" || contains text "inf")

let suite =
  [
    Alcotest.test_case "sink records spans, instants, counters, edges" `Quick
      test_sink_basics;
    Alcotest.test_case "full ring drops oldest and counts drops" `Quick
      test_ring_drop_oldest;
    Alcotest.test_case "disabled probes are no-ops" `Quick test_disabled_probes;
    Alcotest.test_case "sink enabled mid-span records no dangling End" `Quick
      test_toggle_mid_span;
    Seeded.to_alcotest prop_span_pairing;
    Alcotest.test_case "chrome export round-trips through its own reader"
      `Quick test_chrome_roundtrip;
    Alcotest.test_case "write_chrome output validates" `Quick
      test_chrome_file_roundtrip;
    Alcotest.test_case "jsonl export: one parseable line per event" `Quick
      test_jsonl;
    Alcotest.test_case "virtual-time trace is byte-stable per seed" `Quick
      test_virtual_time_byte_stable;
    Alcotest.test_case "latency histogram percentiles" `Quick
      test_metrics_histogram;
    Alcotest.test_case "edge counters, star depth, json round-trip" `Quick
      test_metrics_edges_and_json;
    Alcotest.test_case "metrics aggregate without the event sink" `Quick
      test_metrics_without_sink;
    Alcotest.test_case "jsonx parses and rejects malformed input" `Quick
      test_jsonx;
    Alcotest.test_case "agg: raw merge is vector addition" `Quick
      test_agg_merge_vector_add;
    Alcotest.test_case "agg: report codec round-trips (sparse buckets)" `Quick
      test_agg_report_codec;
    Alcotest.test_case "agg: trace chunk codec round-trips" `Quick
      test_agg_chunk_codec;
    Alcotest.test_case "health registry derives, upserts, round-trips" `Quick
      test_health_registry;
    Alcotest.test_case "prometheus exposition renders and escapes" `Quick
      test_prom_render;
    Alcotest.test_case "agg: collector cluster snapshot + json" `Quick
      test_agg_collector_cluster;
    Alcotest.test_case "stall rate is always finite" `Quick
      test_stall_rate_always_finite;
    Seeded.to_alcotest prop_stats_relaxed;
  ]
