(* Network rewriting passes: local correctness plus random differential
   semantics preservation. *)

module O = Snet.Optimize
module P = Snet.Pattern
module Net = Snet.Net
module Box = Snet.Box
module Filter = Snet.Filter

let expr_str e = P.expr_to_string (O.fold_expr e)
let guard_str g = P.guard_to_string (O.fold_guard g)

let test_fold_expr () =
  Alcotest.(check string) "constants" "7" (expr_str (P.Add (P.Const 3, P.Const 4)));
  Alcotest.(check string) "nested" "9"
    (expr_str (P.Mul (P.Add (P.Const 1, P.Const 2), P.Const 3)));
  Alcotest.(check string) "add zero" "<k>" (expr_str (P.Add (P.Tag "k", P.Const 0)));
  Alcotest.(check string) "mul one" "<k>" (expr_str (P.Mul (P.Const 1, P.Tag "k")));
  Alcotest.(check string) "mul zero" "0" (expr_str (P.Mul (P.Tag "k", P.Const 0)));
  Alcotest.(check string) "mod one" "0" (expr_str (P.Mod (P.Tag "k", P.Const 1)));
  Alcotest.(check string) "double negation" "<k>" (expr_str (P.Neg (P.Neg (P.Tag "k"))));
  (* Division by a constant zero must survive to fail at run time. *)
  Alcotest.(check string) "div by zero kept" "(<k>/0)"
    (expr_str (P.Div (P.Tag "k", P.Const 0)))

let test_fold_guard () =
  Alcotest.(check string) "constant comparison" "true"
    (guard_str (P.Cmp (P.Lt, P.Const 1, P.Const 2)));
  Alcotest.(check string) "false comparison" "!(true)"
    (guard_str (P.Cmp (P.Gt, P.Const 1, P.Const 2)));
  Alcotest.(check string) "true and g" "<k> > 0"
    (guard_str (P.And (P.True, P.Cmp (P.Gt, P.Tag "k", P.Const 0))));
  Alcotest.(check string) "g or true" "true"
    (guard_str (P.Or (P.Cmp (P.Gt, P.Tag "k", P.Const 0), P.True)));
  Alcotest.(check string) "double not" "true" (guard_str (P.Not (P.Not P.True)))

let idbox name =
  Box.make ~name ~input:[ Box.T "x" ] ~outputs:[ [ Box.T "x" ] ]
    (fun ~emit -> function
      | [ Tag x ] -> emit 1 [ Tag x ]
      | _ -> assert false)

let identity_filter () = Filter.make ~name:"id" (P.make ~fields:[] ~tags:[] ()) [ [] ]

let test_drop_identity_filters () =
  let net =
    Net.serial_list
      [ Net.filter (identity_filter ()); Net.box (idbox "a");
        Net.filter (identity_filter ()) ]
  in
  Alcotest.(check string) "only the box remains" "a"
    (Net.to_string (O.optimize net))

let test_strip_observe () =
  let net = Net.observe "probe" (Net.box (idbox "a")) in
  Alcotest.(check string) "stripped" "a" (Net.to_string (O.strip_observe net));
  Alcotest.(check string) "kept on request" "observe[probe](a)"
    (Net.to_string (O.optimize ~keep_observers:true net))

let test_reassociate () =
  let a = Net.box (idbox "a") and b = Net.box (idbox "b") and c = Net.box (idbox "c") in
  Alcotest.(check string) "right-nested" "(a .. (b .. c))"
    (Net.to_string (O.reassociate_serial (Net.serial (Net.serial a b) c)))

let test_fold_in_networks () =
  let throttle =
    Filter.make ~name:"t"
      (P.make ~fields:[] ~tags:[ "k" ] ())
      [ [ Filter.Set_tag ("k", P.Mod (P.Tag "k", P.Add (P.Const 2, P.Const 2))) ] ]
  in
  let optimized = O.optimize (Net.filter throttle) in
  (match optimized with
  | Net.Filter f ->
      Alcotest.(check string) "folded inside filter"
        "[{<k>} -> {<k>=(<k>%4)}]" (Filter.to_string f)
  | _ -> Alcotest.fail "expected a filter");
  let star =
    Net.star (Net.box (idbox "a"))
      (P.make ~fields:[] ~tags:[ "x" ]
         ~guard:(P.And (P.True, P.Cmp (P.Gt, P.Tag "x", P.Const 0)))
         ())
  in
  Alcotest.(check string) "folded star guard" "(a ** {<x>} | <x> > 0)"
    (Net.to_string (O.optimize star))

(* Differential: optimization must not change behaviour. Build nets
   with foldable filters and identity noise, compare outputs. *)
let dup =
  Box.make ~name:"dup" ~input:[ Box.T "x" ] ~outputs:[ [ Box.T "x" ] ]
    (fun ~emit -> function
      | [ Tag x ] ->
          emit 1 [ Tag x ];
          emit 1 [ Tag (x + 10) ]
      | _ -> assert false)

let noisy_filter () =
  Snet.Filter.make
    (P.make ~fields:[] ~tags:[ "x" ] ())
    [
      [
        Filter.Set_tag
          ( "x",
            P.Add
              ( P.Mul (P.Tag "x", P.Add (P.Const 1, P.Const 0)),
                P.Sub (P.Const 5, P.Const 5) ) );
      ];
    ]

let gen_net =
  QCheck.Gen.(
    let leaf =
      oneofl
        [
          Net.box (idbox "i"); Net.box dup; Net.filter (noisy_filter ());
          Net.filter (identity_filter ());
        ]
    in
    let rec go depth =
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            (2, map2 Net.serial (go (depth - 1)) (go (depth - 1)));
            ( 1,
              map
                (fun b -> Net.observe "p" b)
                (go (depth - 1)) );
            (1, map (fun b -> Net.split b "k") (go (depth - 1)));
          ]
    in
    go 3)

let prop_optimize_preserves =
  QCheck.Test.make ~name:"optimize preserves sequential behaviour" ~count:60
    (QCheck.make
       ~print:(fun (n, _) -> Net.to_string n)
       QCheck.Gen.(
         pair gen_net
           (list_size (int_range 1 10)
              (map2 (fun x k -> (x, k)) (int_range 0 100) (int_range 0 2)))))
    (fun (net, inputs) ->
      let records =
        List.map (fun (x, k) -> Snet.record ~tags:[ ("x", x); ("k", k) ] ()) inputs
      in
      let out n =
        List.map
          (fun r -> (Snet.Record.tag "x" r, Snet.Record.tag "k" r))
          (Snet.Engine_seq.run n records)
      in
      out net = out (O.optimize net))

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_fold_expr;
    Alcotest.test_case "guard simplification" `Quick test_fold_guard;
    Alcotest.test_case "identity filter elimination" `Quick test_drop_identity_filters;
    Alcotest.test_case "observer stripping" `Quick test_strip_observe;
    Alcotest.test_case "serial reassociation" `Quick test_reassociate;
    Alcotest.test_case "folding inside networks" `Quick test_fold_in_networks;
    Seeded.to_alcotest prop_optimize_preserves;
  ]
