(* Patterns, tag expressions and guards. *)

module P = Snet.Pattern
module Record = Snet.Record
module Value = Snet.Value

let lookup_of alist t = List.assoc t alist

let test_expr_eval () =
  let env = lookup_of [ ("k", 7); ("l", 3) ] in
  let e v = P.eval_expr env v in
  Alcotest.(check int) "const" 5 (e (P.Const 5));
  Alcotest.(check int) "tag" 7 (e (P.Tag "k"));
  Alcotest.(check int) "add" 10 (e (P.Add (P.Tag "k", P.Tag "l")));
  Alcotest.(check int) "sub" 4 (e (P.Sub (P.Tag "k", P.Tag "l")));
  Alcotest.(check int) "mul" 21 (e (P.Mul (P.Tag "k", P.Tag "l")));
  Alcotest.(check int) "div" 2 (e (P.Div (P.Tag "k", P.Tag "l")));
  Alcotest.(check int) "mod (paper's %)" 3 (e (P.Mod (P.Tag "k", P.Const 4)));
  Alcotest.(check int) "neg" (-7) (e (P.Neg (P.Tag "k")));
  Alcotest.(check int) "abs" 7 (e (P.Abs (P.Neg (P.Tag "k"))));
  Alcotest.(check int) "min" 3 (e (P.Min (P.Tag "k", P.Tag "l")));
  Alcotest.(check int) "max" 7 (e (P.Max (P.Tag "k", P.Tag "l")))

let test_expr_errors () =
  let env = lookup_of [ ("k", 7) ] in
  Alcotest.(check bool) "div by zero" true
    (try ignore (P.eval_expr env (P.Div (P.Tag "k", P.Const 0))); false
     with P.Eval_error _ -> true);
  Alcotest.(check bool) "mod by zero" true
    (try ignore (P.eval_expr env (P.Mod (P.Tag "k", P.Const 0))); false
     with P.Eval_error _ -> true)

let test_expr_tags () =
  Alcotest.(check (list string)) "collected sorted unique" [ "a"; "b" ]
    (P.expr_tags (P.Add (P.Tag "b", P.Mul (P.Tag "a", P.Tag "b"))))

let test_guard_eval () =
  let env = lookup_of [ ("level", 41) ] in
  let g40 = P.Cmp (P.Gt, P.Tag "level", P.Const 40) in
  Alcotest.(check bool) "paper's level > 40" true (P.eval_guard env g40);
  Alcotest.(check bool) "negation" false (P.eval_guard env (P.Not g40));
  Alcotest.(check bool) "and" true
    (P.eval_guard env (P.And (g40, P.Cmp (P.Le, P.Tag "level", P.Const 81))));
  Alcotest.(check bool) "or" true
    (P.eval_guard env (P.Or (P.Cmp (P.Eq, P.Tag "level", P.Const 0), g40)));
  Alcotest.(check bool) "true" true (P.eval_guard env P.True)

let record ~f ~t =
  Record.of_list ~fields:(List.map (fun n -> (n, Value.of_int 0)) f) ~tags:t

let test_matches_structural () =
  let p = P.make ~fields:[ "board" ] ~tags:[ "done" ] () in
  Alcotest.(check bool) "match" true
    (P.matches p (record ~f:[ "board" ] ~t:[ ("done", 1) ]));
  Alcotest.(check bool) "extra labels fine" true
    (P.matches p (record ~f:[ "board"; "opts" ] ~t:[ ("done", 0); ("k", 2) ]));
  Alcotest.(check bool) "missing tag" false
    (P.matches p (record ~f:[ "board" ] ~t:[]))

let test_matches_guard () =
  let p =
    P.make ~fields:[] ~tags:[ "level" ]
      ~guard:(P.Cmp (P.Gt, P.Tag "level", P.Const 40))
      ()
  in
  Alcotest.(check bool) "41 exits" true (P.matches p (record ~f:[] ~t:[ ("level", 41) ]));
  Alcotest.(check bool) "40 loops" false (P.matches p (record ~f:[] ~t:[ ("level", 40) ]));
  (* Guard referencing a tag the record lacks: no match rather than an
     error. *)
  let q =
    P.of_variant
      ~guard:(P.Cmp (P.Eq, P.Tag "ghost", P.Const 0))
      (Snet.Rectype.Variant.make ~fields:[] ~tags:[])
  in
  Alcotest.(check bool) "unbound guard tag" false
    (P.matches q (record ~f:[] ~t:[]))

let test_validate () =
  let bad =
    P.make ~fields:[] ~tags:[ "k" ]
      ~guard:(P.Cmp (P.Gt, P.Tag "other", P.Const 0))
      ()
  in
  Alcotest.(check bool) "guard must use pattern tags" true
    (try P.validate bad; false with Invalid_argument _ -> true);
  P.validate (P.make ~fields:[] ~tags:[ "k" ] ~guard:(P.Cmp (P.Gt, P.Tag "k", P.Const 0)) ())

let test_to_string () =
  Alcotest.(check string) "plain" "{<done>}"
    (P.to_string (P.make ~fields:[] ~tags:[ "done" ] ()));
  Alcotest.(check string) "guarded" "{<level>} | <level> > 40"
    (P.to_string
       (P.make ~fields:[] ~tags:[ "level" ]
          ~guard:(P.Cmp (P.Gt, P.Tag "level", P.Const 40))
          ()))

(* qcheck: Mod result matches C semantics (sign of dividend). *)
let prop_mod_c_semantics =
  QCheck.Test.make ~name:"% has C semantics" ~count:200
    (QCheck.make QCheck.Gen.(pair (int_range (-100) 100) (int_range 1 20)))
    (fun (a, b) ->
      P.eval_expr (fun _ -> a) (P.Mod (P.Tag "x", P.Const b)) = a mod b)

let suite =
  [
    Alcotest.test_case "expression evaluation" `Quick test_expr_eval;
    Alcotest.test_case "expression errors" `Quick test_expr_errors;
    Alcotest.test_case "expression tags" `Quick test_expr_tags;
    Alcotest.test_case "guard evaluation" `Quick test_guard_eval;
    Alcotest.test_case "structural matching" `Quick test_matches_structural;
    Alcotest.test_case "guarded matching" `Quick test_matches_guard;
    Alcotest.test_case "validation" `Quick test_validate;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Seeded.to_alcotest prop_mod_c_semantics;
  ]
