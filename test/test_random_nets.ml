(* Differential testing on randomly generated networks: every engine
   must agree with the reference interpreter — exactly on fully
   deterministic networks, up to permutation otherwise.

   Generation lives in {!Detcheck.Netgen} (shared with the
   schedule-exploring oracle and the replay CLI), so the grammar here
   includes synchrocells, feedback stars and supervised boxes (error
   records, retry exhaustion with backoff, timeout overruns). These
   properties exercise the REAL engines — OS threads, domain pool,
   wall clock; the same specs run under virtual schedules in
   [test_detcheck]. *)

module Net = Snet.Net
module Box = Snet.Box
module Netgen = Detcheck.Netgen

let arbitrary klass =
  QCheck.make ~print:Netgen.print
    ~shrink:(fun spec yield -> Seq.iter yield (Netgen.shrink spec))
    (Netgen.gen klass)

let run_differential spec =
  let det = Netgen.deterministic spec in
  let net = Netgen.to_net spec in
  let records = Netgen.records spec in
  let reference =
    Netgen.signature_string ~det (Snet.Engine_seq.run net records)
  in
  let pool = Scheduler.Pool.create ~num_domains:2 () in
  Fun.protect
    ~finally:(fun () -> Scheduler.Pool.shutdown pool)
    (fun () ->
      let conc =
        Netgen.signature_string ~det (Snet.Engine_conc.run ~pool net records)
      in
      let thr =
        Netgen.signature_string ~det (Snet.Engine_thread.run net records)
      in
      conc = reference && thr = reference)

let prop_det =
  QCheck.Test.make ~name:"random det nets: all engines byte-identical"
    ~count:40 (arbitrary Netgen.Det) run_differential

let prop_nondet =
  QCheck.Test.make ~name:"random nondet nets: same multiset on all engines"
    ~count:40 (arbitrary Netgen.Nondet) run_differential

(* The real pool's steal-victim choice routed through a seeded chooser
   ({!Scheduler.Pool.create}'s [steal_choice] hook): same differential
   bar, but the pool's only internal randomness now derives from the
   session seed. *)
let prop_det_steal_fuzz =
  QCheck.Test.make
    ~name:"random det nets: byte-identical under seeded steal fuzzing"
    ~count:15 (arbitrary Netgen.Det)
    (fun spec ->
      let net = Netgen.to_net spec in
      let records = Netgen.records spec in
      let reference =
        Netgen.signature_string ~det:true (Snet.Engine_seq.run net records)
      in
      let pool =
        Scheduler.Pool.create ~num_domains:2
          ~steal_choice:(Detcheck.Strategy.steal_choice ~seed:(Seeded.seed ()))
          ()
      in
      Fun.protect
        ~finally:(fun () -> Scheduler.Pool.shutdown pool)
        (fun () ->
          Netgen.signature_string ~det:true
            (Snet.Engine_conc.run ~pool net records)
          = reference))

(* Soundness of the admission check: if Typecheck.flow accepts a
   record's variant, the reference engine must route it without error;
   if it rejects, the engine must reject too (it runs the same check).
   The grammar below includes a box demanding an extra tag so that
   rejection actually occurs. *)

let needs_y =
  Box.make ~name:"needsY" ~input:[ Box.T "x"; Box.T "y" ]
    ~outputs:[ [ Box.T "x"; Box.T "y" ] ]
    (fun ~emit -> function
      | [ Tag x; Tag y ] -> emit 1 [ Tag (x + y); Tag y ]
      | _ -> assert false)

let rec picky_net_gen depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneofl [ Net.box Netgen.inc; Net.box needs_y; Net.box Netgen.dup ]
  else
    frequency
      [
        (2, oneofl [ Net.box Netgen.inc; Net.box needs_y ]);
        ( 2,
          map2 Net.serial (picky_net_gen (depth - 1)) (picky_net_gen (depth - 1)) );
        ( 1,
          map2 (fun a b -> Net.choice a b) (picky_net_gen (depth - 1))
            (picky_net_gen (depth - 1)) );
        (1, map (fun b -> Net.split b "k") (picky_net_gen (depth - 1)));
      ]

let prop_flow_soundness =
  QCheck.Test.make ~name:"flow acceptance = engine acceptance" ~count:100
    (QCheck.make
       ~print:(fun (n, has_y) ->
         Printf.sprintf "%s on %s" (Net.to_string n)
           (if has_y then "{<x>,<y>,<k>}" else "{<x>,<k>}"))
       QCheck.Gen.(pair (picky_net_gen 3) bool))
    (fun (net, has_y) ->
      let tags = [ ("x", 1); ("k", 0) ] @ (if has_y then [ ("y", 2) ] else []) in
      let record = Snet.record ~tags () in
      let variant = Snet.Rectype.Variant.of_record record in
      let statically_ok =
        match Snet.Typecheck.flow [ variant ] net with
        | _ -> true
        | exception Snet.Typecheck.Type_error _ -> false
      in
      let dynamically_ok =
        match Snet.Engine_seq.run net [ record ] with
        | _ -> true
        | exception
            ( Snet.Typecheck.Type_error _ | Snet.Engine_seq.Route_error _
            | Invalid_argument _ ) ->
            false
      in
      statically_ok = dynamically_ok)

let suite =
  [
    Seeded.to_alcotest prop_det;
    Seeded.to_alcotest prop_nondet;
    Seeded.to_alcotest prop_det_steal_fuzz;
    Seeded.to_alcotest prop_flow_soundness;
  ]
