(* Record types and structural subtyping (Section 4). *)

module Rectype = Snet.Rectype
module Variant = Snet.Rectype.Variant
module Record = Snet.Record
module Value = Snet.Value

let v ~f ~t = Variant.make ~fields:f ~tags:t

let test_variant_basics () =
  let x = v ~f:[ "a"; "b" ] ~t:[ "k" ] in
  Alcotest.(check (list string)) "fields sorted" [ "a"; "b" ] (Variant.fields x);
  Alcotest.(check (list string)) "tags" [ "k" ] (Variant.tags x);
  Alcotest.(check int) "arity" 3 (Variant.arity x);
  Alcotest.(check string) "to_string" "{a,b,<k>}" (Variant.to_string x);
  Alcotest.(check bool) "equal" true (Variant.equal x (v ~f:[ "b"; "a" ] ~t:[ "k" ]))

(* t1 <= t2 iff t2 ⊆ t1: more labels is more specific. *)
let test_subtyping () =
  let wide = v ~f:[ "a"; "b" ] ~t:[ "k" ] in
  let narrow = v ~f:[ "a" ] ~t:[] in
  Alcotest.(check bool) "wide <= narrow" true (Variant.subtype wide narrow);
  Alcotest.(check bool) "narrow </= wide" false (Variant.subtype narrow wide);
  Alcotest.(check bool) "reflexive" true (Variant.subtype wide wide);
  (* Field and tag namespaces are distinct. *)
  let tag_a = v ~f:[] ~t:[ "a" ] in
  let field_a = v ~f:[ "a" ] ~t:[] in
  Alcotest.(check bool) "tag a is not field a" false (Variant.subtype tag_a field_a)

let test_union_diff () =
  let a = v ~f:[ "a" ] ~t:[ "k" ] and b = v ~f:[ "b" ] ~t:[ "k" ] in
  Alcotest.(check bool) "union" true
    (Variant.equal (Variant.union a b) (v ~f:[ "a"; "b" ] ~t:[ "k" ]));
  Alcotest.(check bool) "diff" true
    (Variant.equal (Variant.diff (Variant.union a b) b) (v ~f:[ "a" ] ~t:[]))

let record ~f ~t =
  Record.of_list ~fields:(List.map (fun n -> (n, Value.of_int 0)) f)
    ~tags:(List.map (fun n -> (n, 0)) t)

let test_accepts () =
  let input = v ~f:[ "a" ] ~t:[ "b" ] in
  Alcotest.(check bool) "exact" true (Variant.accepts input (record ~f:[ "a" ] ~t:[ "b" ]));
  Alcotest.(check bool) "extra labels ok (subtyping)" true
    (Variant.accepts input (record ~f:[ "a"; "d" ] ~t:[ "b" ]));
  Alcotest.(check bool) "missing tag" false
    (Variant.accepts input (record ~f:[ "a" ] ~t:[]))

let test_match_score () =
  let r = record ~f:[ "a"; "b" ] ~t:[ "k" ] in
  Alcotest.(check (option int)) "more demanding = higher score" (Some 3)
    (Variant.match_score (v ~f:[ "a"; "b" ] ~t:[ "k" ]) r);
  Alcotest.(check (option int)) "less demanding" (Some 1)
    (Variant.match_score (v ~f:[ "a" ] ~t:[]) r);
  Alcotest.(check (option int)) "no match" None
    (Variant.match_score (v ~f:[ "z" ] ~t:[]) r)

let test_multivariant () =
  let x = [ v ~f:[ "a"; "b" ] ~t:[]; v ~f:[ "a" ] ~t:[ "k" ] ] in
  let y = [ v ~f:[ "a" ] ~t:[] ] in
  Alcotest.(check bool) "every variant has a supertype" true (Rectype.subtype x y);
  Alcotest.(check bool) "converse fails" false (Rectype.subtype y x);
  let r = record ~f:[ "a" ] ~t:[ "k" ] in
  Alcotest.(check bool) "accepts via second variant" true (Rectype.accepts x r);
  Alcotest.(check (option int)) "best score" (Some 2) (Rectype.match_score x r)

let test_normalise_union () =
  let dup = [ v ~f:[ "a" ] ~t:[]; v ~f:[ "a" ] ~t:[] ] in
  Alcotest.(check int) "dedup" 1 (List.length (Rectype.normalise dup));
  let u = Rectype.union [ v ~f:[ "a" ] ~t:[] ] [ v ~f:[ "b" ] ~t:[] ] in
  Alcotest.(check int) "union size" 2 (List.length u);
  Alcotest.(check string) "to_string" "{a} | {b}" (Rectype.to_string u)

let test_signature_string () =
  let sg =
    {
      Rectype.input = [ v ~f:[ "a" ] ~t:[ "b" ] ];
      output = [ v ~f:[ "c" ] ~t:[]; v ~f:[ "c"; "d" ] ~t:[ "e" ] ];
    }
  in
  Alcotest.(check string) "paper's box foo signature"
    "{a,<b>} -> {c} | {c,d,<e>}"
    (Rectype.signature_to_string sg)

(* qcheck: subtyping is a preorder. Drawing from the generator's own
   state (not the global [Random]) keeps the property reproducible
   from the printed seed. *)
let variant_gen st =
  let subset = List.filter (fun _ -> Random.State.bool st) in
  v ~f:(subset [ "a"; "b"; "c"; "d" ]) ~t:(subset [ "k"; "l" ])

let prop_subtype_reflexive =
  QCheck.Test.make ~name:"subtype is reflexive" ~count:100
    (QCheck.make variant_gen)
    (fun x -> Variant.subtype x x)

let prop_subtype_transitive =
  QCheck.Test.make ~name:"subtype is transitive" ~count:300
    (QCheck.make QCheck.Gen.(triple variant_gen variant_gen variant_gen))
    (fun (x, y, z) ->
      (not (Variant.subtype x y && Variant.subtype y z)) || Variant.subtype x z)

let prop_union_upper_bound =
  QCheck.Test.make ~name:"x union y is a subtype of both" ~count:100
    (QCheck.make QCheck.Gen.(pair variant_gen variant_gen))
    (fun (x, y) ->
      let u = Variant.union x y in
      Variant.subtype u x && Variant.subtype u y)

let suite =
  [
    Alcotest.test_case "variant basics" `Quick test_variant_basics;
    Alcotest.test_case "subtyping" `Quick test_subtyping;
    Alcotest.test_case "union/diff" `Quick test_union_diff;
    Alcotest.test_case "accepts" `Quick test_accepts;
    Alcotest.test_case "match score" `Quick test_match_score;
    Alcotest.test_case "multivariant subtyping" `Quick test_multivariant;
    Alcotest.test_case "normalise/union" `Quick test_normalise_union;
    Alcotest.test_case "signature rendering" `Quick test_signature_string;
    Seeded.to_alcotest prop_subtype_reflexive;
    Seeded.to_alcotest prop_subtype_transitive;
    Seeded.to_alcotest prop_union_upper_bound;
  ]
