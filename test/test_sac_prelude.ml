(* The SaC-in-SaC prelude, checked against the native builtins. *)

module I = Saclang.Sac_interp
module V = Saclang.Svalue
module B = Sacarray.Builtins
module Nd = Sacarray.Nd

let prog = lazy (Saclang.Sac_prelude.program ())

let call1 f args =
  match I.call (Lazy.force prog) f args with
  | [ v ] -> v
  | _ -> Alcotest.fail (f ^ ": one result expected")

let check_vec msg expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s = %s" msg
       (Nd.to_string string_of_int expected)
       (V.to_string got))
    true
    (V.equal (V.of_int_nd expected) got)

let test_iota () =
  check_vec "iota 6" (B.iota 6) (call1 "iota" [ V.int 6 ])

let test_concat () =
  check_vec "concat"
    (B.concat (Nd.vector [ 1; 2 ]) (Nd.vector [ 3; 4; 5 ]))
    (call1 "concat" [ V.vector [ 1; 2 ]; V.vector [ 3; 4; 5 ] ])

let test_take_drop () =
  let v = [ 9; 8; 7; 6; 5 ] in
  check_vec "take" (B.take [| 3 |] (Nd.vector v)) (call1 "take" [ V.int 3; V.vector v ]);
  check_vec "drop" (B.drop [| 2 |] (Nd.vector v)) (call1 "drop" [ V.int 2; V.vector v ])

let test_reverse_rotate () =
  let v = [ 1; 2; 3; 4; 5 ] in
  check_vec "reverse" (B.reverse 0 (Nd.vector v)) (call1 "reverse" [ V.vector v ]);
  List.iter
    (fun r ->
      check_vec
        (Printf.sprintf "rotate %d" r)
        (B.rotate 0 r (Nd.vector v))
        (call1 "rotate" [ V.int r; V.vector v ]))
    [ 0; 1; 3; -2; 7 ]

let test_reductions () =
  Alcotest.(check int) "maxval" 9 (V.to_int (call1 "maxval" [ V.vector [ 3; 9; 1 ] ]));
  Alcotest.(check int) "minval" 1 (V.to_int (call1 "minval" [ V.vector [ 3; 9; 1 ] ]));
  Alcotest.(check int) "count_eq" 2
    (V.to_int (call1 "count_eq" [ V.int 4; V.vector [ 4; 1; 4; 2 ] ]))

let test_user_code_on_top () =
  let prog =
    I.load
      (Saclang.Sac_prelude.with_prelude
         {|
         int palindromic(int[*] a)
         {
           same = 0;
           n = shape(a)[0];
           r = reverse(a);
           for (i = 0; i < n; i++) {
             if (a[i] == r[i]) { same = same + 1; }
           }
           return (same);
         }
         |})
  in
  match I.call prog "palindromic" [ V.vector [ 1; 2; 3; 2; 1 ] ] with
  | [ v ] -> Alcotest.(check int) "all positions match" 5 (V.to_int v)
  | _ -> Alcotest.fail "one result expected"

let prop_prelude_concat_matches_builtin =
  QCheck.Test.make ~name:"prelude concat = Builtins.concat" ~count:50
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 0 8) (int_range (-20) 20))
           (list_size (int_range 0 8) (int_range (-20) 20))))
    (fun (a, b) ->
      V.equal
        (V.of_int_nd (B.concat (Nd.vector a) (Nd.vector b)))
        (call1 "concat" [ V.vector a; V.vector b ]))

let suite =
  [
    Alcotest.test_case "iota" `Quick test_iota;
    Alcotest.test_case "concat" `Quick test_concat;
    Alcotest.test_case "take/drop" `Quick test_take_drop;
    Alcotest.test_case "reverse/rotate" `Quick test_reverse_rotate;
    Alcotest.test_case "reductions" `Quick test_reductions;
    Alcotest.test_case "user code over the prelude" `Quick test_user_code_on_top;
    Seeded.to_alcotest prop_prelude_concat_matches_builtin;
  ]
