(* Domain pool, futures, latches, barriers, work-stealing deque. *)

module Pool = Scheduler.Pool
module Future = Scheduler.Future
module Sync = Scheduler.Sync
module CL = Scheduler.Chase_lev

let with_pool n f =
  let pool = Pool.create ~num_domains:n () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_future_fill () =
  let fut = Future.create () in
  Alcotest.(check bool) "unresolved" false (Future.is_resolved fut);
  Future.fill fut 42;
  Alcotest.(check int) "await" 42 (Future.await fut);
  Alcotest.(check bool) "resolved" true (Future.is_resolved fut);
  Alcotest.(check bool) "double fill rejected" true
    (try Future.fill fut 1; false with Invalid_argument _ -> true)

exception Boom

let test_future_error () =
  let fut = Future.create () in
  Future.run fut (fun () -> raise Boom);
  Alcotest.(check bool) "await re-raises" true
    (try ignore (Future.await fut); false with Boom -> true);
  match Future.peek fut with
  | Some (Error Boom) -> ()
  | _ -> Alcotest.fail "peek should expose the error"

let test_latch () =
  let l = Sync.Latch.create 3 in
  Alcotest.(check int) "pending" 3 (Sync.Latch.pending l);
  Sync.Latch.count_down l;
  Sync.Latch.count_down l;
  Sync.Latch.count_down l;
  Sync.Latch.await l;
  Sync.Latch.count_down l (* below zero is ignored *);
  Alcotest.(check int) "drained" 0 (Sync.Latch.pending l);
  Sync.Latch.await (Sync.Latch.create 0)

let test_barrier () =
  let b = Sync.Barrier.create 3 in
  let hits = Atomic.make 0 in
  let domains =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            ignore (Sync.Barrier.await b);
            Atomic.incr hits;
            ignore (Sync.Barrier.await b)))
  in
  ignore (Sync.Barrier.await b);
  (* After the first barrier trips, all parties have arrived. *)
  ignore (Sync.Barrier.await b);
  Alcotest.(check int) "all crossed" 2 (Atomic.get hits);
  List.iter Domain.join domains

let test_pool_run () =
  with_pool 2 (fun pool ->
      Alcotest.(check int) "run" 7 (Pool.run pool (fun () -> 3 + 4));
      Alcotest.(check int) "workers" 2 (Pool.num_workers pool);
      Alcotest.(check int) "parallelism" 3 (Pool.parallelism pool);
      let fut = Pool.async pool (fun () -> String.length "hello") in
      Alcotest.(check int) "async" 5 (Future.await fut))

let test_pool_zero_workers () =
  with_pool 0 (fun pool ->
      Alcotest.(check int) "run sequentially" 10
        (Pool.run pool (fun () -> 10));
      let total = ref 0 in
      Pool.parallel_for pool ~lo:0 ~hi:100 (fun i -> total := !total + i);
      Alcotest.(check int) "parallel_for" 4950 !total)

let test_parallel_for () =
  with_pool 3 (fun pool ->
      let hits = Array.make 1000 0 in
      Pool.parallel_for pool ~lo:0 ~hi:1000 (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "each index exactly once" true
        (Array.for_all (fun h -> h = 1) hits);
      (* Empty and single-element ranges. *)
      Pool.parallel_for pool ~lo:5 ~hi:5 (fun _ -> Alcotest.fail "no indices");
      let one = ref 0 in
      Pool.parallel_for pool ~lo:7 ~hi:8 (fun i -> one := i);
      Alcotest.(check int) "singleton" 7 !one)

let test_parallel_for_reduce () =
  with_pool 3 (fun pool ->
      let sum =
        Pool.parallel_for_reduce pool ~lo:1 ~hi:1001 ~combine:( + ) ~init:0
          (fun i -> i)
      in
      Alcotest.(check int) "sum 1..1000" 500500 sum;
      let s2 =
        Pool.parallel_for_reduce pool ~chunk:7 ~lo:0 ~hi:100 ~combine:( + )
          ~init:0
          (fun i -> i * i)
      in
      Alcotest.(check int) "chunked" 328350 s2)

let test_parallel_for_exception () =
  with_pool 2 (fun pool ->
      Alcotest.(check bool) "body exception propagates" true
        (try
           Pool.parallel_for pool ~lo:0 ~hi:100 (fun i ->
               if i = 50 then raise Boom);
           false
         with Boom -> true))

let test_parallel_map_array () =
  with_pool 2 (fun pool ->
      let a = Array.init 100 Fun.id in
      let b = Pool.parallel_map_array pool (fun x -> x * 2) a in
      Alcotest.(check bool) "mapped" true
        (Array.for_all2 (fun x y -> y = 2 * x) a b);
      Alcotest.(check (array int)) "empty" [||]
        (Pool.parallel_map_array pool (fun x -> x) [||]))

let test_nested_run () =
  with_pool 2 (fun pool ->
      (* A task that itself submits work must not deadlock the pool. *)
      let v =
        Pool.run pool (fun () ->
            let inner = Pool.run pool (fun () -> 21) in
            2 * inner)
      in
      Alcotest.(check int) "nested" 42 v)

let test_shutdown () =
  let pool = Pool.create ~num_domains:1 () in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.(check bool) "submit after shutdown" true
    (try ignore (Pool.async pool (fun () -> ())); false
     with Invalid_argument _ -> true)

let test_chase_lev_lifo_fifo () =
  let q = CL.create () in
  CL.push q 1;
  CL.push q 2;
  CL.push q 3;
  Alcotest.(check int) "size" 3 (CL.size q);
  Alcotest.(check (option int)) "owner pops LIFO" (Some 3) (CL.pop q);
  Alcotest.(check (option int)) "thief steals FIFO" (Some 1) (CL.steal q);
  Alcotest.(check (option int)) "pop" (Some 2) (CL.pop q);
  Alcotest.(check (option int)) "empty pop" None (CL.pop q);
  Alcotest.(check (option int)) "empty steal" None (CL.steal q);
  Alcotest.(check bool) "is_empty" true (CL.is_empty q)

let test_chase_lev_growth () =
  let q = CL.create ~capacity:2 () in
  for i = 0 to 199 do
    CL.push q i
  done;
  Alcotest.(check int) "grew" 200 (CL.size q);
  let seen = ref [] in
  let rec drain () =
    match CL.pop q with
    | Some v ->
        seen := v :: !seen;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "drained in order" (List.init 200 Fun.id) !seen

let test_chase_lev_concurrent () =
  let q = CL.create () in
  let n = 10_000 in
  let stolen = Atomic.make 0 and stop = Atomic.make false in
  let thief =
    Domain.spawn (fun () ->
        let rec go () =
          match CL.steal q with
          | Some _ ->
              Atomic.incr stolen;
              go ()
          | None ->
              if not (Atomic.get stop) then begin
                Domain.cpu_relax ();
                go ()
              end
        in
        go ())
  in
  let popped = ref 0 in
  for i = 0 to n - 1 do
    CL.push q i;
    if i mod 3 = 0 then (match CL.pop q with Some _ -> incr popped | None -> ())
  done;
  let rec drain () =
    match CL.pop q with
    | Some _ ->
        incr popped;
        drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  Domain.join thief;
  Alcotest.(check int) "no element lost or duplicated" n
    (!popped + Atomic.get stolen)

let test_chase_lev_capacity () =
  (* Tiny initial capacities are honoured (rounded up to a power of
     two) and grow transparently. *)
  List.iter
    (fun cap ->
      let q = CL.create ~capacity:cap () in
      for i = 0 to 99 do
        CL.push q i
      done;
      let rec drain acc =
        match CL.pop q with Some v -> drain (v :: acc) | None -> acc
      in
      Alcotest.(check (list int))
        (Printf.sprintf "capacity %d grows and keeps order" cap)
        (List.init 100 Fun.id) (drain []))
    [ 1; 2; 3; 5; 64 ];
  Alcotest.(check bool) "capacity 0 rejected" true
    (try ignore (CL.create ~capacity:0 ()); false
     with Invalid_argument _ -> true)

(* Concurrent stealers against an owner interleaving push/pop: every
   element ends up with exactly one party. *)
let prop_chase_lev_partition =
  QCheck.Test.make ~name:"chase-lev: push/pop/steal partition elements"
    ~count:10
    (QCheck.make QCheck.Gen.(pair (int_range 50 1500) (int_range 1 3)))
    (fun (n, thieves) ->
      let q = CL.create ~capacity:2 () in
      let stop = Atomic.make false in
      let stolen = Array.make thieves [] in
      let doms =
        List.init thieves (fun ti ->
            Domain.spawn (fun () ->
                let acc = ref [] in
                let rec go () =
                  match CL.steal q with
                  | Some v ->
                      acc := v :: !acc;
                      go ()
                  | None ->
                      if not (Atomic.get stop) then begin
                        Domain.cpu_relax ();
                        go ()
                      end
                in
                go ();
                stolen.(ti) <- !acc))
      in
      let popped = ref [] in
      for i = 0 to n - 1 do
        CL.push q i;
        if i land 3 = 0 then
          match CL.pop q with
          | Some v -> popped := v :: !popped
          | None -> ()
      done;
      let rec drain () =
        match CL.pop q with
        | Some v ->
            popped := v :: !popped;
            drain ()
        | None -> ()
      in
      drain ();
      Atomic.set stop true;
      List.iter Domain.join doms;
      let all = List.concat (!popped :: Array.to_list stolen) in
      List.sort compare all = List.init n Fun.id)

let test_nested_parallel_for () =
  (* parallel_for from inside pool tasks: no deadlock, no lost or
     duplicated indices, even with single-index chunks forcing maximal
     task counts. *)
  with_pool 3 (fun pool ->
      let total = Atomic.make 0 in
      Pool.parallel_for pool ~chunk:1 ~lo:0 ~hi:16 (fun _ ->
          Pool.parallel_for pool ~chunk:8 ~lo:0 ~hi:500 (fun _ ->
              Atomic.incr total));
      Alcotest.(check int) "nested indices all covered" 8000
        (Atomic.get total);
      let v =
        Pool.run pool (fun () ->
            let acc = Atomic.make 0 in
            Pool.parallel_for pool ~chunk:1 ~lo:0 ~hi:8 (fun i ->
                ignore
                  (Atomic.fetch_and_add acc (Pool.run pool (fun () -> i))));
            Atomic.get acc)
      in
      Alcotest.(check int) "run inside parallel_for inside run" 28 v)

let test_parallel_for_range () =
  with_pool 2 (fun pool ->
      let hits = Array.make 10_000 0 in
      Pool.parallel_for_range pool ~grain:64 ~lo:0 ~hi:10_000
        (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Alcotest.(check bool) "ranges partition the interval" true
        (Array.for_all (fun h -> h = 1) hits);
      let sum =
        Pool.parallel_for_reduce_range pool ~grain:128 ~lo:0 ~hi:1_000
          ~combine:( + ) ~init:0
          (fun ~lo ~hi ->
            let acc = ref 0 in
            for i = lo to hi - 1 do
              acc := !acc + i
            done;
            !acc)
      in
      Alcotest.(check int) "range reduce" 499500 sum)

let test_pool_counters () =
  with_pool 2 (fun pool ->
      let s0 = Pool.stats pool in
      Alcotest.(check int) "run" 1 (Pool.run pool (fun () -> 1));
      Pool.parallel_for pool ~chunk:16 ~lo:0 ~hi:100_000 (fun _ -> ());
      let s1 = Pool.stats pool in
      Alcotest.(check bool) "tasks counted" true (s1.Pool.tasks > s0.Pool.tasks);
      Alcotest.(check bool) "counters monotonic" true
        (s1.Pool.steals >= s0.Pool.steals
        && s1.Pool.parks >= s0.Pool.parks
        && s1.Pool.splits >= s0.Pool.splits))

let prop_parallel_sum_matches =
  QCheck.Test.make ~name:"parallel_for_reduce = List fold" ~count:20
    (QCheck.make QCheck.Gen.(int_range 0 2000))
    (fun n ->
      let pool = Pool.create ~num_domains:2 () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          let expect = n * (n - 1) / 2 in
          Pool.parallel_for_reduce pool ~lo:0 ~hi:n ~combine:( + ) ~init:0
            Fun.id
          = expect))

let suite =
  [
    Alcotest.test_case "future fill/await" `Quick test_future_fill;
    Alcotest.test_case "future error" `Quick test_future_error;
    Alcotest.test_case "latch" `Quick test_latch;
    Alcotest.test_case "barrier" `Quick test_barrier;
    Alcotest.test_case "pool run/async" `Quick test_pool_run;
    Alcotest.test_case "pool with zero workers" `Quick test_pool_zero_workers;
    Alcotest.test_case "parallel_for covers range once" `Quick test_parallel_for;
    Alcotest.test_case "parallel_for_reduce" `Quick test_parallel_for_reduce;
    Alcotest.test_case "parallel_for exception" `Quick test_parallel_for_exception;
    Alcotest.test_case "parallel_map_array" `Quick test_parallel_map_array;
    Alcotest.test_case "nested run" `Quick test_nested_run;
    Alcotest.test_case "shutdown" `Quick test_shutdown;
    Alcotest.test_case "chase-lev LIFO/FIFO" `Quick test_chase_lev_lifo_fifo;
    Alcotest.test_case "chase-lev growth" `Quick test_chase_lev_growth;
    Alcotest.test_case "chase-lev concurrent steals" `Quick test_chase_lev_concurrent;
    Alcotest.test_case "chase-lev capacity rounding" `Quick test_chase_lev_capacity;
    Alcotest.test_case "nested parallel_for" `Quick test_nested_parallel_for;
    Alcotest.test_case "parallel_for_range" `Quick test_parallel_for_range;
    Alcotest.test_case "pool counters" `Quick test_pool_counters;
    Seeded.to_alcotest prop_chase_lev_partition;
    Seeded.to_alcotest prop_parallel_sum_matches;
  ]
