(* The serving layer: session lifecycle and admission, per-session
   credit windows, idle reaping on the clock seam, graceful drain, the
   framed-TCP session protocol (exercised hermetically over the
   loopback transport), and the batch-cap validation shared with the
   distribution CLI. Socket-backed cases — the EINTR regression on the
   TCP transport, the HTTP gateway, real-TCP concurrent sessions — are
   gated behind SNET_DIST_TCP=1 like the dist suite's (the @serve-smoke
   and @dist-smoke tiers set it). *)

module Server = Serve.Server
module Client = Serve.Client
module Http_gw = Serve.Http_gw
module Transport = Dist.Transport
module Record = Snet.Record
module Sv = Detcheck.Sched_virtual
module Strategy = Detcheck.Strategy

let tcp_enabled () = Sys.getenv_opt "SNET_DIST_TCP" = Some "1"
let ping_record x = Record.with_tag "x" x Record.empty
let y_exn r = Record.tag_exn "y" r
let ints = Alcotest.(slist int compare)

let cfg ?(max_sessions = 8) ?(credits = 16) ?(batch = 4) ?(idle = 0.) () =
  { Server.max_sessions; credits; batch; idle_timeout = idle }

(* Every test owns a 2-domain pool: the engine needs at least one real
   worker to stream responses while the test thread polls (tier-1 runs
   on single-core hosts, where the zero-worker default pool only makes
   progress inside [finish]). The server is drained before the pool
   goes away. *)
let with_server ?cfg:(c = cfg ()) f =
  let pool = Scheduler.Pool.create ~num_domains:2 () in
  let srv = Server.create ~pool ~cfg:c (Sudoku.Networks.ping ()) in
  Fun.protect
    ~finally:(fun () ->
      (try Server.drain srv with _ -> ());
      Scheduler.Pool.shutdown pool)
    (fun () -> f srv)

let await ?(timeout = 10.) msg f =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail ("timeout waiting for " ^ msg)
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

let ok_session = function
  | Ok s -> s
  | Error `Full -> Alcotest.fail "unexpected session rejection: full"
  | Error `Draining -> Alcotest.fail "unexpected session rejection: draining"

(* Poll until [n] responses arrived (they stream in on pool workers). *)
let collect srv s n =
  let acc = ref [] in
  await "responses"
    (fun () ->
      acc := !acc @ Server.poll srv s ~max:64;
      List.length !acc >= n);
  !acc

(* --- batch-cap validation (shared with --dist-batch/SNET_DIST_BATCH) *)

let test_batch_validation () =
  let check_err s =
    match Dist.Engine_dist.batch_of_string s with
    | Error _ -> ()
    | Ok n -> Alcotest.failf "batch %S wrongly accepted as %d" s n
  in
  List.iter check_err [ "0"; "-3"; ""; "64x"; "  "; "1.5" ];
  let ok s = Result.get_ok (Dist.Engine_dist.batch_of_string s) in
  Alcotest.(check int) "plain" 64 (ok "64");
  Alcotest.(check int) "trimmed" 8 (ok " 8 ");
  Alcotest.(check int) "1 disables" 1 (ok "1");
  Alcotest.(check int) "clamped to max" Dist.Engine_dist.max_batch (ok "999999")

(* --- session lifecycle ------------------------------------------- *)

let test_lifecycle () =
  with_server (fun srv ->
      let s = ok_session (Server.open_session srv) in
      List.iter
        (fun x ->
          Alcotest.(check bool)
            "submit accepted" true
            (Server.submit srv s (ping_record x) = `Ok))
        [ 1; 2; 3 ];
      let rs = collect srv s 3 in
      Alcotest.check ints "responses" [ 2; 3; 4 ] (List.map y_exn rs);
      List.iter
        (fun r ->
          Alcotest.(check (option int))
            "tagged with own session" (Some (Server.session_id s))
            (Record.tag Server.session_tag r))
        rs;
      Server.close_session srv s;
      Alcotest.(check bool) "closed" true (Server.closed s);
      Alcotest.(check bool)
        "submit after close" true
        (Server.submit srv s (ping_record 9) = `Closed);
      let h = Server.health srv in
      Alcotest.(check int) "opened" 1 h.Server.opened;
      Alcotest.(check int) "closed ctr" 1 h.Server.closed;
      Alcotest.(check int) "submitted" 3 h.Server.submitted;
      Alcotest.(check int) "delivered" 3 h.Server.delivered;
      Alcotest.(check int) "dropped" 0 h.Server.dropped)

let test_admission () =
  with_server ~cfg:(cfg ~max_sessions:2 ()) (fun srv ->
      let a = ok_session (Server.open_session srv) in
      let b = ok_session (Server.open_session srv) in
      (match Server.open_session srv with
      | Error `Full -> ()
      | Ok _ | Error `Draining -> Alcotest.fail "third session not rejected");
      Alcotest.(check int) "rejected counted" 1 (Server.health srv).Server.rejected;
      Server.close_session srv b;
      let b' = ok_session (Server.open_session srv) in
      (* Freed slots are reused, keeping the engine's per-session
         replica count bounded by max_sessions. *)
      Alcotest.(check int)
        "slot reused" (Server.session_id b)
        (Server.session_id b');
      Server.close_session srv a;
      Server.close_session srv b')

let test_credit_withholding () =
  with_server ~cfg:(cfg ~credits:2 ()) (fun srv ->
      let s = ok_session (Server.open_session srv) in
      Alcotest.(check int) "window" 2 (Server.window s);
      Alcotest.(check bool) "s1" true (Server.submit srv s (ping_record 1) = `Ok);
      Alcotest.(check bool) "s2" true (Server.submit srv s (ping_record 2) = `Ok);
      await "backlog fills the window" (fun () -> Server.backlog s >= 2);
      Alcotest.(check int) "credits withheld while backlogged" 0
        (Server.take_grants srv s);
      let rs = collect srv s 2 in
      Alcotest.check ints "responses intact" [ 2; 3 ] (List.map y_exn rs);
      Alcotest.(check int) "credits granted after draining" 2
        (Server.take_grants srv s);
      Server.close_session srv s)

(* Two sessions submitting concurrently: each must get exactly its own
   responses back (the [!! <serve_session>] replication at work). *)
let test_interleaved_sessions () =
  with_server ~cfg:(cfg ~credits:64 ()) (fun srv ->
      let n = 40 in
      let drive base =
        let s = ok_session (Server.open_session srv) in
        for i = 0 to n - 1 do
          match Server.submit srv s (ping_record (base + i)) with
          | `Ok -> ()
          | `Closed | `Draining -> Alcotest.fail "submission rejected"
        done;
        (s, collect srv s n)
      in
      let ra = ref None and rb = ref None in
      let ta = Thread.create (fun () -> ra := Some (drive 0)) () in
      let tb = Thread.create (fun () -> rb := Some (drive 1000)) () in
      Thread.join ta;
      Thread.join tb;
      let sa, rsa = Option.get !ra and sb, rsb = Option.get !rb in
      let expect base = List.init n (fun i -> base + i + 1) in
      Alcotest.check ints "session A outputs" (expect 0) (List.map y_exn rsa);
      Alcotest.check ints "session B outputs" (expect 1000) (List.map y_exn rsb);
      List.iter
        (fun (s, rs) ->
          List.iter
            (fun r ->
              Alcotest.(check (option int))
                "no cross-session leakage"
                (Some (Server.session_id s))
                (Record.tag Server.session_tag r))
            rs)
        [ (sa, rsa); (sb, rsb) ])

(* --- idle reaping on the clock seam ------------------------------ *)

let test_reap_virtual_clock () =
  let t = ref 0. in
  let virtual_clock =
    {
      Scheduler.Clock.now = (fun () -> !t);
      sleep = (fun d -> t := !t +. Float.max 0. d);
      label = "test-virtual";
    }
  in
  Scheduler.Clock.with_source virtual_clock (fun () ->
      with_server ~cfg:(cfg ~idle:10. ()) (fun srv ->
          let evicted = ref [] in
          let open_s () =
            ok_session
              (Server.open_session
                 ~on_evict:(fun () -> evicted := true :: !evicted)
                 srv)
          in
          let a = open_s () in
          let b = open_s () in
          Alcotest.(check (list int)) "nothing idle yet" [] (Server.reap_idle srv);
          t := 5.;
          Alcotest.(check bool)
            "activity on a" true
            (Server.submit srv a (ping_record 1) = `Ok);
          t := 11.;
          (* b has been idle for 11s > 10s; a was active at t=5. *)
          Alcotest.(check (list int))
            "only the idle session reaped"
            [ Server.session_id b ]
            (Server.reap_idle srv);
          Alcotest.(check int) "on_evict ran" 1 (List.length !evicted);
          Alcotest.(check bool) "b closed" true (Server.closed b);
          Alcotest.(check bool) "a alive" true (not (Server.closed a));
          Alcotest.(check int) "reaped counted" 1 (Server.health srv).Server.reaped;
          Alcotest.(check bool)
            "submit after reap" true
            (Server.submit srv b (ping_record 2) = `Closed)))

(* --- graceful drain ---------------------------------------------- *)

(* The drain guarantee, differentially: every record accepted before
   the drain gets its response delivered — the per-session multisets
   match an undisturbed run of the same inputs. *)
let test_drain_differential () =
  let inputs_a = List.init 20 (fun i -> i)
  and inputs_b = List.init 20 (fun i -> 500 + i) in
  (* Undisturbed reference: the same net, same inputs, no serving
     layer, no drain racing anything. *)
  let reference xs = List.map (fun x -> x + 1) xs in
  with_server (fun srv ->
      let a = ok_session (Server.open_session srv) in
      let b = ok_session (Server.open_session srv) in
      List.iter
        (fun x -> Alcotest.(check bool) "a" true (Server.submit srv a (ping_record x) = `Ok))
        inputs_a;
      List.iter
        (fun x -> Alcotest.(check bool) "b" true (Server.submit srv b (ping_record x) = `Ok))
        inputs_b;
      Server.drain srv;
      Alcotest.(check bool) "draining" true (Server.is_draining srv);
      (* After drain every response must already sit in its session's
         queue — no waiting, no further engine work. *)
      let rsa = Server.poll srv a ~max:1000 and rsb = Server.poll srv b ~max:1000 in
      Alcotest.check ints "session A drained multiset" (reference inputs_a)
        (List.map y_exn rsa);
      Alcotest.check ints "session B drained multiset" (reference inputs_b)
        (List.map y_exn rsb);
      Alcotest.(check bool)
        "submissions rejected mid-drain" true
        (Server.submit srv a (ping_record 1) = `Draining);
      (match Server.open_session srv with
      | Error `Draining -> ()
      | Ok _ | Error `Full -> Alcotest.fail "open accepted during drain");
      Alcotest.(check int) "nothing dropped" 0 (Server.health srv).Server.dropped)

(* --- detcheck: drain vs submit/open race ------------------------- *)

(* Under the virtual scheduler, race a client fiber (submitting, then
   opening a second session) against a drain, across seeds. Invariant,
   any interleaving: responses delivered = submissions accepted (the
   drain guarantee), and a session opened concurrently with the drain
   either lost the race ([`Draining]) or was admitted and then had its
   queue closed by the drain. *)
let drain_race_seed seed =
  let res, _trace =
    Sv.run ~strategy:(Strategy.random ~seed) (fun sched ->
        let exec = Sv.exec sched in
        let srv =
          Server.create ~exec
            ~cfg:{ Server.max_sessions = 4; credits = 8; batch = 1; idle_timeout = 0. }
            (Sudoku.Networks.ping ())
        in
        let s = ok_session (Server.open_session srv) in
        let accepted = ref 0 in
        let late_open = ref `Pending in
        let client =
          Sv.Platform.spawn (fun () ->
              for i = 1 to 3 do
                match Server.submit srv s (ping_record i) with
                | `Ok -> incr accepted
                | `Draining -> ()
                | `Closed -> Alcotest.fail "session closed unexpectedly"
              done;
              late_open :=
                match Server.open_session srv with
                | Ok s2 -> `Opened s2
                | Error `Draining -> `Draining
                | Error `Full -> `Full)
        in
        Server.drain srv;
        Sv.Platform.join client;
        let delivered = Server.poll srv s ~max:100 in
        (!accepted, List.length delivered, !late_open))
  in
  match res with
  | Error e -> raise e
  | Ok (accepted, delivered, late_open) ->
      Alcotest.(check int)
        (Printf.sprintf "seed %d: delivered = accepted" seed)
        accepted delivered;
      (match late_open with
      | `Draining -> ()
      | `Opened s2 ->
          (* Admitted before the drain flag flipped: the drain must
             still have closed it out cleanly. *)
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: late session closed by drain" seed)
            true (Server.closed s2)
      | `Full -> Alcotest.fail "admission cap hit in race test"
      | `Pending -> Alcotest.fail "client fiber never ran")

let test_detcheck_drain_race () =
  let base = 1_000 * (try int_of_string (Sys.getenv "DETCHECK_SEED") with _ -> 1) in
  for seed = base to base + 14 do
    drain_race_seed seed
  done

(* --- the framed session protocol over loopback ------------------- *)

let with_conn_server ?cfg:(c = cfg ()) f =
  with_server ~cfg:c (fun srv ->
      let client_end, server_end = Transport.loopback_pair ~capacity:256 () in
      let handler = Thread.create (fun () -> Server.serve_conn srv server_end) () in
      Fun.protect ~finally:(fun () -> Thread.join handler) (fun () ->
          f srv client_end))

let test_protocol_roundtrip () =
  with_conn_server (fun _srv conn ->
      let c = Result.get_ok (Client.connect ~credits:4 conn) in
      Alcotest.(check int) "clamped window" 4 (Client.window c);
      let n = 25 in
      (* More submissions than credits: progress proves grants flow. *)
      for i = 1 to n do
        match Client.submit c (ping_record i) with
        | `Ok -> ()
        | `Draining | `Done | `Crashed _ -> Alcotest.fail "submit failed"
      done;
      let rec take acc k =
        if k = 0 then acc
        else
          match Client.recv c with
          | `Record r -> take (y_exn r :: acc) (k - 1)
          | `Done -> Alcotest.fail "premature Done"
          | `Crashed e -> Alcotest.fail ("crash: " ^ e)
      in
      let got = take [] n in
      Alcotest.check ints "responses" (List.init n (fun i -> i + 2)) got;
      Alcotest.(check (list pass)) "clean close" [] (Client.drain_remaining c))

let test_protocol_admission_reject () =
  with_conn_server ~cfg:(cfg ~max_sessions:1 ()) (fun srv conn ->
      let c = Result.get_ok (Client.connect conn) in
      (* The slot is taken: a second connection is rejected in-band. *)
      let client2, server2 = Transport.loopback_pair () in
      let h2 = Thread.create (fun () -> Server.serve_conn srv server2) () in
      (match Client.connect client2 with
      | Error reason ->
          Alcotest.(check string) "reason" "session limit reached" reason
      | Ok _ -> Alcotest.fail "second session admitted past the cap");
      Thread.join h2;
      Alcotest.(check (list pass)) "first session drains clean" []
        (Client.drain_remaining c))

let test_protocol_close_flushes () =
  with_conn_server (fun srv conn ->
      let c = Result.get_ok (Client.connect conn) in
      for i = 1 to 8 do
        Alcotest.(check bool) "submit" true (Client.submit c (ping_record i) = `Ok)
      done;
      (* Wait until the server has pushed all 8 responses towards the
         client, but read none of them — then close. Done must come
         after the queued responses, never instead of them. *)
      await "server-side delivery" (fun () ->
          (Server.health srv).Server.delivered >= 8);
      let rs = Client.drain_remaining c in
      Alcotest.check ints "flush-before-Done" (List.init 8 (fun i -> i + 2))
        (List.map y_exn rs))

(* --- socket-backed cases (gated like the dist suite's) ----------- *)

(* Regression: a signal landing mid-transfer must not abort the TCP
   transport's read/write/select loops. An interval timer storms the
   process with SIGALRM while a payload crosses a real socket many
   times the kernel buffer size, forcing EINTR into blocked writes and
   reads; before the restart fix this raised Unix_error(EINTR). *)
let test_eintr_mid_transfer () =
  if not (tcp_enabled ()) then Alcotest.skip ()
  else begin
    let fired = ref 0 in
    let old = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> incr fired)) in
    let old_timer =
      Unix.setitimer Unix.ITIMER_REAL
        { Unix.it_value = 0.002; it_interval = 0.002 }
    in
    Fun.protect
      ~finally:(fun () ->
        ignore (Unix.setitimer Unix.ITIMER_REAL old_timer);
        ignore (Sys.signal Sys.sigalrm old))
      (fun () ->
        let l = Transport.Tcp.listen () in
        let port = Transport.Tcp.port l in
        let payload = String.init (4 * 1024 * 1024) (fun i -> Char.chr (i land 0xff)) in
        let got = ref None in
        let server =
          Thread.create
            (fun () ->
              let c = Transport.Tcp.accept ~timeout_s:10. l in
              (match Transport.Tcp.recv c with
              | `Msg m -> got := Some m
              | `Closed -> ());
              (* Echo it back so both directions cross the timer. *)
              (match !got with
              | Some m -> Transport.Tcp.send c m
              | None -> ());
              Transport.Tcp.close c)
            ()
        in
        let c = Transport.Tcp.connect ~host:"127.0.0.1" ~port in
        Transport.Tcp.send c payload;
        let echoed =
          match Transport.Tcp.recv c with `Msg m -> m | `Closed -> ""
        in
        Thread.join server;
        Transport.Tcp.close c;
        Transport.Tcp.close_listener l;
        Alcotest.(check bool) "payload intact" true (Some payload = !got);
        Alcotest.(check bool) "echo intact" true (payload = echoed);
        Alcotest.(check bool) "timer actually fired" true (!fired > 0))
  end

(* try_accept under the same signal storm: a timeout elapses cleanly
   (None), and an arriving connection is still accepted. *)
let test_eintr_try_accept () =
  if not (tcp_enabled ()) then Alcotest.skip ()
  else begin
    let fired = ref 0 in
    let old = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> incr fired)) in
    let old_timer =
      Unix.setitimer Unix.ITIMER_REAL
        { Unix.it_value = 0.002; it_interval = 0.002 }
    in
    Fun.protect
      ~finally:(fun () ->
        ignore (Unix.setitimer Unix.ITIMER_REAL old_timer);
        ignore (Sys.signal Sys.sigalrm old))
      (fun () ->
        let l = Transport.Tcp.listen () in
        Alcotest.(check bool)
          "timeout elapses despite signals" true
          (Transport.Tcp.try_accept ~timeout_s:0.1 l = None);
        let port = Transport.Tcp.port l in
        let dialer =
          Thread.create
            (fun () ->
              let c = Transport.Tcp.connect ~host:"127.0.0.1" ~port in
              Transport.Tcp.send c "hi";
              Transport.Tcp.close c)
            ()
        in
        (match Transport.Tcp.try_accept ~timeout_s:10. l with
        | None -> Alcotest.fail "no connection accepted"
        | Some c ->
            (match Transport.Tcp.recv c with
            | `Msg m -> Alcotest.(check string) "frame" "hi" m
            | `Closed -> Alcotest.fail "peer vanished");
            Transport.Tcp.close c);
        Thread.join dialer;
        Transport.Tcp.close_listener l;
        Alcotest.(check bool) "timer actually fired" true (!fired > 0))
  end

(* Many real-TCP sessions at once, each with its own multiset (the
   bench pushes this to 32+ sessions with a latency bar; this is the
   correctness-sized version). *)
let test_tcp_sessions () =
  if not (tcp_enabled ()) then Alcotest.skip ()
  else
    with_server ~cfg:(cfg ~max_sessions:16 ~credits:32 ()) (fun srv ->
        let l = Transport.Tcp.listen () in
        let port = Transport.Tcp.port l in
        let stop = ref false in
        let acceptor =
          Thread.create
            (fun () ->
              let handlers = ref [] in
              while not !stop do
                match Transport.Tcp.try_accept ~timeout_s:0.1 l with
                | None -> ()
                | Some tcp ->
                    let conn = Transport.erase (module Transport.Tcp) tcp in
                    handlers :=
                      Thread.create (fun () -> Server.serve_conn srv conn) ()
                      :: !handlers
              done;
              List.iter Thread.join !handlers)
            ()
        in
        let sessions = 8 and per = 30 in
        let results = Array.make sessions [] in
        let drivers =
          List.init sessions (fun k ->
              Thread.create
                (fun () ->
                  let conn =
                    Transport.erase
                      (module Transport.Tcp)
                      (Transport.Tcp.connect ~host:"127.0.0.1" ~port)
                  in
                  let c = Result.get_ok (Client.connect conn) in
                  for i = 0 to per - 1 do
                    match Client.submit c (ping_record ((1000 * k) + i)) with
                    | `Ok -> ()
                    | _ -> Alcotest.fail "submit failed"
                  done;
                  (* Collect every response owed before closing —
                     Close_session drops work still inside the net. *)
                  let rec take acc n =
                    if n = 0 then acc
                    else
                      match Client.recv c with
                      | `Record r -> take (y_exn r :: acc) (n - 1)
                      | `Done -> Alcotest.fail "premature Done"
                      | `Crashed e -> Alcotest.fail ("crash: " ^ e)
                  in
                  let got = take [] per in
                  Alcotest.(check (list pass)) "clean close" []
                    (Client.drain_remaining c);
                  results.(k) <- got)
                ())
        in
        List.iter Thread.join drivers;
        stop := true;
        Thread.join acceptor;
        Transport.Tcp.close_listener l;
        for k = 0 to sessions - 1 do
          Alcotest.check ints
            (Printf.sprintf "session %d multiset" k)
            (List.init per (fun i -> (1000 * k) + i + 1))
            results.(k)
        done)

(* --- HTTP gateway ------------------------------------------------ *)

(* The record <-> JSON mapping is pure: test it ungated. *)
let test_record_json () =
  let ctx = Dist.Wire.ctx () in
  let r = Record.(empty |> with_tag "x" 7 |> with_tag "serve_session" 3) in
  let j = Http_gw.record_to_json ~ctx r in
  (match Http_gw.record_of_json ~ctx j with
  | Ok r' -> Alcotest.(check bool) "tag round trip" true (Record.equal r r')
  | Error e -> Alcotest.fail e);
  (* A record with field payloads round-trips through frame_hex. *)
  let rf =
    Record.with_field "note"
      (Snet.Value.inject Dist.Wire.string_key "hello")
      (Record.with_tag "x" 1 Record.empty)
  in
  let jf = Http_gw.record_to_json ~ctx rf in
  (match Http_gw.record_of_json ~ctx jf with
  | Ok r' ->
      (* Field values don't support structural equality across a codec
         round-trip; equal frames do (the dist suite's idiom). *)
      Alcotest.(check string) "frame round trip"
        (Dist.Wire.render ~ctx rf) (Dist.Wire.render ~ctx r')
  | Error e -> Alcotest.fail e);
  match
    Http_gw.record_of_json ~ctx
      (Obsv.Jsonx.Obj [ ("tags", Obsv.Jsonx.Obj [ ("x", Obsv.Jsonx.Str "no") ]) ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-integer tag accepted"

let http_request ~port req =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
      let b = Bytes.of_string req in
      let rec wr pos =
        if pos < Bytes.length b then
          wr (pos + Unix.write fd b pos (Bytes.length b - pos))
      in
      wr 0;
      let buf = Buffer.create 256 and chunk = Bytes.create 4096 in
      let rec rd () =
        let n = Unix.read fd chunk 0 4096 in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          rd ()
        end
      in
      (try rd () with Unix.Unix_error _ -> ());
      Buffer.contents buf)

let http ~port meth path body =
  let raw =
    http_request ~port
      (Printf.sprintf "%s %s HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s"
         meth path (String.length body) body)
  in
  match String.index_opt raw ' ' with
  | None -> Alcotest.fail ("no HTTP status in: " ^ raw)
  | Some sp -> (
      let status = int_of_string (String.sub raw (sp + 1) 3) in
      let rec find i =
        if i + 3 >= String.length raw then String.length raw
        else if String.sub raw i 4 = "\r\n\r\n" then i + 4
        else find (i + 1)
      in
      let body_at = find 0 in
      let body = String.sub raw body_at (String.length raw - body_at) in
      match Obsv.Jsonx.parse body with
      | Ok j -> (status, j)
      | Error e -> Alcotest.failf "bad JSON body %S: %s" body e)

let test_http_gateway () =
  if not (tcp_enabled ()) then Alcotest.skip ()
  else
    with_server (fun srv ->
        let gw = Http_gw.start srv in
        Fun.protect ~finally:(fun () -> Http_gw.stop gw) (fun () ->
            let port = Http_gw.port gw in
            let status, h = http ~port "GET" "/health" "" in
            Alcotest.(check int) "health 200" 200 status;
            Alcotest.(check (option string))
              "health ok" (Some "ok")
              (Option.bind (Obsv.Jsonx.member "status" h) Obsv.Jsonx.to_string);
            let status, j = http ~port "POST" "/v1/session" "{}" in
            Alcotest.(check int) "open 201" 201 status;
            let sid =
              Option.get
                (Option.bind (Obsv.Jsonx.member "session" j) Obsv.Jsonx.to_int)
            in
            let path = Printf.sprintf "/v1/session/%d/records" sid in
            let status, j =
              http ~port "POST" path {|{"records":[{"tags":{"x":7}}]}|}
            in
            Alcotest.(check int) "submit 200" 200 status;
            Alcotest.(check (option int))
              "accepted" (Some 1)
              (Option.bind (Obsv.Jsonx.member "accepted" j) Obsv.Jsonx.to_int);
            let got = ref None in
            await "http response" (fun () ->
                let status, j = http ~port "GET" (path ^ "?max=10") "" in
                Alcotest.(check int) "poll 200" 200 status;
                match Obsv.Jsonx.member "records" j with
                | Some (Obsv.Jsonx.List (r :: _)) ->
                    got := Some r;
                    true
                | _ -> false);
            let y =
              Option.bind (Obsv.Jsonx.member "tags" (Option.get !got))
                (fun tags ->
                  Option.bind (Obsv.Jsonx.member "y" tags) Obsv.Jsonx.to_int)
            in
            Alcotest.(check (option int)) "y = x + 1" (Some 8) y;
            let status, _ =
              http ~port "DELETE" (Printf.sprintf "/v1/session/%d" sid) ""
            in
            Alcotest.(check int) "delete 200" 200 status;
            let status, _ = http ~port "GET" "/nope" "" in
            Alcotest.(check int) "unknown route 404" 404 status))

let suite =
  [
    Alcotest.test_case "batch cap validation" `Quick test_batch_validation;
    Alcotest.test_case "session lifecycle" `Quick test_lifecycle;
    Alcotest.test_case "admission control" `Quick test_admission;
    Alcotest.test_case "credit withholding" `Quick test_credit_withholding;
    Alcotest.test_case "interleaved sessions" `Quick test_interleaved_sessions;
    Alcotest.test_case "idle reap on virtual clock" `Quick test_reap_virtual_clock;
    Alcotest.test_case "graceful drain differential" `Quick test_drain_differential;
    Alcotest.test_case "detcheck drain race" `Quick test_detcheck_drain_race;
    Alcotest.test_case "protocol roundtrip (loopback)" `Quick test_protocol_roundtrip;
    Alcotest.test_case "protocol admission reject" `Quick test_protocol_admission_reject;
    Alcotest.test_case "close flushes responses" `Quick test_protocol_close_flushes;
    Alcotest.test_case "record JSON mapping" `Quick test_record_json;
    Alcotest.test_case "EINTR mid-transfer (tcp)" `Quick test_eintr_mid_transfer;
    Alcotest.test_case "EINTR try_accept (tcp)" `Quick test_eintr_try_accept;
    Alcotest.test_case "concurrent TCP sessions" `Quick test_tcp_sessions;
    Alcotest.test_case "HTTP gateway" `Quick test_http_gateway;
  ]
