(* Shapes and index vectors. *)

module Shape = Sacarray.Shape

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_rank_size () =
  check_int "rank scalar" 0 (Shape.rank Shape.scalar);
  check_int "size scalar" 1 (Shape.size Shape.scalar);
  check_int "rank [3,5]" 2 (Shape.rank [| 3; 5 |]);
  check_int "size [3,5]" 15 (Shape.size [| 3; 5 |]);
  check_int "size [3,0,5]" 0 (Shape.size [| 3; 0; 5 |])

let test_validate () =
  Shape.validate [| 3; 5 |];
  Shape.validate [||];
  Alcotest.check_raises "negative extent"
    (Invalid_argument "Shape: negative extent") (fun () ->
      Shape.validate [| 3; -1 |])

let test_ravel_examples () =
  check_int "ravel [0,0]" 0 (Shape.ravel [| 3; 5 |] [| 0; 0 |]);
  check_int "ravel [0,4]" 4 (Shape.ravel [| 3; 5 |] [| 0; 4 |]);
  check_int "ravel [1,0]" 5 (Shape.ravel [| 3; 5 |] [| 1; 0 |]);
  check_int "ravel [2,4]" 14 (Shape.ravel [| 3; 5 |] [| 2; 4 |]);
  check_int "ravel scalar" 0 (Shape.ravel [||] [||])

let test_ravel_bounds () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "rank mismatch" true (bad (fun () -> Shape.ravel [| 3 |] [| 1; 2 |]));
  check_bool "negative index" true (bad (fun () -> Shape.ravel [| 3 |] [| -1 |]));
  check_bool "too large" true (bad (fun () -> Shape.ravel [| 3 |] [| 3 |]))

let test_unravel_roundtrip () =
  let shp = [| 2; 3; 4 |] in
  for off = 0 to Shape.size shp - 1 do
    check_int "roundtrip" off (Shape.ravel shp (Shape.unravel shp off))
  done

let test_unravel_into () =
  let buf = Array.make 3 0 in
  Shape.unravel_into [| 2; 3; 4 |] 23 buf;
  Alcotest.(check (array int)) "unravel_into" [| 1; 2; 3 |] buf

let test_iter_order () =
  let seen = ref [] in
  Shape.iter [| 2; 2 |] (fun iv -> seen := Array.to_list iv :: !seen);
  Alcotest.(check (list (list int)))
    "row-major"
    [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]
    (List.rev !seen)

let test_mem () =
  check_bool "inside" true (Shape.mem [| 3; 5 |] [| 2; 4 |]);
  check_bool "outside" false (Shape.mem [| 3; 5 |] [| 3; 0 |]);
  check_bool "wrong rank" false (Shape.mem [| 3; 5 |] [| 1 |]);
  check_bool "scalar" true (Shape.mem [||] [||])

let test_concat_take_drop () =
  Alcotest.(check (array int)) "concat" [| 3; 4; 5 |] (Shape.concat [| 3 |] [| 4; 5 |]);
  Alcotest.(check (array int)) "take" [| 3 |] (Shape.take 1 [| 3; 4; 5 |]);
  Alcotest.(check (array int)) "drop" [| 4; 5 |] (Shape.drop 1 [| 3; 4; 5 |])

let test_vector_ops () =
  Alcotest.(check (array int)) "add" [| 4; 6 |] (Shape.add [| 1; 2 |] [| 3; 4 |]);
  Alcotest.(check (array int)) "sub" [| 2; 2 |] (Shape.sub [| 3; 4 |] [| 1; 2 |]);
  check_bool "le true" true (Shape.le [| 1; 2 |] [| 1; 3 |]);
  check_bool "le false" false (Shape.le [| 2; 2 |] [| 1; 3 |]);
  check_bool "lt" true (Shape.lt [| 0; 0 |] [| 1; 1 |]);
  check_bool "lt eq" false (Shape.lt [| 1; 0 |] [| 1; 1 |])

let test_to_string () =
  Alcotest.(check string) "matrix" "[3,5]" (Shape.to_string [| 3; 5 |]);
  Alcotest.(check string) "scalar" "[]" (Shape.to_string [||])

(* qcheck: ravel/unravel are inverse bijections over random shapes. *)
let shape_gen =
  QCheck.Gen.(
    list_size (int_range 0 4) (int_range 1 5) >|= Array.of_list)

let prop_ravel_unravel =
  QCheck.Test.make ~name:"ravel . unravel = id" ~count:200
    (QCheck.make
       QCheck.Gen.(
         shape_gen >>= fun shp ->
         let n = Sacarray.Shape.size shp in
         int_range 0 (max 0 (n - 1)) >|= fun off -> (shp, off)))
    (fun (shp, off) ->
      Shape.size shp = 0 || Shape.ravel shp (Shape.unravel shp off) = off)

let prop_unravel_mem =
  QCheck.Test.make ~name:"unravel lands inside the shape" ~count:200
    (QCheck.make
       QCheck.Gen.(
         shape_gen >>= fun shp ->
         let n = Sacarray.Shape.size shp in
         int_range 0 (max 0 (n - 1)) >|= fun off -> (shp, off)))
    (fun (shp, off) -> Shape.size shp = 0 || Shape.mem shp (Shape.unravel shp off))

let suite =
  [
    Alcotest.test_case "rank and size" `Quick test_rank_size;
    Alcotest.test_case "validate" `Quick test_validate;
    Alcotest.test_case "ravel examples" `Quick test_ravel_examples;
    Alcotest.test_case "ravel bounds" `Quick test_ravel_bounds;
    Alcotest.test_case "unravel roundtrip" `Quick test_unravel_roundtrip;
    Alcotest.test_case "unravel_into" `Quick test_unravel_into;
    Alcotest.test_case "iter order" `Quick test_iter_order;
    Alcotest.test_case "mem" `Quick test_mem;
    Alcotest.test_case "concat/take/drop" `Quick test_concat_take_drop;
    Alcotest.test_case "vector ops" `Quick test_vector_ops;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Seeded.to_alcotest prop_ravel_unravel;
    Seeded.to_alcotest prop_unravel_mem;
  ]
