(* Blocking channels and the actor layer. *)

module Channel = Streams.Channel
module Actors = Streams.Actors

let with_pool n f =
  let pool = Scheduler.Pool.create ~num_domains:n () in
  Fun.protect ~finally:(fun () -> Scheduler.Pool.shutdown pool) (fun () ->
      f pool)

(* Collapse the structured receive results for option-based checks. *)
let recv_opt ch = match Channel.recv ch with `Msg v -> Some v | `Closed -> None

let rstate = Alcotest.testable
    (fun fmt -> function
      | `Closed -> Format.pp_print_string fmt "`Closed"
      | `Empty -> Format.pp_print_string fmt "`Empty"
      | `Msg v -> Format.fprintf fmt "`Msg %d" v)
    ( = )

let test_channel_fifo () =
  let ch = Channel.create () in
  Channel.send ch 1;
  Channel.send ch 2;
  Channel.send ch 3;
  Alcotest.(check (option int)) "first" (Some 1) (recv_opt ch);
  Alcotest.(check (option int)) "second" (Some 2) (recv_opt ch);
  Alcotest.(check int) "length" 1 (Channel.length ch)

let test_channel_close () =
  let ch = Channel.create () in
  Channel.send ch 1;
  Channel.close ch;
  Alcotest.(check bool) "closed" true (Channel.is_closed ch);
  Alcotest.(check bool) "send after close" true
    (try Channel.send ch 2; false with Channel.Closed -> true);
  Alcotest.(check (option int)) "buffered survives" (Some 1) (recv_opt ch);
  Alcotest.(check (option int)) "then end of stream" None (recv_opt ch);
  Channel.close ch (* idempotent *)

let test_channel_try_recv () =
  let ch = Channel.create () in
  (* Open-but-empty and closed are distinct results: a consumer can
     tell a slow producer from end-of-stream. *)
  Alcotest.check rstate "empty" `Empty (Channel.try_recv ch);
  Channel.send ch 5;
  Alcotest.check rstate "nonempty" (`Msg 5) (Channel.try_recv ch);
  Channel.send ch 6;
  Channel.close ch;
  Alcotest.check rstate "buffered after close" (`Msg 6) (Channel.try_recv ch);
  Alcotest.check rstate "end of stream" `Closed (Channel.try_recv ch)

let test_channel_lists () =
  let ch = Channel.of_list [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "roundtrip" [ 1; 2; 3 ] (Channel.to_list ch)

let test_channel_blocking () =
  (* A consumer thread blocks until the producer sends. *)
  let ch = Channel.create ~capacity:1 () in
  let got = ref None in
  let consumer = Thread.create (fun () -> got := recv_opt ch) () in
  Thread.delay 0.02;
  Channel.send ch 99;
  Thread.join consumer;
  Alcotest.(check (option int)) "received" (Some 99) !got;
  (* A producer blocks when the buffer is full until a recv frees it. *)
  Channel.send ch 1;
  let sent = ref false in
  let producer =
    Thread.create
      (fun () ->
        Channel.send ch 2;
        sent := true)
      ()
  in
  Thread.delay 0.02;
  Alcotest.(check bool) "still blocked" false !sent;
  ignore (recv_opt ch);
  Thread.join producer;
  Alcotest.(check bool) "unblocked" true !sent

let test_channel_recv_batch () =
  let ch = Channel.create () in
  for i = 1 to 5 do
    Channel.send ch i
  done;
  (* One call pulls a run of buffered messages, bounded by [max]. *)
  (match Channel.recv_batch ch ~max:3 with
  | `Batch ms -> Alcotest.(check (list int)) "first batch" [ 1; 2; 3 ] ms
  | `Closed -> Alcotest.fail "closed too early");
  (match Channel.recv_batch ch ~max:10 with
  | `Batch ms -> Alcotest.(check (list int)) "rest, not padded" [ 4; 5 ] ms
  | `Closed -> Alcotest.fail "closed too early");
  Channel.send ch 6;
  Channel.close ch;
  (* Buffered messages still drain after close; only then Closed. *)
  (match Channel.recv_batch ch ~max:10 with
  | `Batch ms -> Alcotest.(check (list int)) "drain after close" [ 6 ] ms
  | `Closed -> Alcotest.fail "dropped buffered message");
  Alcotest.(check bool) "end of stream" true
    (Channel.recv_batch ch ~max:1 = `Closed);
  Alcotest.(check bool) "max < 1 rejected" true
    (try
       ignore (Channel.recv_batch (Channel.create ()) ~max:0);
       false
     with Invalid_argument _ -> true)

let test_channel_recv_batch_blocks () =
  (* recv_batch parks like recv when the channel is open and empty,
     and wakes with whatever run is there — not a full [max]. *)
  let ch = Channel.create () in
  let got = ref [] in
  let consumer =
    Thread.create
      (fun () ->
        match Channel.recv_batch ch ~max:8 with
        | `Batch ms -> got := ms
        | `Closed -> ())
      ()
  in
  Thread.delay 0.02;
  Channel.send ch 7;
  Thread.join consumer;
  Alcotest.(check (list int)) "woke with partial batch" [ 7 ] !got

let test_channel_drain () =
  let ch = Channel.create () in
  Alcotest.(check (list int)) "empty drain" [] (Channel.drain ch ~max:4);
  for i = 1 to 3 do
    Channel.send ch i
  done;
  Alcotest.(check (list int)) "bounded" [ 1; 2 ] (Channel.drain ch ~max:2);
  Alcotest.(check (list int)) "rest" [ 3 ] (Channel.drain ch ~max:2);
  Channel.close ch;
  Alcotest.(check (list int)) "closed+empty" [] (Channel.drain ch ~max:2)

let test_channel_capacity_validation () =
  Alcotest.(check bool) "capacity 0 rejected" true
    (try ignore (Channel.create ~capacity:0 ()); false
     with Invalid_argument _ -> true)

let test_actor_fifo () =
  with_pool 2 (fun pool ->
      let sys = Actors.system ~pool () in
      let seen = ref [] in
      let a = Actors.spawn sys ~name:"collector" (fun m -> seen := m :: !seen) in
      for i = 1 to 100 do
        Actors.send a i
      done;
      Actors.await_quiescence sys;
      Alcotest.(check (list int)) "in order" (List.init 100 (fun i -> i + 1))
        (List.rev !seen))

let test_actor_chain () =
  with_pool 2 (fun pool ->
      let sys = Actors.system ~pool () in
      let total = ref 0 in
      let final = Actors.spawn sys (fun m -> total := !total + m) in
      let middle = Actors.spawn sys (fun m -> Actors.send final (m * 2)) in
      for i = 1 to 50 do
        Actors.send middle i
      done;
      Actors.await_quiescence sys;
      Alcotest.(check int) "chained messages all handled" 2550 !total)

let test_actor_self_send () =
  with_pool 2 (fun pool ->
      let sys = Actors.system ~pool () in
      let count = ref 0 in
      let rec actor = lazy (Actors.spawn sys (fun m ->
          incr count;
          if m > 0 then Actors.send (Lazy.force actor) (m - 1)))
      in
      Actors.send (Lazy.force actor) 10;
      Actors.await_quiescence sys;
      Alcotest.(check int) "countdown" 11 !count)

exception Boom

let test_actor_error () =
  with_pool 2 (fun pool ->
      let sys = Actors.system ~pool () in
      let a =
        Actors.spawn sys (fun m -> if m = 13 then raise Boom)
      in
      for i = 1 to 20 do
        Actors.send a i
      done;
      Alcotest.(check bool) "first error re-raised" true
        (try Actors.await_quiescence sys; false with Boom -> true);
      Alcotest.(check bool) "failure recorded" true
        (Actors.failure sys = Some Boom))

let test_actor_zero_worker_pool () =
  with_pool 0 (fun pool ->
      let sys = Actors.system ~pool () in
      let hits = ref 0 in
      let a = Actors.spawn sys (fun () -> incr hits) in
      Actors.send a ();
      Actors.send a ();
      Actors.await_quiescence sys;
      Alcotest.(check int) "caller executes activations" 2 !hits)

let test_actor_fanout () =
  with_pool 3 (fun pool ->
      let sys = Actors.system ~pool () in
      let hits = Atomic.make 0 in
      let workers =
        List.init 50 (fun i ->
            Actors.spawn sys ~name:(Printf.sprintf "w%d" i) (fun n ->
                ignore (Atomic.fetch_and_add hits n)))
      in
      List.iteri (fun i w -> Actors.send w (i + 1)) workers;
      Actors.await_quiescence sys;
      Alcotest.(check int) "all workers ran" 1275 (Atomic.get hits);
      Alcotest.(check int) "quiescent" 0 (Actors.pending sys))

let suite =
  [
    Alcotest.test_case "channel FIFO" `Quick test_channel_fifo;
    Alcotest.test_case "channel close" `Quick test_channel_close;
    Alcotest.test_case "channel try_recv" `Quick test_channel_try_recv;
    Alcotest.test_case "channel of_list/to_list" `Quick test_channel_lists;
    Alcotest.test_case "channel blocking" `Quick test_channel_blocking;
    Alcotest.test_case "channel recv_batch" `Quick test_channel_recv_batch;
    Alcotest.test_case "channel recv_batch blocks" `Quick
      test_channel_recv_batch_blocks;
    Alcotest.test_case "channel drain" `Quick test_channel_drain;
    Alcotest.test_case "channel capacity" `Quick test_channel_capacity_validation;
    Alcotest.test_case "actor FIFO" `Quick test_actor_fifo;
    Alcotest.test_case "actor chain quiescence" `Quick test_actor_chain;
    Alcotest.test_case "actor self-send" `Quick test_actor_self_send;
    Alcotest.test_case "actor error containment" `Quick test_actor_error;
    Alcotest.test_case "actors on zero-worker pool" `Quick test_actor_zero_worker_pool;
    Alcotest.test_case "actor fan-out" `Quick test_actor_fanout;
  ]
