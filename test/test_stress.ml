(* Stress and scale: larger record volumes, deep stars, bigger boards —
   slower than the unit tests but still bounded.

   Sizes come in two tiers: the default keeps `dune runtest` snappy;
   `SNET_STRESS=1` (the @stress alias) switches every case to its full
   size. Time-driven load (retry backoff storms) instead runs on the
   virtual clock, where the full workload costs microseconds of wall
   time regardless. *)

module Net = Snet.Net
module Box = Snet.Box
module P = Snet.Pattern
module Record = Snet.Record

let stress = Sys.getenv_opt "SNET_STRESS" <> None
let scaled ~light ~heavy = if stress then heavy else light

let with_pool n f =
  let pool = Scheduler.Pool.create ~num_domains:n () in
  Fun.protect ~finally:(fun () -> Scheduler.Pool.shutdown pool) (fun () ->
      f pool)

let tags_of name records = List.filter_map (Record.tag name) records

let inc =
  Box.make ~name:"inc" ~input:[ T "x" ] ~outputs:[ [ T "x" ] ]
    (fun ~emit -> function
      | [ Tag x ] -> emit 1 [ Tag (x + 1) ]
      | _ -> assert false)

let countdown =
  Box.make ~name:"countdown" ~input:[ T "x" ]
    ~outputs:[ [ T "x" ]; [ T "x"; T "done" ] ]
    (fun ~emit -> function
      | [ Tag x ] ->
          if x <= 0 then emit 2 [ Tag 0; Tag 1 ] else emit 1 [ Tag (x - 1) ]
      | _ -> assert false)

let done_pattern = P.make ~fields:[] ~tags:[ "done" ] ()

let test_many_records_all_engines () =
  let n = scaled ~light:500 ~heavy:2000 in
  let net = Net.serial_list (List.init 5 (fun _ -> Net.box inc)) in
  let inputs = List.init n (fun i -> Snet.record ~tags:[ ("x", i) ] ()) in
  let expected = List.init n (fun i -> i + 5) in
  Alcotest.(check (list int)) "seq" expected
    (tags_of "x" (Snet.Engine_seq.run net inputs));
  with_pool 2 (fun pool ->
      Alcotest.(check (list int)) "actors" expected
        (tags_of "x" (Snet.Engine_conc.run ~pool net inputs)));
  Alcotest.(check (list int)) "threads" expected
    (tags_of "x" (Snet.Engine_thread.run net inputs))

let test_deep_star () =
  (* Up to 300 pipeline stages — well past the paper's 81. *)
  let depth = scaled ~light:120 ~heavy:300 in
  let net = Net.star (Net.box countdown) done_pattern in
  let stats = Snet.Stats.create () in
  let out =
    Snet.Engine_seq.run ~stats net [ Snet.record ~tags:[ ("x", depth - 1) ] () ]
  in
  Alcotest.(check int) "one result" 1 (List.length out);
  Alcotest.(check int) "star depth" depth
    (Snet.Stats.snapshot stats).Snet.Stats.max_star_depth;
  with_pool 2 (fun pool ->
      Alcotest.(check int) "actor engine too" 1
        (List.length
           (Snet.Engine_conc.run ~pool net
              [ Snet.record ~tags:[ ("x", depth - 1) ] () ])))

let test_wide_split () =
  let replicas = scaled ~light:32 ~heavy:128 in
  let records = scaled ~light:128 ~heavy:512 in
  let net = Net.split (Net.box inc) "k" in
  let inputs =
    List.init records (fun i ->
        Snet.record ~tags:[ ("x", i); ("k", i mod replicas) ] ())
  in
  let stats = Snet.Stats.create () in
  let out = Snet.Engine_seq.run ~stats net inputs in
  Alcotest.(check int) "all processed" records (List.length out);
  Alcotest.(check int) "replica count" replicas
    (Snet.Stats.snapshot stats).Snet.Stats.split_replicas

let test_16x16_network () =
  (* The paper's motivation: bigger boards. A near-complete 16x16
     puzzle through Figure 1. *)
  let board =
    Sudoku.Generate.puzzle ~seed:3 ~n:4
      ~holes:(scaled ~light:12 ~heavy:18)
      ()
  in
  let out =
    Snet.Engine_seq.run (Sudoku.Networks.fig1 ())
      [ Sudoku.Boxes.inject_board board ]
  in
  let sols = Sudoku.Networks.solved_boards out in
  Alcotest.(check bool) "16x16 solved through the network" true (sols <> []);
  List.iter
    (fun b -> Alcotest.(check int) "side 16" 16 (Sudoku.Board.side b))
    sols

let test_deterministic_under_load () =
  with_pool 2 (fun pool ->
      let net =
        Net.split ~det:true
          (Net.star ~det:true (Net.box countdown) done_pattern)
          "k"
      in
      let inputs =
        List.init
          (scaled ~light:100 ~heavy:300)
          (fun i -> Snet.record ~tags:[ ("x", i mod 17); ("k", i mod 5) ] ())
      in
      let expected = tags_of "x" (Snet.Engine_seq.run net inputs) in
      Alcotest.(check (list int)) "det nesting at volume" expected
        (tags_of "x" (Snet.Engine_conc.run ~pool net inputs)))

(* Time-driven load on the virtual clock: a retry storm whose
   backoffs sum to seconds of VIRTUAL time — 4 exhausted retries on
   every one of 200 records — runs in milliseconds of wall time under
   the virtual scheduler, so the full size needs no @stress gate. *)
let test_retry_storm_virtual_clock () =
  let module Sv = Detcheck.Sched_virtual in
  let always_fail =
    Box.make ~name:"alwaysFail" ~policy:(Snet.Supervise.Retry 4)
      ~input:[ T "x" ] ~outputs:[ [ T "x" ] ]
      (fun ~emit:_ _ -> failwith "always fails")
  in
  let n = 200 in
  let inputs = List.init n (fun i -> Snet.record ~tags:[ ("x", i) ] ()) in
  let res, _ =
    Sv.run
      ~strategy:(Detcheck.Strategy.random ~seed:0)
      (fun sched ->
        let t0 = Scheduler.Clock.now () in
        let out =
          Snet.Engine_conc.run ~exec:(Sv.exec sched) (Net.box always_fail)
            inputs
        in
        (out, Scheduler.Clock.now () -. t0))
  in
  match res with
  | Error e -> raise e
  | Ok (out, virtual_elapsed) ->
      Alcotest.(check int) "every record becomes an error record" n
        (List.length (List.filter Snet.Supervise.is_error out));
      (* 1+2+4+8 ms of backoff per record: 3 virtual seconds total. *)
      Alcotest.(check bool)
        (Printf.sprintf "virtual backoff time ~3s (got %.3fs)" virtual_elapsed)
        true
        (virtual_elapsed >= 2.9)

let suite =
  [
    Alcotest.test_case "record volume, all engines" `Slow
      test_many_records_all_engines;
    Alcotest.test_case "deep star" `Slow test_deep_star;
    Alcotest.test_case "wide split" `Slow test_wide_split;
    Alcotest.test_case "16x16 board through fig1" `Slow test_16x16_network;
    Alcotest.test_case "determinism under load" `Slow
      test_deterministic_under_load;
    Alcotest.test_case "retry storm on the virtual clock" `Quick
      test_retry_storm_virtual_clock;
  ]
