(* Stream observation: the paper's "all streams can be observed
   individually". *)

module Net = Snet.Net
module Box = Snet.Box
module Trace = Snet.Trace
module Record = Snet.Record

let inc name =
  Box.make ~name ~input:[ T "x" ] ~outputs:[ [ T "x" ] ]
    (fun ~emit -> function
      | [ Tag x ] -> emit 1 [ Tag (x + 1) ]
      | _ -> assert false)

let inputs = List.map (fun x -> Snet.record ~tags:[ ("x", x) ] ()) [ 1; 2; 3 ]

let net () = Net.serial (Net.box (inc "first")) (Net.box (inc "second"))

let test_recorder_seq () =
  let rec_ = Trace.recorder () in
  ignore (Snet.Engine_seq.run ~observer:rec_.Trace.observe (net ()) inputs);
  let es = rec_.Trace.entries () in
  Alcotest.(check int) "nothing dropped unbounded" 0 (rec_.Trace.dropped ());
  Alcotest.(check int) "two edges, three records" 6 (List.length es);
  Alcotest.(check (list string)) "edges in first-seen order"
    [ "/L/box:first"; "/R/box:second" ]
    (Trace.edges es);
  (* Records observed on the second box already carry x+1. *)
  Alcotest.(check (list int)) "stream values at the inner edge"
    [ 2; 3; 4 ]
    (List.filter_map (Record.tag "x") (Trace.records_on "second" es))

let test_recorder_conc () =
  let pool = Scheduler.Pool.create ~num_domains:2 () in
  Fun.protect
    ~finally:(fun () -> Scheduler.Pool.shutdown pool)
    (fun () ->
      let rec_ = Trace.recorder () in
      ignore
        (Snet.Engine_conc.run ~pool ~observer:rec_.Trace.observe (net ())
           inputs);
      let es = rec_.Trace.entries () in
      Alcotest.(check int) "all events seen" 6 (List.length es);
      Alcotest.(check (list int)) "per-edge order preserved"
        [ 1; 2; 3 ]
        (List.filter_map (Record.tag "x") (Trace.records_on "first" es)))

let test_on_edge () =
  let hits = ref [] in
  let observer =
    Trace.on_edge "second" (fun r ->
        hits := Option.get (Record.tag "x" r) :: !hits)
  in
  ignore (Snet.Engine_seq.run ~observer (net ()) inputs);
  Alcotest.(check (list int)) "only the selected stream" [ 2; 3; 4 ]
    (List.rev !hits)

let test_observe_node () =
  (* The Observe combinator names a probe point visible in paths. *)
  let rec_ = Trace.recorder () in
  let n = Net.serial (Net.box (inc "a")) (Net.observe "probe" (Net.box (inc "b"))) in
  ignore (Snet.Engine_seq.run ~observer:rec_.Trace.observe n inputs);
  (* Both the probe point itself and the box nested under it carry the
     probe name in their paths. *)
  let es = rec_.Trace.entries () in
  Alcotest.(check bool) "probe edge present" true
    (List.mem "/R/probe" (Trace.edges es));
  Alcotest.(check int) "probe point sees each record once" 3
    (List.length (Trace.records_on "/R/probe/box:" es))

let test_recorder_capacity () =
  let rec_ = Trace.recorder ~capacity:4 () in
  for i = 0 to 9 do
    rec_.Trace.observe ~edge:(Printf.sprintf "/e%d" i)
      (Snet.record ~tags:[ ("x", i) ] ())
  done;
  let es = rec_.Trace.entries () in
  Alcotest.(check int) "only the newest capacity entries retained" 4
    (List.length es);
  Alcotest.(check int) "overflow counted" 6 (rec_.Trace.dropped ());
  (* Drop-oldest: the retained suffix is the last four, with their
     original global indices. *)
  Alcotest.(check (list int)) "indices of retained suffix" [ 6; 7; 8; 9 ]
    (List.map (fun (e : Trace.entry) -> e.Trace.index) es);
  Alcotest.(check (list string)) "edges of retained suffix"
    [ "/e6"; "/e7"; "/e8"; "/e9" ]
    (List.map (fun (e : Trace.entry) -> e.Trace.edge) es);
  (* Capacity must be positive. *)
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Trace.recorder: capacity < 1") (fun () ->
      ignore (Trace.recorder ~capacity:0 ()))

let test_printer () =
  let path = Filename.temp_file "snet_trace" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      ignore
        (Snet.Engine_seq.run ~observer:(Trace.printer ~prefix:"T " oc) (net ())
           inputs);
      close_out oc;
      let ic = open_in path in
      let n = ref 0 in
      (try
         while true do
           let line = input_line ic in
           assert (String.length line > 2 && String.sub line 0 2 = "T ");
           incr n
         done
       with End_of_file -> ());
      close_in ic;
      Alcotest.(check int) "six lines" 6 !n)

let suite =
  [
    Alcotest.test_case "recorder on the sequential engine" `Quick test_recorder_seq;
    Alcotest.test_case "recorder on the concurrent engine" `Quick test_recorder_conc;
    Alcotest.test_case "recorder capacity drop-oldest" `Quick
      test_recorder_capacity;
    Alcotest.test_case "single-edge observer" `Quick test_on_edge;
    Alcotest.test_case "Observe probe points" `Quick test_observe_node;
    Alcotest.test_case "printer" `Quick test_printer;
  ]
