(* With-loops: every worked example from Section 2 of the paper, plus
   parallel/sequential agreement. *)

module Nd = Sacarray.Nd
module WL = Sacarray.With_loop

let int_nd = Alcotest.testable (Nd.pp Format.pp_print_int) (Nd.equal Int.equal)
let check_nd = Alcotest.check int_nd

(* with { ([0,0] <= iv < [3,5]) : 42 } : genarray([3,5], 0) *)
let test_paper_constant_matrix () =
  let a =
    WL.genarray ~shape:[| 3; 5 |] ~default:0
      [ (WL.range [| 0; 0 |] [| 3; 5 |], fun _ -> 42) ]
  in
  check_nd "3x5 of 42" (Nd.create [| 3; 5 |] 42) a

(* with { ([0] <= iv < [5]) : iv[0] } : genarray([5], 0) *)
let test_paper_iota () =
  let a =
    WL.genarray ~shape:[| 5 |] ~default:0
      [ (WL.range [| 0 |] [| 5 |], fun iv -> iv.(0)) ]
  in
  check_nd "iota" (Nd.vector [ 0; 1; 2; 3; 4 ]) a

(* with { ([1] <= iv < [4]) : 42 } : genarray([5], 0) = [0,42,42,42,0] *)
let test_paper_partial () =
  let a =
    WL.genarray ~shape:[| 5 |] ~default:0
      [ (WL.range [| 1 |] [| 4 |], fun _ -> 42) ]
  in
  check_nd "partial" (Nd.vector [ 0; 42; 42; 42; 0 ]) a

(* with { ([1] <= iv < [4]) : 1; ([3] <= iv < [5]) : 2 }
   : genarray([6], 0) = [0,1,1,2,2,0] — later generators win. *)
let test_paper_overlap () =
  let a =
    WL.genarray ~shape:[| 6 |] ~default:0
      [
        (WL.range [| 1 |] [| 4 |], fun _ -> 1);
        (WL.range [| 3 |] [| 5 |], fun _ -> 2);
      ]
  in
  check_nd "overlap" (Nd.vector [ 0; 1; 1; 2; 2; 0 ]) a

(* with { ([0] <= iv < [3]) : 3 } : modarray(A) on A = [0,1,1,2,2,0]
   = [3,3,3,2,2,0]. *)
let test_paper_modarray () =
  let a = Nd.vector [ 0; 1; 1; 2; 2; 0 ] in
  let b = WL.modarray a [ (WL.range [| 0 |] [| 3 |], fun _ -> 3) ] in
  check_nd "modarray" (Nd.vector [ 3; 3; 3; 2; 2; 0 ]) b;
  check_nd "source untouched" (Nd.vector [ 0; 1; 1; 2; 2; 0 ]) a

let test_range_incl () =
  (* The paper's addNumber uses <= on both bounds. *)
  let a =
    WL.genarray ~shape:[| 5 |] ~default:0
      [ (WL.range_incl [| 1 |] [| 3 |], fun _ -> 9) ]
  in
  check_nd "inclusive" (Nd.vector [ 0; 9; 9; 9; 0 ]) a

let test_strided () =
  let g = WL.range ~step:[| 2 |] [| 0 |] [| 7 |] in
  Alcotest.(check int) "size" 4 (WL.generator_size g);
  Alcotest.(check bool) "mem 4" true (WL.generator_mem g [| 4 |]);
  Alcotest.(check bool) "not mem 3" false (WL.generator_mem g [| 3 |]);
  let a = WL.genarray ~shape:[| 7 |] ~default:0 [ (g, fun _ -> 1) ] in
  check_nd "strided" (Nd.vector [ 1; 0; 1; 0; 1; 0; 1 ]) a

let test_generator_iter () =
  let pts = ref [] in
  WL.generator_iter (WL.range [| 1; 1 |] [| 3; 3 |]) (fun iv ->
      pts := Array.to_list iv :: !pts);
  Alcotest.(check (list (list int)))
    "row major points"
    [ [ 1; 1 ]; [ 1; 2 ]; [ 2; 1 ]; [ 2; 2 ] ]
    (List.rev !pts)

let test_empty_generator () =
  let a =
    WL.genarray ~shape:[| 3 |] ~default:5
      [ (WL.range [| 2 |] [| 2 |], fun _ -> 9) ]
  in
  check_nd "no points" (Nd.vector [ 5; 5; 5 ]) a

let test_bounds_check () =
  Alcotest.(check bool) "escaping generator rejected" true
    (try
       ignore
         (WL.genarray ~shape:[| 3 |] ~default:0
            [ (WL.range [| 0 |] [| 4 |], fun _ -> 1) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "rank mismatch rejected" true
    (try
       ignore
         (WL.genarray ~shape:[| 3; 3 |] ~default:0
            [ (WL.range [| 0 |] [| 2 |], fun _ -> 1) ]);
       false
     with Invalid_argument _ -> true)

let test_fold () =
  let total =
    WL.fold ~neutral:0 ~combine:( + )
      [ (WL.range [| 0 |] [| 101 |], fun iv -> iv.(0)) ]
  in
  Alcotest.(check int) "gauss" 5050 total;
  let n =
    WL.fold ~neutral:0 ~combine:( + )
      [
        (WL.range [| 0 |] [| 5 |], fun _ -> 1);
        (WL.range [| 2 |] [| 5 |], fun _ -> 1);
      ]
  in
  Alcotest.(check int) "multi-part fold sums all parts" 8 n

let test_genarray_init_single_eval () =
  let calls = ref 0 in
  let a =
    WL.genarray_init ~shape:[| 4; 4 |] (fun iv ->
        incr calls;
        iv.(0) + iv.(1))
  in
  Alcotest.(check int) "one call per element" 16 !calls;
  Alcotest.(check int) "value" 6 (Nd.get a [| 3; 3 |])

(* Parallel execution must agree with sequential execution. The range
   is pushed above the engine's parallel cutoff. *)
let test_parallel_agreement () =
  let pool = Scheduler.Pool.create ~num_domains:2 () in
  Fun.protect
    ~finally:(fun () -> Scheduler.Pool.shutdown pool)
    (fun () ->
      let mk ?pool () =
        WL.genarray ?pool ~shape:[| 40; 40 |] ~default:0
          [
            (WL.range [| 0; 0 |] [| 40; 40 |], fun iv -> (iv.(0) * 41) + iv.(1));
            (WL.range [| 5; 5 |] [| 20; 20 |], fun iv -> iv.(0) - iv.(1));
          ]
      in
      check_nd "genarray" (mk ()) (mk ~pool ());
      (* A strided part forces the general (non-dense) executor. *)
      let mk_strided ?pool () =
        WL.genarray ?pool ~shape:[| 40; 40 |] ~default:(-1)
          [
            (WL.range [| 0; 0 |] [| 40; 40 |], fun iv -> iv.(0) + iv.(1));
            (WL.range ~step:[| 3; 2 |] [| 1; 0 |] [| 40; 40 |], fun iv ->
              (iv.(0) * 100) + iv.(1));
          ]
      in
      check_nd "strided genarray" (mk_strided ()) (mk_strided ~pool ());
      let init ?pool () =
        WL.genarray_init ?pool ~shape:[| 30; 30 |] (fun iv ->
            (iv.(0) * 7) - iv.(1))
      in
      check_nd "genarray_init" (init ()) (init ~pool ());
      let fold ?pool () =
        WL.fold ?pool ~neutral:0 ~combine:( + )
          [ (WL.range [| 0 |] [| 5000 |], fun iv -> iv.(0) mod 7) ]
      in
      Alcotest.(check int) "fold" (fold ()) (fold ~pool ()))

let test_rank0 () =
  let a =
    WL.genarray ~shape:[||] ~default:1 [ (WL.range [||] [||], fun _ -> 7) ]
  in
  Alcotest.(check int) "scalar genarray" 7 (Nd.get a [||]);
  let b = WL.genarray_init ~shape:[||] (fun _ -> 9) in
  Alcotest.(check int) "scalar genarray_init" 9 (Nd.get b [||])

let test_genarray_init_large () =
  (* Above the parallel cutoff: the odometer fast path and Nd.init must
     agree element for element, with and without a pool. *)
  let f iv = (iv.(0) * 1009) + (iv.(1) * 31) + iv.(2) in
  let shape = [| 17; 13; 11 |] in
  check_nd "seq" (Nd.init shape f) (WL.genarray_init ~shape f);
  let pool = Scheduler.Pool.create ~num_domains:2 () in
  Fun.protect
    ~finally:(fun () -> Scheduler.Pool.shutdown pool)
    (fun () -> check_nd "par" (Nd.init shape f) (WL.genarray_init ~pool ~shape f))

(* Reference semantics: paint the default array by iterating each
   generator in order with generator_iter (later generators win).
   Compares against the real executors, which pick the dense fast path
   or the strided general path per part. *)
let reference_genarray ~shape ~default parts =
  let a = ref (Nd.create shape default) in
  List.iter
    (fun (g, body) ->
      WL.generator_iter g (fun iv -> a := Nd.set !a iv (body iv)))
    parts;
  !a

let prop_fast_slow_agree =
  let gen =
    QCheck.Gen.(
      int_range 1 3 >>= fun rank ->
      array_repeat rank (int_range 1 8) >>= fun shape ->
      let gen_part =
        (* Random sub-box with random (possibly unit) steps. *)
        let dim i =
          int_range 0 (shape.(i) - 1) >>= fun lo ->
          int_range (lo + 1) shape.(i) >>= fun hi ->
          int_range 1 3 >|= fun st -> (lo, hi, st)
        in
        (fun n -> List.init n dim) rank |> flatten_l >>= fun dims ->
        int_range 0 999 >|= fun salt ->
        let lower = Array.of_list (List.map (fun (l, _, _) -> l) dims) in
        let upper = Array.of_list (List.map (fun (_, h, _) -> h) dims) in
        let step = Array.of_list (List.map (fun (_, _, s) -> s) dims) in
        (WL.range ~step lower upper, salt)
      in
      int_range 1 3 >>= fun nparts ->
      list_repeat nparts gen_part >|= fun parts -> (shape, parts))
  in
  QCheck.Test.make
    ~name:"genarray fast/general paths match generator_iter reference"
    ~count:100 (QCheck.make gen)
    (fun (shape, parts) ->
      let parts =
        List.map
          (fun (g, salt) ->
            ( g,
              fun iv ->
                Array.fold_left (fun acc i -> (acc * 13) + i) salt iv ))
          parts
      in
      Nd.equal Int.equal
        (WL.genarray ~shape ~default:(-1) parts)
        (reference_genarray ~shape ~default:(-1) parts))

let prop_genarray_matches_init =
  QCheck.Test.make ~name:"genarray with full generator = Nd.init" ~count:50
    (QCheck.make QCheck.Gen.(pair (int_range 1 6) (int_range 1 6)))
    (fun (r, c) ->
      let f iv = (iv.(0) * 31) + iv.(1) in
      let a =
        WL.genarray ~shape:[| r; c |] ~default:(-1)
          [ (WL.range [| 0; 0 |] [| r; c |], f) ]
      in
      Nd.equal Int.equal a (Nd.init [| r; c |] f))

let prop_later_generator_wins =
  QCheck.Test.make ~name:"later generators win on overlap" ~count:100
    (QCheck.make
       QCheck.Gen.(
         int_range 1 10 >>= fun n ->
         int_range 0 (n - 1) >>= fun lo ->
         int_range (lo + 1) n >|= fun hi -> (n, lo, hi)))
    (fun (n, lo, hi) ->
      let a =
        WL.genarray ~shape:[| n |] ~default:0
          [
            (WL.range [| 0 |] [| n |], fun _ -> 1);
            (WL.range [| lo |] [| hi |], fun _ -> 2);
          ]
      in
      let ok = ref true in
      for i = 0 to n - 1 do
        let expect = if i >= lo && i < hi then 2 else 1 in
        if Nd.get a [| i |] <> expect then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "paper: constant matrix" `Quick test_paper_constant_matrix;
    Alcotest.test_case "paper: iota" `Quick test_paper_iota;
    Alcotest.test_case "paper: partial coverage" `Quick test_paper_partial;
    Alcotest.test_case "paper: generator overlap" `Quick test_paper_overlap;
    Alcotest.test_case "paper: modarray" `Quick test_paper_modarray;
    Alcotest.test_case "inclusive ranges" `Quick test_range_incl;
    Alcotest.test_case "strided generators" `Quick test_strided;
    Alcotest.test_case "generator iteration" `Quick test_generator_iter;
    Alcotest.test_case "empty generator" `Quick test_empty_generator;
    Alcotest.test_case "bounds checking" `Quick test_bounds_check;
    Alcotest.test_case "fold" `Quick test_fold;
    Alcotest.test_case "genarray_init evaluates once" `Quick test_genarray_init_single_eval;
    Alcotest.test_case "parallel agreement" `Quick test_parallel_agreement;
    Alcotest.test_case "rank-0 arrays" `Quick test_rank0;
    Alcotest.test_case "genarray_init above cutoff" `Quick test_genarray_init_large;
    Seeded.to_alcotest prop_genarray_matches_init;
    Seeded.to_alcotest prop_later_generator_wins;
    Seeded.to_alcotest prop_fast_slow_agree;
  ]
